//! # graphqe
//!
//! **GraphQE** — an automated prover for Cypher query equivalence, the Rust
//! reproduction of *"Proving Cypher Query Equivalence"* (ICDE 2025).
//!
//! The prover follows the four-stage workflow of Fig. 3 in the paper:
//!
//! 1. **Syntax & semantic check** — [`cypher_parser::parse_and_check`];
//! 2. **Rule-based normalization** — [`cypher_normalizer::normalize_query`]
//!    (Table II rules);
//! 3. **G-expression construction** — [`gexpr::build_query`] (U-semiring
//!    based graph-native algebraic representation);
//! 4. **Decision** — [`liastar::check_equivalence`] (isomorphism matching +
//!    LIA\*-style SMT reasoning on the from-scratch [`smt`] solver).
//!
//! On top of the paper's pipeline the prover adds a **counterexample
//! search**: when equivalence cannot be proven, the reference evaluator is
//! run on a pool of small graphs, and a differing graph certifies
//! non-equivalence (this is how all CyNeqSet pairs are rejected).
//!
//! ```
//! use graphqe::GraphQE;
//!
//! let prover = GraphQE::new();
//! let verdict = prover.prove(
//!     "MATCH (a)-[r:READ]->(b) RETURN a.name",
//!     "MATCH (b)<-[r:READ]-(a) RETURN a.name",
//! );
//! assert!(verdict.is_equivalent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod certificate;
pub mod counterexample;
pub mod divide;
pub mod verdict;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    /// The last [`counterexample::pool_cache_generation`] this worker thread
    /// observed (`None` until its first budget trip); used to deduplicate
    /// process-global cache clears when several batch workers cross their
    /// arena budgets together.
    static POOL_CLEAR_SEEN: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

use cypher_parser::ast::{Clause, ProjectionItems, Query};
use cypher_parser::{parse_and_check, CheckError};
use gexpr::{build_query, BuildError, BuildOutput, ColumnKind};
use graphqe_analyzer::TypeSig;
use liastar::{DecideOptions, Decision};

pub use certificate::certificate_counters;
pub use counterexample::SearchConfig;
pub use graphqe_checker::Certificate;
pub use verdict::{Counterexample, FailureCategory, ProofStats, StageTimings, Verdict};

// ---------------------------------------------------------------------------
// The stage-① parse cache
// ---------------------------------------------------------------------------

/// Default capacity of the parse cache: one entry per distinct query text
/// (a parsed AST is a few KB), bounded like the search memo.
const DEFAULT_PARSE_CACHE_CAPACITY: usize = 4096;

/// Text-keyed cache of stage-① outcomes (`parse_and_check`), shared
/// process-wide. Since PR 4 `stage parse_check` was the single largest
/// stage of the warm optimized pipeline; with this cache a warm
/// re-certification skips parsing entirely. Semantic failures are cached
/// too — the checker is deterministic, and invalid queries resubmitted by a
/// service would otherwise re-parse every time.
static PARSE_CACHE: OnceLock<Mutex<ParseCache>> = OnceLock::new();

/// One memoized stage-① outcome per query text (failures included).
type ParseCache = cache::LruMap<String, Result<Arc<Query>, CheckError>>;

fn parse_cache() -> &'static Mutex<ParseCache> {
    PARSE_CACHE.get_or_init(|| Mutex::new(cache::LruMap::new(DEFAULT_PARSE_CACHE_CAPACITY)))
}

static PARSE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PARSE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static PARSE_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide hit/miss counters of the parse cache.
pub fn parse_cache_stats() -> (u64, u64) {
    (PARSE_CACHE_HITS.load(Ordering::Relaxed), PARSE_CACHE_MISSES.load(Ordering::Relaxed))
}

/// Process-wide count of parse-cache entries dropped by the capacity bound.
pub fn parse_cache_evictions() -> u64 {
    PARSE_CACHE_EVICTIONS.load(Ordering::Relaxed)
}

/// Current entry count of the parse cache.
pub fn parse_cache_len() -> usize {
    parse_cache().lock().unwrap_or_else(|poison| poison.into_inner()).len()
}

/// Reconfigures the parse cache's capacity (clamped to at least 1),
/// evicting down immediately. Returns the previous capacity.
pub fn set_parse_cache_capacity(capacity: usize) -> usize {
    let mut cache = parse_cache().lock().unwrap_or_else(|poison| poison.into_inner());
    let previous = cache.capacity();
    let evicted = cache.set_capacity(capacity);
    PARSE_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    previous
}

/// Drops every parse-cache entry (pure memo — eviction only costs
/// re-parsing). Benchmarks use this to measure the cold parse stage.
pub fn clear_parse_cache() {
    parse_cache().lock().unwrap_or_else(|poison| poison.into_inner()).clear();
}

/// Stage ① through the cache: returns the memoized outcome for `text`, or
/// parses (outside the lock — racing workers may both parse, benignly) and
/// caches it. This is what [`GraphQE::prove`] calls; it is public so
/// benchmarks and service frontends can measure or pre-warm the stage
/// directly.
pub fn parse_check_cached(text: &str) -> Result<Arc<Query>, CheckError> {
    if let Some(hit) = parse_cache().lock().unwrap_or_else(|poison| poison.into_inner()).get(text) {
        PARSE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    PARSE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let outcome = parse_and_check(text).map(Arc::new);
    let evicted = parse_cache()
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .insert(text.to_string(), outcome.clone());
    PARSE_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    outcome
}

// ---------------------------------------------------------------------------
// The stage-②/③ normalize/build cache
// ---------------------------------------------------------------------------

/// Default capacity of the normalize cache, matched to the parse cache: the
/// entries are keyed on parse-cache identities, so there is no point holding
/// more normalized forms than there are parsed queries.
const DEFAULT_NORMALIZE_CACHE_CAPACITY: usize = 4096;

/// The memoized stage-② (and lazily stage-③) outcome of one parsed query:
/// its Table II normalized form plus the G-expression build of that form,
/// computed once process-wide and shared across threads (`Arc<Query>` and
/// [`BuildOutput`] are plain trees — `Send + Sync` is compile-enforced
/// below). Obtained through [`normalized_stages`]; a warm re-certification
/// skips both `rule_normalize` and `gexpr_build` entirely.
pub struct NormalizedStages {
    /// The parse-cache entry this was derived from. Holding it pins the
    /// allocation, so the address key below can never be reused by a
    /// different query while this entry lives.
    source: Arc<Query>,
    /// The Table II normalized form of `source`.
    normalized: Query,
    /// Stage ③ memo: the build of `normalized`, filled by the first prover
    /// that needs it. Build errors are memoized too — `gexpr` is limits-free,
    /// so its outcome is a deterministic property of the query.
    build: Mutex<Option<Result<BuildOutput, BuildError>>>,
}

// The point of the shared cache: entries cross threads. A field that
// introduces `Rc`/`RefCell` fails compilation here, not in a consumer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NormalizedStages>();
};

impl NormalizedStages {
    /// The normalized (Table II) form of the source query.
    pub fn normalized(&self) -> &Query {
        &self.normalized
    }

    /// Stage ③ on the normalized form, memoized: the first caller builds,
    /// every later caller — on any thread — clones the stored outcome.
    pub fn build(&self) -> Result<BuildOutput, BuildError> {
        let mut slot = self.build.lock().unwrap_or_else(|poison| poison.into_inner());
        if let Some(built) = slot.as_ref() {
            return built.clone();
        }
        let built = build_query(&self.normalized);
        *slot = Some(built.clone());
        built
    }
}

impl std::fmt::Debug for NormalizedStages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NormalizedStages").finish_non_exhaustive()
    }
}

/// Identity-keyed cache of stage-②/③ outcomes, shared process-wide. The key
/// is the address of the parse cache's `Arc<Query>`, so probing costs a
/// pointer hash instead of re-hashing the query text; the `Arc::ptr_eq`
/// guard on hits makes address reuse (after a parse-cache eviction drops the
/// only other owner) a miss instead of a wrong answer.
static NORMALIZE_CACHE: OnceLock<Mutex<NormalizeCache>> = OnceLock::new();

type NormalizeCache = cache::LruMap<usize, Arc<NormalizedStages>>;

fn normalize_cache() -> &'static Mutex<NormalizeCache> {
    NORMALIZE_CACHE.get_or_init(|| Mutex::new(cache::LruMap::new(DEFAULT_NORMALIZE_CACHE_CAPACITY)))
}

static NORMALIZE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static NORMALIZE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static NORMALIZE_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide hit/miss counters of the normalize cache.
pub fn normalize_cache_stats() -> (u64, u64) {
    (NORMALIZE_CACHE_HITS.load(Ordering::Relaxed), NORMALIZE_CACHE_MISSES.load(Ordering::Relaxed))
}

/// Process-wide count of normalize-cache entries dropped by the capacity
/// bound.
pub fn normalize_cache_evictions() -> u64 {
    NORMALIZE_CACHE_EVICTIONS.load(Ordering::Relaxed)
}

/// Current entry count of the normalize cache.
pub fn normalize_cache_len() -> usize {
    normalize_cache().lock().unwrap_or_else(|poison| poison.into_inner()).len()
}

/// Reconfigures the normalize cache's capacity (clamped to at least 1),
/// evicting down immediately. Returns the previous capacity.
pub fn set_normalize_cache_capacity(capacity: usize) -> usize {
    let mut cache = normalize_cache().lock().unwrap_or_else(|poison| poison.into_inner());
    let previous = cache.capacity();
    let evicted = cache.set_capacity(capacity);
    NORMALIZE_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    previous
}

/// Drops every normalize-cache entry (pure memo — eviction only costs
/// re-normalizing). Benchmarks use this to measure the cold stages.
pub fn clear_normalize_cache() {
    normalize_cache().lock().unwrap_or_else(|poison| poison.into_inner()).clear();
}

/// Stage ② through the cache: the memoized normalized form (with its lazily
/// memoized build) of `query`, or a fresh normalization inserted on miss
/// (computed outside the lock — racing workers may both normalize,
/// benignly). Only successful normalizations are cached, and never on a
/// tripped run: a trip reflects this call's deadline, not a property of the
/// query.
pub fn normalized_stages(query: &Arc<Query>) -> Result<Arc<NormalizedStages>, limits::Trip> {
    let key = Arc::as_ptr(query) as usize;
    let cached = normalize_cache().lock().unwrap_or_else(|poison| poison.into_inner()).get(&key);
    if let Some(entry) = cached {
        if Arc::ptr_eq(&entry.source, query) {
            NORMALIZE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        // Address reuse: the parse cache evicted the query that owned this
        // address and a later allocation landed on it. Fall through to a
        // miss; the insert below overwrites the stale entry.
    }
    NORMALIZE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let (normalized, _report) = cypher_normalizer::try_normalize_query_with_report(query)?;
    let entry = Arc::new(NormalizedStages {
        source: Arc::clone(query),
        normalized,
        build: Mutex::new(None),
    });
    if limits::trip().is_none() {
        let evicted = normalize_cache()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .insert(key, Arc::clone(&entry));
        NORMALIZE_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    }
    Ok(entry)
}

/// A query after stage ②, on its way into stages ③/④: either a shared cache
/// entry (whose build is memoized) or a one-shot owned normalization (the
/// [`GraphQE::prove_queries`] path, and every opted-out prover).
enum Normalized {
    /// Shared entry from the process-wide normalize cache.
    Cached(Arc<NormalizedStages>),
    /// Uncached normalized form owned by this call.
    Owned(Query),
}

impl Normalized {
    fn query(&self) -> &Query {
        match self {
            Normalized::Cached(stages) => stages.normalized(),
            Normalized::Owned(query) => query,
        }
    }

    /// Stage ③ for this query: the memoized build for cached entries, a
    /// fresh build otherwise. Wall-clock (a memo probe on warm hits) goes
    /// into `timings.build` either way.
    fn build_timed(&self, timings: &mut StageTimings) -> Result<BuildOutput, BuildError> {
        let build_start = Instant::now();
        let built = match self {
            Normalized::Cached(stages) => stages.build(),
            Normalized::Owned(query) => build_query(query),
        };
        timings.build += build_start.elapsed();
        built
    }
}

/// Resource budgets and deadline of one proof run. Everything defaults to
/// **off**: with the default limits the prover's behavior (and its verdicts)
/// is bit-identical to a build without the limits layer — no token is
/// installed and every cooperative checkpoint is a no-op probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProveLimits {
    /// Wall-clock deadline per [`GraphQE::prove`] call (`None` = no
    /// deadline). On expiry the current stage unwinds and the verdict is
    /// `Unknown` with [`FailureCategory::Timeout`].
    pub deadline: Option<std::time::Duration>,
    /// Maximum SMT CDCL(T) refinement iterations per prove call, summed over
    /// all solver invocations (`0` = unlimited). Exhaustion degrades SMT
    /// answers to `Unknown` and the verdict to
    /// [`FailureCategory::BudgetExhausted`].
    pub smt_step_budget: u64,
    /// Maximum candidate graphs the counterexample search may evaluate per
    /// prove call, summed across its workers (`0` = unlimited).
    pub search_graph_budget: u64,
    /// Budget on the per-worker hash-consed arena during batch proving: once
    /// a worker's thread-local `GStore` holds more nodes than this after
    /// finishing a pair, the worker evicts every thread-local cache
    /// (`liastar::reset_thread_caches`). Keeps long batch runs in bounded
    /// memory; `0` disables the budget. Unlike the fields above this is a
    /// between-pairs janitor, not a mid-proof trip — it never changes a
    /// verdict.
    pub arena_node_budget: usize,
}

impl Default for ProveLimits {
    fn default() -> Self {
        ProveLimits {
            deadline: None,
            smt_step_budget: 0,
            search_graph_budget: 0,
            // Roughly a few hundred MB of arena + memo tables in the worst
            // case; the full CyEqSet+CyNeqSet run stays well under it, so
            // the default only kicks in for service-scale streams.
            arena_node_budget: 1 << 20,
        }
    }
}

/// The machine's available parallelism, probed once per process.
///
/// `std::thread::available_parallelism` re-reads the cgroup CPU quota on
/// every call — tens of microseconds inside a container, which the
/// per-search thread clamp would otherwise pay once per proved pair. The
/// quota is fixed for the life of the process, so one probe serves all.
pub fn machine_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

impl ProveLimits {
    /// `true` when any mid-proof limit (deadline or step budget) is set —
    /// i.e. when proving installs a [`limits::RunToken`]. The arena budget
    /// does not count: it acts between pairs, with no token.
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.smt_step_budget > 0 || self.search_graph_budget > 0
    }

    /// A fresh run token for one prove call, or `None` when no mid-proof
    /// limit is set (the limits-off path installs nothing, keeping it
    /// bit-identical to a build without the limits layer).
    fn token(&self) -> Option<Arc<limits::RunToken>> {
        if !self.is_active() {
            return None;
        }
        Some(Arc::new(limits::RunToken::new(
            self.deadline.map(|deadline| Instant::now() + deadline),
            self.smt_step_budget,
            self.search_graph_budget,
        )))
    }
}

/// One result of [`GraphQE::prove_batch_detailed`]: the verdict plus the
/// wall-clock latency of the whole pipeline for that pair.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The verdict for the pair.
    pub verdict: Verdict,
    /// End-to-end latency of proving the pair (as observed by the worker).
    pub latency: std::time::Duration,
    /// Why the pair is `Unknown` (`None` for the two definite verdicts) —
    /// the per-pair surface of the failure taxonomy, so batch frontends
    /// report reason counts without pattern-matching verdicts.
    pub failure_reason: Option<FailureCategory>,
}

/// Aggregate cache behavior over one batch run, so the per-stage timings of
/// the detailed report are explainable: a fast decide stage with a high hit
/// rate is memoization, not magic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits of the formula-level result cache inside `smt::Solver`.
    pub smt_formula_hits: u64,
    /// Misses of the formula-level result cache inside `smt::Solver`.
    pub smt_formula_misses: u64,
    /// Hits of the `liastar` summand-simplification cache.
    pub summand_hits: u64,
    /// Misses of the `liastar` summand-simplification cache.
    pub summand_misses: u64,
    /// Hits of the `liastar` pairwise-disjointness cache.
    pub disjoint_hits: u64,
    /// Misses of the `liastar` pairwise-disjointness cache.
    pub disjoint_misses: u64,
    /// Hits of the counterexample search-result memo.
    pub search_memo_hits: u64,
    /// Misses of the counterexample search-result memo.
    pub search_memo_misses: u64,
    /// Entries dropped by the search-result memo's LRU capacity bound.
    pub search_memo_evictions: u64,
    /// Hits of the stage-① parse cache.
    pub parse_cache_hits: u64,
    /// Misses of the stage-① parse cache.
    pub parse_cache_misses: u64,
    /// Entries dropped by the parse cache's LRU capacity bound.
    pub parse_cache_evictions: u64,
    /// Hits of the stage-②/③ normalize/build cache.
    pub normalize_cache_hits: u64,
    /// Misses of the stage-②/③ normalize/build cache.
    pub normalize_cache_misses: u64,
    /// Entries dropped by the normalize cache's LRU capacity bound.
    pub normalize_cache_evictions: u64,
    /// Hits of the process-wide frozen-plan cache (counterexample search).
    pub plan_cache_hits: u64,
    /// Misses of the process-wide frozen-plan cache.
    pub plan_cache_misses: u64,
    /// Entries dropped by the frozen-plan cache's LRU capacity bound.
    pub plan_cache_evictions: u64,
    /// Certificates emitted during the run (see
    /// [`certificate::certificate_counters`]).
    pub cert_emitted: u64,
    /// Pairs downgraded because certificate emission failed or the
    /// independent checker rejected the emitted artifact.
    pub cert_check_failures: u64,
    /// Peak node count of any hash-consed arena during the run.
    pub peak_arena_nodes: usize,
    /// How many times a worker evicted its thread-local caches because the
    /// arena outgrew [`ProveLimits::arena_node_budget`].
    pub epoch_resets: u64,
}

impl CacheStats {
    /// Hit rate of the SMT formula cache in `[0, 1]` (0 when unused).
    pub fn smt_formula_hit_rate(&self) -> f64 {
        hit_rate(self.smt_formula_hits, self.smt_formula_misses)
    }

    /// Hit rate of the summand cache in `[0, 1]` (0 when unused).
    pub fn summand_hit_rate(&self) -> f64 {
        hit_rate(self.summand_hits, self.summand_misses)
    }

    /// Hit rate of the disjointness cache in `[0, 1]` (0 when unused).
    pub fn disjoint_hit_rate(&self) -> f64 {
        hit_rate(self.disjoint_hits, self.disjoint_misses)
    }

    /// Hit rate of the search-result memo in `[0, 1]` (0 when unused).
    pub fn search_memo_hit_rate(&self) -> f64 {
        hit_rate(self.search_memo_hits, self.search_memo_misses)
    }

    /// Hit rate of the parse cache in `[0, 1]` (0 when unused).
    pub fn parse_cache_hit_rate(&self) -> f64 {
        hit_rate(self.parse_cache_hits, self.parse_cache_misses)
    }

    /// Hit rate of the normalize/build cache in `[0, 1]` (0 when unused).
    pub fn normalize_cache_hit_rate(&self) -> f64 {
        hit_rate(self.normalize_cache_hits, self.normalize_cache_misses)
    }

    /// Hit rate of the frozen-plan cache in `[0, 1]` (0 when unused).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        hit_rate(self.plan_cache_hits, self.plan_cache_misses)
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// The full result of [`GraphQE::prove_batch_report`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-pair outcomes, in input order.
    pub outcomes: Vec<BatchOutcome>,
    /// Cache behavior aggregated over the whole run (all workers).
    pub cache: CacheStats,
}

impl BatchReport {
    /// Counts of `Unknown` verdicts by failure reason (display form), in
    /// deterministic (sorted) order — the aggregate surface of the failure
    /// taxonomy for benchmark JSON and service dashboards.
    pub fn unknown_reason_counts(&self) -> std::collections::BTreeMap<String, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for outcome in &self.outcomes {
            if let Some(reason) = outcome.failure_reason {
                *counts.entry(reason.to_string()).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// The GraphQE prover with its configuration.
#[derive(Debug, Clone)]
pub struct GraphQE {
    /// Run the stage-⓪ static analyzer ([`graphqe_analyzer`]) on both
    /// queries before proving: flow-sensitive type inference produces an
    /// output-column signature per query, a definite type error short-cuts
    /// to `Unknown(TypeError)`, discriminating signatures prioritize the
    /// counterexample search, and inferred integer columns feed a
    /// last-resort typed decision retry. Disabled only by ablation
    /// benchmarks; verdict-neutral apart from the retry upgrade (a
    /// NOT_EQUIVALENT still always carries a concrete witness).
    pub analyze: bool,
    /// Apply the Table II normalization rules (stage ②). Disabled only by the
    /// ablation benchmarks.
    pub normalize: bool,
    /// Search for a counterexample when equivalence cannot be proven.
    pub search_counterexamples: bool,
    /// Configuration of the counterexample search.
    pub search_config: SearchConfig,
    /// Maximum number of return-element permutations tried when mapping the
    /// returned columns of the two queries (§IV-C).
    pub max_column_permutations: usize,
    /// Decide with the reference tree normalizer instead of the memoizing
    /// hash-consed arena. Verdicts are identical either way; this exists so
    /// benchmarks can measure the arena speedup against the paper-faithful
    /// baseline.
    pub use_tree_normalizer: bool,
    /// Resource budgets and deadline per prove call (plus the batch-time
    /// arena budget). All mid-proof limits default to off; see
    /// [`ProveLimits`].
    pub limits: ProveLimits,
    /// Worker threads of the counterexample search
    /// ([`counterexample::find_counterexample_parallel`]): `0` uses all
    /// available cores, `1` forces the sequential (lazy) search. Batch
    /// proving divides the machine between pair workers and search workers,
    /// so the product never oversubscribes.
    pub search_threads: usize,
    /// Consult (and populate) the process-wide stage-① parse cache in
    /// [`GraphQE::prove`]. Disabled by benchmark baselines that must pay
    /// the real parse cost every run; outcomes are identical either way.
    pub use_parse_cache: bool,
    /// Consult (and populate) the process-wide stage-②/③ normalize/build
    /// cache in [`GraphQE::prove`] (only effective with
    /// [`GraphQE::normalize`] on). Disabled by benchmark baselines that must
    /// pay the real normalization cost every run; outcomes are identical
    /// either way.
    pub use_normalize_cache: bool,
}

impl Default for GraphQE {
    fn default() -> Self {
        GraphQE {
            analyze: true,
            normalize: true,
            search_counterexamples: true,
            search_config: SearchConfig::default(),
            max_column_permutations: 24,
            use_tree_normalizer: false,
            limits: ProveLimits::default(),
            search_threads: 0,
            use_parse_cache: true,
            use_normalize_cache: true,
        }
    }
}

impl GraphQE {
    /// Creates a prover with the default configuration.
    pub fn new() -> Self {
        GraphQE::default()
    }

    /// Resolves [`GraphQE::search_threads`] (`0` = all available cores).
    fn effective_search_threads(&self) -> usize {
        match self.search_threads {
            0 => machine_parallelism(),
            n => n,
        }
    }

    /// Stage ① for one query text, through the process-wide parse cache
    /// (unless [`GraphQE::use_parse_cache`] is off).
    fn parse_checked(&self, text: &str) -> Result<Arc<Query>, CheckError> {
        if self.use_parse_cache {
            parse_check_cached(text)
        } else {
            parse_and_check(text).map(Arc::new)
        }
    }

    /// Proves the (non-)equivalence of two Cypher query texts.
    ///
    /// With active [`GraphQE::limits`] a fresh run token governs this call:
    /// on a deadline or budget trip the pipeline unwinds cooperatively and
    /// the verdict is `Unknown` with the trip's [`FailureCategory`] — never
    /// a wrong definite verdict (a proof or witness completed before the
    /// trip was observed is still reported).
    pub fn prove(&self, q1: &str, q2: &str) -> Verdict {
        self.prove_with_stats(q1, q2).0
    }

    /// [`GraphQE::prove`] returning the proof statistics alongside the
    /// verdict. Unlike the stats embedded in `Verdict::Equivalent`, these
    /// are recorded on **every** exit path — stage-① rejections, cache-hit
    /// fast paths, counterexamples, trips — with the per-stage wall-clock
    /// breakdown in [`StageTimings`].
    pub fn prove_with_stats(&self, q1: &str, q2: &str) -> (Verdict, ProofStats) {
        match self.limits.token() {
            Some(token) => limits::with_token(token, || self.prove_with_stats_inner(q1, q2)),
            None => self.prove_with_stats_inner(q1, q2),
        }
    }

    fn prove_with_stats_inner(&self, q1: &str, q2: &str) -> (Verdict, ProofStats) {
        let start = Instant::now();
        let mut stats = ProofStats::default();
        // Stage ①: syntax & semantic check — memoized per query text, so a
        // warm re-certification skips parsing entirely (the timing then
        // records the cache probe, so even fast paths are accounted for).
        let stage_start = Instant::now();
        let parsed =
            self.parse_checked(q1).and_then(|parsed1| Ok((parsed1, self.parse_checked(q2)?)));
        stats.stages.parse = stage_start.elapsed();
        let (parsed1, parsed2) = match parsed {
            Ok(pair) => pair,
            Err(error) => {
                stats.latency = start.elapsed();
                return (invalid(error), stats);
            }
        };
        // Stage ⓪: flow-sensitive type inference over both ASTs. A definite
        // type error (a query that can only ever raise at runtime) makes the
        // pair unprovable; otherwise the inferred output signatures steer the
        // rest of the pipeline without ever deciding a verdict on their own.
        let stage_start = Instant::now();
        let signatures = if self.analyze {
            match analyzed_signatures(&parsed1, &parsed2) {
                Ok(signatures) => signatures,
                Err(verdict) => {
                    stats.stages.analyze = stage_start.elapsed();
                    stats.latency = start.elapsed();
                    return (*verdict, stats);
                }
            }
        } else {
            None
        };
        stats.stages.analyze = stage_start.elapsed();
        // Signature-discrimination fast path: when no type-compatible
        // bijection between the output columns exists, equivalence is only
        // possible if both queries always return the empty bag — so a
        // witness is overwhelmingly likely and the (cheap, deterministic)
        // counterexample search runs *before* the expensive proof attempt.
        // Discrimination alone never decides: NOT_EQUIVALENT still requires
        // a concrete witness graph, and an empty-handed search falls through
        // to the full pipeline (which then skips the redundant re-search).
        let mut searched_early = false;
        if let Some((left, right)) = &signatures {
            if self.search_counterexamples && graphqe_analyzer::signatures_discriminate(left, right)
            {
                let stage_start = Instant::now();
                let witness = counterexample::find_counterexample_parallel(
                    &parsed1,
                    &parsed2,
                    &self.search_config,
                    self.effective_search_threads(),
                );
                stats.stages.search = stage_start.elapsed();
                if let Some(example) = witness {
                    stats.latency = start.elapsed();
                    return (Verdict::NotEquivalent(Box::new(example)), stats);
                }
                searched_early = true;
            }
        }
        let mut verdict = if searched_early {
            // The deterministic search already came up empty; re-running it
            // after the decision would find nothing and double the cost.
            let no_re_search = GraphQE { search_counterexamples: false, ..self.clone() };
            no_re_search.prove_parsed_with_stats(&parsed1, &parsed2, &mut stats)
        } else {
            self.prove_parsed_with_stats(&parsed1, &parsed2, &mut stats)
        };
        // Typed decision retry: when the pipeline could not decide and the
        // analyzer inferred matching non-null Integer columns on both sides,
        // rebuild both G-expressions with integer-sorted output terms and
        // decide once more (identity column alignment only). Integer sorts
        // let equality chains participate in the SMT solver's linear
        // reasoning, which can prune summands the untyped encoding cannot.
        if let Verdict::Unknown {
            category: FailureCategory::UninterpretedFunction | FailureCategory::Other,
            ..
        } = &verdict
        {
            if let Some((left, right)) = &signatures {
                let hints = graphqe_analyzer::int_hint_columns(left, right);
                if !hints.is_empty()
                    && self.prove_with_int_hints(&parsed1, &parsed2, &hints, &mut stats)
                {
                    stats.used_type_hints = true;
                    verdict = Verdict::Equivalent(stats.clone());
                }
            }
        }
        stats.latency = start.elapsed();
        if let Verdict::Equivalent(embedded) = &mut verdict {
            embedded.latency = stats.latency;
            embedded.stages = stats.stages;
        }
        (verdict, stats)
    }

    /// The stage-⓪ typed retry: normalize, build with integer-sorted output
    /// columns ([`gexpr::build_query_typed`]), decide on the identity column
    /// alignment. Returns whether the typed decision proved the pair. Strictly
    /// best-effort — every failure (trip, unsupported feature, segment split)
    /// leaves the original verdict standing.
    fn prove_with_int_hints(
        &self,
        q1: &Query,
        q2: &Query,
        hints: &[usize],
        stats: &mut ProofStats,
    ) -> bool {
        let normalized = if self.normalize {
            let n1 = cypher_normalizer::try_normalize_query_with_report(q1);
            let n2 = cypher_normalizer::try_normalize_query_with_report(q2);
            match (n1, n2) {
                (Ok((n1, _)), Ok((n2, _))) => (n1, n2),
                _ => return false,
            }
        } else {
            (q1.clone(), q2.clone())
        };
        let (n1, n2) = &normalized;
        if divide::needs_divide_and_conquer(n1) || divide::needs_divide_and_conquer(n2) {
            return false;
        }
        let build_start = Instant::now();
        let built = (gexpr::build_query_typed(n1, hints), gexpr::build_query_typed(n2, hints));
        stats.stages.build += build_start.elapsed();
        let (Ok(built1), Ok(built2)) = built else {
            return false;
        };
        if built1.columns != built2.columns {
            return false;
        }
        let decide_start = Instant::now();
        let outcome = liastar::try_check_equivalence_with_opts(
            &built1.expr,
            &built2.expr,
            DecideOptions { tree_normalizer: self.use_tree_normalizer },
        );
        stats.stages.decide += decide_start.elapsed();
        match outcome {
            Ok((Decision::Proved, decision)) => {
                stats.column_permutation = 0;
                stats.decision = decision;
                true
            }
            _ => false,
        }
    }

    /// Proves many pairs in one call, distributing them over all available
    /// CPU cores. Results are returned in input order; each entry is exactly
    /// what [`GraphQE::prove`] would return for that pair.
    pub fn prove_batch<L, R>(&self, pairs: &[(L, R)]) -> Vec<Verdict>
    where
        L: AsRef<str> + Sync,
        R: AsRef<str> + Sync,
    {
        self.prove_batch_with_threads(pairs, machine_parallelism())
    }

    /// [`GraphQE::prove_batch`] with an explicit worker-thread count.
    pub fn prove_batch_with_threads<L, R>(&self, pairs: &[(L, R)], threads: usize) -> Vec<Verdict>
    where
        L: AsRef<str> + Sync,
        R: AsRef<str> + Sync,
    {
        self.prove_batch_detailed(pairs, threads)
            .into_iter()
            .map(|outcome| outcome.verdict)
            .collect()
    }

    /// Batch proving with per-pair wall-clock latencies, for benchmarking.
    /// Identical to [`GraphQE::prove_batch_report`] minus the cache report.
    pub fn prove_batch_detailed<L, R>(&self, pairs: &[(L, R)], threads: usize) -> Vec<BatchOutcome>
    where
        L: AsRef<str> + Sync,
        R: AsRef<str> + Sync,
    {
        self.prove_batch_report(pairs, threads).outcomes
    }

    /// Batch proving with per-pair wall-clock latencies plus an aggregate
    /// [`CacheStats`] report, for benchmarking.
    ///
    /// Workers share the read-only prover configuration and pull pairs from a
    /// single atomic cursor (dynamic load balancing — pair latencies vary by
    /// orders of magnitude, so static chunking would straggle). Each worker
    /// thread accumulates normalization results in its own thread-local
    /// hash-consed arena, so structurally overlapping pairs — ubiquitous in
    /// real workloads — are normalized once per worker; once the arena
    /// outgrows [`ProveLimits::arena_node_budget`] the worker evicts its caches
    /// (the epoch-based eviction story), which is counted in the report.
    ///
    /// The cache counters are process-global, so the reported deltas cover
    /// exactly this run only when no other prover runs concurrently — true
    /// for the benchmark binaries, which is what the report is for. Services
    /// that run batches concurrently should call
    /// [`GraphQE::prove_batch_outcomes`] instead.
    pub fn prove_batch_report<L, R>(&self, pairs: &[(L, R)], threads: usize) -> BatchReport
    where
        L: AsRef<str> + Sync,
        R: AsRef<str> + Sync,
    {
        let smt_before = smt::formula_cache_stats();
        let liastar_before = liastar::cache_counters();
        let memo_before = counterexample::search_memo_stats();
        let memo_evictions_before = counterexample::search_memo_evictions();
        let parse_before = parse_cache_stats();
        let parse_evictions_before = parse_cache_evictions();
        let normalize_before = normalize_cache_stats();
        let normalize_evictions_before = normalize_cache_evictions();
        let plan_before = counterexample::plan_cache_stats();
        let plan_evictions_before = counterexample::plan_cache_evictions();
        let cert_before = certificate_counters();
        // Scope the peak metric to this run: interning bumps the global
        // counter, and workers fold in their arena size after every pair so
        // warm arenas (which intern nothing new) are still counted.
        gexpr::arena::reset_peak_node_count();
        let (outcomes, epoch_resets) = self.prove_batch_outcomes(pairs, threads);

        let smt_after = smt::formula_cache_stats();
        let liastar_after = liastar::cache_counters();
        let cache = CacheStats {
            smt_formula_hits: smt_after.0.saturating_sub(smt_before.0),
            smt_formula_misses: smt_after.1.saturating_sub(smt_before.1),
            summand_hits: liastar_after.summand_hits.saturating_sub(liastar_before.summand_hits),
            summand_misses: liastar_after
                .summand_misses
                .saturating_sub(liastar_before.summand_misses),
            disjoint_hits: liastar_after.disjoint_hits.saturating_sub(liastar_before.disjoint_hits),
            disjoint_misses: liastar_after
                .disjoint_misses
                .saturating_sub(liastar_before.disjoint_misses),
            search_memo_hits: counterexample::search_memo_stats().0.saturating_sub(memo_before.0),
            search_memo_misses: counterexample::search_memo_stats().1.saturating_sub(memo_before.1),
            search_memo_evictions: counterexample::search_memo_evictions()
                .saturating_sub(memo_evictions_before),
            parse_cache_hits: parse_cache_stats().0.saturating_sub(parse_before.0),
            parse_cache_misses: parse_cache_stats().1.saturating_sub(parse_before.1),
            parse_cache_evictions: parse_cache_evictions().saturating_sub(parse_evictions_before),
            normalize_cache_hits: normalize_cache_stats().0.saturating_sub(normalize_before.0),
            normalize_cache_misses: normalize_cache_stats().1.saturating_sub(normalize_before.1),
            normalize_cache_evictions: normalize_cache_evictions()
                .saturating_sub(normalize_evictions_before),
            plan_cache_hits: counterexample::plan_cache_stats().0.saturating_sub(plan_before.0),
            plan_cache_misses: counterexample::plan_cache_stats().1.saturating_sub(plan_before.1),
            plan_cache_evictions: counterexample::plan_cache_evictions()
                .saturating_sub(plan_evictions_before),
            cert_emitted: certificate_counters().0.saturating_sub(cert_before.0),
            cert_check_failures: certificate_counters().1.saturating_sub(cert_before.1),
            peak_arena_nodes: gexpr::arena::peak_node_count(),
            epoch_resets,
        };
        BatchReport { outcomes, cache }
    }

    /// Batch proving for long-lived services: the pair loop of
    /// [`GraphQE::prove_batch_report`] — dynamic load balancing, per-pair
    /// panic isolation, arena-budget epoch janitor — without the
    /// process-global counter resets and deltas, which are only meaningful
    /// when exactly one batch runs at a time. Safe to call from any number of
    /// threads concurrently; thread-local caches (plan, SMT formula, summand,
    /// arena) stay warm on whichever thread runs the pairs, which is why a
    /// server pins `threads = 1` and calls this from its own worker threads.
    ///
    /// Returns the per-pair outcomes in input order plus the number of
    /// arena-budget epoch resets this batch performed (peer clears this batch
    /// adopted instead of repeating are not counted; see
    /// `counterexample::clear_pool_cache_if_unchanged`).
    pub fn prove_batch_outcomes<L, R>(
        &self,
        pairs: &[(L, R)],
        threads: usize,
    ) -> (Vec<BatchOutcome>, u64)
    where
        L: AsRef<str> + Sync,
        R: AsRef<str> + Sync,
    {
        let epoch_resets = AtomicUsize::new(0);
        let batch_start_pool_gen = counterexample::pool_cache_generation();

        let threads = threads.clamp(1, pairs.len().max(1));
        // Divide the machine between pair workers and the counterexample
        // search inside each pair: with `threads` pair workers on `machine`
        // cores, each search gets the quotient, so stragglers (pairs that
        // exhaust the whole candidate pool) parallelize their search instead
        // of serializing the tail of the batch. An explicit
        // `search_threads` setting is respected unchanged.
        let worker_prover = if self.search_threads == 0 {
            GraphQE { search_threads: (machine_parallelism() / threads).max(1), ..self.clone() }
        } else {
            self.clone()
        };
        let prove_timed = |left: &str, right: &str| {
            let start = Instant::now();
            // Panic isolation: one pair's panic degrades to
            // `Unknown(Panicked)` instead of killing the whole batch. The
            // worker's thread-local caches may hold partial state from the
            // unwound proof, so they are evicted wholesale before the next
            // pair (process-wide caches are already guarded at insertion,
            // and the ambient-token guard restores itself on unwind).
            let proved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker_prover.prove(left, right)
            }));
            let verdict = proved.unwrap_or_else(|_| {
                liastar::reset_thread_caches();
                Verdict::Unknown {
                    category: FailureCategory::Panicked,
                    reason: "the prover panicked while proving this pair".to_string(),
                }
            });
            let outcome = BatchOutcome {
                failure_reason: verdict.failure_category(),
                verdict,
                latency: start.elapsed(),
            };
            let arena_nodes = gexpr::arena::thread_store_node_count();
            gexpr::arena::note_node_peak(arena_nodes);
            let arena_node_budget = self.limits.arena_node_budget;
            if arena_node_budget > 0 && arena_nodes > arena_node_budget {
                liastar::reset_thread_caches();
                // The frozen-plan cache is process-global since PR 8 and
                // rides the pool-cache clear below; only liastar's caches
                // remain per-thread.
                // The pool/memo cache is process-global: when several workers
                // cross their (thread-local) arena budgets around the same
                // time, one clear suffices — a worker whose last-seen
                // generation is stale adopts the clear a peer already
                // performed instead of wiping the state everyone just started
                // rebuilding. The compare-and-clear is atomic (one lock), so
                // two workers racing on the same stale generation cannot both
                // wipe. A thread's first trip compares against the generation
                // at batch start, so fresh scoped workers still evict when
                // nobody else has.
                POOL_CLEAR_SEEN.with(|seen| {
                    let reference = seen.get().unwrap_or(batch_start_pool_gen);
                    if counterexample::clear_pool_cache_if_unchanged(reference) {
                        epoch_resets.fetch_add(1, Ordering::Relaxed);
                    }
                    seen.set(Some(counterexample::pool_cache_generation()));
                });
            }
            outcome
        };
        let outcomes = if threads == 1 {
            pairs.iter().map(|(l, r)| prove_timed(l.as_ref(), r.as_ref())).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut indexed: Vec<(usize, BatchOutcome)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let index = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((left, right)) = pairs.get(index) else { break };
                                local.push((index, prove_timed(left.as_ref(), right.as_ref())));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("prover worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(index, _)| *index);
            indexed.into_iter().map(|(_, outcome)| outcome).collect()
        };
        (outcomes, epoch_resets.load(Ordering::Relaxed) as u64)
    }

    /// Proves the (non-)equivalence of two parsed queries (installing a run
    /// token for active [`GraphQE::limits`], like [`GraphQE::prove`]).
    pub fn prove_queries(&self, q1: &Query, q2: &Query) -> Verdict {
        let run = || {
            let mut stats = ProofStats::default();
            self.prove_queries_with_stats(q1, q2, &mut stats)
        };
        match self.limits.token() {
            Some(token) => limits::with_token(token, run),
            None => run(),
        }
    }

    /// Stages ② through ④ for parsed, `Arc`-shared queries: stage ② resolves
    /// through the process-wide normalize/build cache when enabled, then the
    /// pair goes down the common decision path of
    /// [`GraphQE::prove_queries_with_stats`].
    fn prove_parsed_with_stats(
        &self,
        q1: &Arc<Query>,
        q2: &Arc<Query>,
        stats: &mut ProofStats,
    ) -> Verdict {
        if !(self.normalize && self.use_normalize_cache) {
            return self.prove_queries_with_stats(q1, q2, stats);
        }
        let start = Instant::now();
        // Stage ②: rule-based normalization through the shared cache (a
        // warm hit reduces the stage to a pointer-keyed probe).
        let stage_start = Instant::now();
        let normalized = normalized_stages(q1).and_then(|n1| Ok((n1, normalized_stages(q2)?)));
        stats.stages.normalize = stage_start.elapsed();
        match normalized {
            Ok((n1, n2)) => self.prove_prepared(
                q1,
                q2,
                &Normalized::Cached(n1),
                &Normalized::Cached(n2),
                start,
                stats,
            ),
            Err(trip) => trip_verdict(trip),
        }
    }

    /// Stages ② through ④ plus the counterexample search, recording stage
    /// timings into `stats` on every exit path. Verdict policy under an
    /// ambient run token: a completed proof stays `Equivalent` and a found
    /// witness stays `NotEquivalent` even if a trip raced with them (both
    /// certificates are sound); otherwise the first recorded trip wins over
    /// the paper's failure categories, and a tripped decision skips the
    /// search entirely.
    fn prove_queries_with_stats(&self, q1: &Query, q2: &Query, stats: &mut ProofStats) -> Verdict {
        let start = Instant::now();
        // Stage ②: rule-based normalization (fallible under a deadline).
        let stage_start = Instant::now();
        let normalized = if self.normalize {
            cypher_normalizer::try_normalize_query_with_report(q1).and_then(|(n1, _)| {
                Ok((n1, cypher_normalizer::try_normalize_query_with_report(q2)?.0))
            })
        } else {
            Ok((q1.clone(), q2.clone()))
        };
        stats.stages.normalize = stage_start.elapsed();
        match normalized {
            Ok((n1, n2)) => self.prove_prepared(
                q1,
                q2,
                &Normalized::Owned(n1),
                &Normalized::Owned(n2),
                start,
                stats,
            ),
            Err(trip) => trip_verdict(trip),
        }
    }

    /// Stages ③/④ plus the counterexample search, common to the cached and
    /// owned normalization paths. `q1`/`q2` are the **original** queries (the
    /// search evaluates those); `start` is when stage ② began, so the
    /// embedded latency of an `Equivalent` verdict covers normalization too.
    fn prove_prepared(
        &self,
        q1: &Query,
        q2: &Query,
        n1: &Normalized,
        n2: &Normalized,
        start: Instant,
        stats: &mut ProofStats,
    ) -> Verdict {
        let outcome = self.prove_normalized(n1, n2, stats);
        match outcome {
            Ok(()) => {
                let mut embedded = stats.clone();
                embedded.latency = start.elapsed();
                Verdict::Equivalent(embedded)
            }
            Err((category, reason)) => {
                // A trip during the decision means "not proved" only because
                // the run was cut short — searching for a witness on top of
                // it would blow the deadline further; report the trip.
                if let Some(trip) = limits::trip() {
                    return trip_verdict(trip);
                }
                // Not proven: try to certify non-equivalence with a concrete
                // counterexample graph.
                let stage_start = Instant::now();
                let witness = if self.search_counterexamples {
                    counterexample::find_counterexample_parallel(
                        q1,
                        q2,
                        &self.search_config,
                        self.effective_search_threads(),
                    )
                } else {
                    None
                };
                // Accumulates: the stage-⓪ fast path may already have
                // charged an (empty-handed) search to this stage.
                stats.stages.search += stage_start.elapsed();
                if let Some(example) = witness {
                    // Sound even when a trip aborted the rest of the search:
                    // the witness graph concretely separates the queries.
                    return Verdict::NotEquivalent(Box::new(example));
                }
                // An aborted search proves nothing — exhaustion-style
                // `Unknown` must carry the trip, not the paper category.
                if let Some(trip) = limits::trip() {
                    return trip_verdict(trip);
                }
                Verdict::Unknown { category, reason }
            }
        }
    }

    /// The equivalence-proving part of the pipeline (stages ③ and ④),
    /// including divide-and-conquer and return-element mapping. On success
    /// the proof's statistics are merged into `stats`.
    fn prove_normalized(
        &self,
        n1: &Normalized,
        n2: &Normalized,
        stats: &mut ProofStats,
    ) -> Result<(), (FailureCategory, String)> {
        let q1 = n1.query();
        let q2 = n2.query();
        // Divide-and-conquer for ORDER BY ... LIMIT/SKIP inside subqueries.
        // Segments are sliced-up query fragments, so their builds cannot come
        // from the whole-query memo; they are built fresh per segment.
        if divide::needs_divide_and_conquer(q1) || divide::needs_divide_and_conquer(q2) {
            let segments1 = divide::split_into_segments(q1).ok_or((
                FailureCategory::SortingTruncation,
                "cannot split the first query into provable segments".to_string(),
            ))?;
            let segments2 = divide::split_into_segments(q2).ok_or((
                FailureCategory::SortingTruncation,
                "cannot split the second query into provable segments".to_string(),
            ))?;
            if segments1.len() != segments2.len() {
                return Err((
                    FailureCategory::SortingTruncation,
                    format!(
                        "the queries contain {} and {} ORDER BY ... LIMIT fragments",
                        segments1.len() - 1,
                        segments2.len() - 1
                    ),
                ));
            }
            stats.used_divide_and_conquer = true;
            for (a, b) in segments1.iter().zip(segments2.iter()) {
                let segment = self.prove_segment(a, b, &mut stats.stages)?;
                stats.decision.pruned_zero += segment.decision.pruned_zero;
                stats.decision.pruned_implied += segment.decision.pruned_implied;
                stats.column_permutation = stats.column_permutation.max(segment.column_permutation);
            }
            return Ok(());
        }
        // Stage ③: G-expression construction — through the per-entry memo on
        // the cached path, so a warm re-certification skips the build.
        let built1 = n1.build_timed(&mut stats.stages).map_err(categorize_build_error)?;
        let built2 = n2.build_timed(&mut stats.stages).map_err(categorize_build_error)?;
        let segment = self.prove_segment_with(q1, q2, &built1, &built2, &mut stats.stages)?;
        stats.column_permutation = segment.column_permutation;
        stats.decision = segment.decision;
        Ok(())
    }

    /// Proves one pair of (sub)queries by G-expression construction and the
    /// LIA* decision. Used by the divide-and-conquer path, whose segment
    /// fragments have no memoized builds.
    fn prove_segment(
        &self,
        q1: &Query,
        q2: &Query,
        timings: &mut StageTimings,
    ) -> Result<ProofStats, (FailureCategory, String)> {
        // Stage ③: G-expression construction.
        let build_start = Instant::now();
        let built = (build_query(q1), build_query(q2));
        timings.build += build_start.elapsed();
        let built1 = built.0.map_err(categorize_build_error)?;
        let built2 = built.1.map_err(categorize_build_error)?;
        self.prove_segment_with(q1, q2, &built1, &built2, timings)
    }

    /// The decision half of [`GraphQE::prove_segment`], starting from built
    /// G-expressions: return-element mapping and the LIA* decision. Build
    /// (permutation rebuilds) and decide wall-clock is accumulated into
    /// `timings` on every exit path.
    fn prove_segment_with(
        &self,
        q1: &Query,
        q2: &Query,
        built1: &BuildOutput,
        built2: &BuildOutput,
        timings: &mut StageTimings,
    ) -> Result<ProofStats, (FailureCategory, String)> {
        if built1.columns != built2.columns {
            // The paper: queries with different return arity can only be
            // equivalent if both always return the empty result.
            let decide_start = Instant::now();
            let empty = both_always_empty(built1, built2, self.use_tree_normalizer);
            timings.decide += decide_start.elapsed();
            if empty {
                return Ok(ProofStats::default());
            }
            return Err((
                FailureCategory::Other,
                format!("the queries return {} and {} columns", built1.columns, built2.columns),
            ));
        }

        // Return-element mapping (§IV-C): try the identity first, then every
        // kind-compatible permutation of the second query's RETURN items.
        for (index, permutation) in column_permutations(&built1.column_kinds, &built2.column_kinds)
            .into_iter()
            .take(self.max_column_permutations)
            .enumerate()
        {
            let build_start = Instant::now();
            let candidate = if is_identity(&permutation) {
                built2.clone()
            } else {
                match build_query(&permute_returns(q2, &permutation)) {
                    Ok(output) => output,
                    Err(_) => {
                        timings.build += build_start.elapsed();
                        continue;
                    }
                }
            };
            timings.build += build_start.elapsed();
            // Stage ④: the LIA★ decision (fallible under limits — a trip
            // surfaces here instead of being silently degraded to NotProved).
            let decide_start = Instant::now();
            let outcome = liastar::try_check_equivalence_with_opts(
                &built1.expr,
                &candidate.expr,
                DecideOptions { tree_normalizer: self.use_tree_normalizer },
            );
            timings.decide += decide_start.elapsed();
            let (decision, stats) = match outcome {
                Ok(result) => result,
                Err(trip) => return Err((trip.into(), trip.to_string())),
            };
            if decision == Decision::Proved {
                return Ok(ProofStats {
                    column_permutation: index,
                    decision: stats,
                    ..Default::default()
                });
            }
        }
        Err((
            categorize_unproved(q1, q2),
            "the G-expressions could not be proven equal".to_string(),
        ))
    }
}

/// The `Unknown` verdict of a tripped run: the first recorded trip wins and
/// is carried verbatim into the failure taxonomy.
fn trip_verdict(trip: limits::Trip) -> Verdict {
    Verdict::Unknown { category: trip.into(), reason: trip.to_string() }
}

fn invalid(error: CheckError) -> Verdict {
    Verdict::Unknown { category: FailureCategory::InvalidQuery, reason: error.to_string() }
}

/// Stage ⓪ for a parsed pair: the two output signatures when type inference
/// produced one for each side (`None` when either signature is unknown, e.g.
/// `RETURN *`), or the `Unknown(TypeError)` verdict when either query has a
/// definite type error.
fn analyzed_signatures(q1: &Query, q2: &Query) -> Result<Option<SignaturePair>, Box<Verdict>> {
    let left = graphqe_analyzer::analyze(q1).map_err(|d| type_error("first", d))?;
    let right = graphqe_analyzer::analyze(q2).map_err(|d| type_error("second", d))?;
    Ok(left.signature.zip(right.signature))
}

/// Both sides' inferred output signatures, left then right.
type SignaturePair = (Vec<TypeSig>, Vec<TypeSig>);

fn type_error(side: &str, diagnostic: cypher_parser::Diagnostic) -> Verdict {
    Verdict::Unknown {
        category: FailureCategory::TypeError,
        reason: format!("{side} query: {diagnostic}"),
    }
}

fn categorize_build_error(error: BuildError) -> (FailureCategory, String) {
    // Exhaustive over the typed feature enum: adding a feature class to the
    // builder without deciding its failure category fails compilation here.
    let category = match error.feature {
        Some(gexpr::UnsupportedFeature::SortingTruncation) => FailureCategory::SortingTruncation,
        Some(gexpr::UnsupportedFeature::NestedAggregate) => FailureCategory::NestedAggregate,
        None => FailureCategory::Other,
    };
    (category, error.to_string())
}

/// When the decision procedure fails, classify the failure the way the
/// paper's evaluation does (§VII-B).
fn categorize_unproved(q1: &Query, q2: &Query) -> FailureCategory {
    let text = format!(
        "{} {}",
        cypher_parser::pretty::query_to_string(q1),
        cypher_parser::pretty::query_to_string(q2)
    )
    .to_ascii_uppercase();
    // Scalar function calls (size, head, coalesce, ...), COLLECT and
    // arbitrary-length paths are all modeled with uninterpreted symbols.
    let mut uses_functions = false;
    for query in [q1, q2] {
        for part in &query.parts {
            for clause in &part.clauses {
                let mut check = |expr: &cypher_parser::ast::Expr| {
                    expr.walk(&mut |e| {
                        if matches!(e, cypher_parser::ast::Expr::FunctionCall { .. }) {
                            uses_functions = true;
                        }
                    })
                };
                match clause {
                    Clause::Match(m) => {
                        if let Some(w) = &m.where_clause {
                            check(w);
                        }
                    }
                    Clause::Return(p) => {
                        if let Some(items) = p.explicit_items() {
                            for item in items {
                                check(&item.expr);
                            }
                        }
                    }
                    Clause::With(w) => {
                        if let Some(items) = w.projection.explicit_items() {
                            for item in items {
                                check(&item.expr);
                            }
                        }
                    }
                    Clause::Unwind(u) => check(&u.expr),
                }
            }
        }
    }
    if uses_functions || text.contains("COLLECT(") || text.contains("*]") || text.contains("*..") {
        FailureCategory::UninterpretedFunction
    } else if text.contains("LIMIT") || text.contains("SKIP") || text.contains("ORDER BY") {
        FailureCategory::SortingTruncation
    } else {
        FailureCategory::Other
    }
}

/// Both queries are provably empty (their normalized G-expressions are 0).
fn both_always_empty(b1: &BuildOutput, b2: &BuildOutput, tree_normalizer: bool) -> bool {
    let norm: fn(&gexpr::GExpr) -> gexpr::GExpr =
        if tree_normalizer { gexpr::normalize_tree } else { gexpr::normalize };
    norm(&b1.expr).is_zero() && norm(&b2.expr).is_zero()
}

/// All permutations of the second query's columns whose kinds match the first
/// query's kinds position by position. The identity (if compatible) comes
/// first.
fn column_permutations(kinds1: &[ColumnKind], kinds2: &[ColumnKind]) -> Vec<Vec<usize>> {
    let n = kinds1.len();
    let mut result = Vec::new();
    let mut current = Vec::new();
    let mut used = vec![false; n];
    fn recurse(
        kinds1: &[ColumnKind],
        kinds2: &[ColumnKind],
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        result: &mut Vec<Vec<usize>>,
    ) {
        let position = current.len();
        if position == kinds1.len() {
            result.push(current.clone());
            return;
        }
        for candidate in 0..kinds2.len() {
            if !used[candidate] && kinds2[candidate] == kinds1[position] {
                used[candidate] = true;
                current.push(candidate);
                recurse(kinds1, kinds2, used, current, result);
                current.pop();
                used[candidate] = false;
            }
        }
    }
    recurse(kinds1, kinds2, &mut used, &mut current, &mut result);
    // If no kind-compatible permutation exists (e.g. kinds were inferred
    // differently), fall back to the identity so at least the direct
    // comparison is attempted.
    if result.is_empty() && n > 0 {
        result.push((0..n).collect());
    }
    if n == 0 {
        result.push(Vec::new());
    }
    // Put the identity first.
    result.sort_by_key(|p| if is_identity(p) { 0 } else { 1 });
    result
}

fn is_identity(permutation: &[usize]) -> bool {
    permutation.iter().enumerate().all(|(i, p)| i == *p)
}

/// Reorders the items of every `RETURN` clause of the query according to
/// `permutation` (output position `i` takes the item previously at
/// `permutation[i]`).
fn permute_returns(query: &Query, permutation: &[usize]) -> Query {
    let mut result = query.clone();
    for part in &mut result.parts {
        if let Some(Clause::Return(projection)) = part.clauses.last_mut() {
            if let ProjectionItems::Items(items) = &mut projection.items {
                if items.len() == permutation.len() {
                    let original = items.clone();
                    for (position, &source) in permutation.iter().enumerate() {
                        items[position] = original[source].clone();
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prover() -> GraphQE {
        GraphQE::new()
    }

    #[test]
    fn proves_the_paper_rewrites() {
        let prover = prover();
        // Renaming variables.
        assert!(prover
            .prove(
                "MATCH (person)-[x:READ]->(book:Book) RETURN person.name",
                "MATCH (n1)-[r1:READ]->(n2:Book) RETURN n1.name"
            )
            .is_equivalent());
        // Reversing path direction.
        assert!(prover
            .prove(
                "MATCH (a:Person)-[r:READ]->(b:Book) RETURN a, b",
                "MATCH (b:Book)<-[r:READ]-(a:Person) RETURN a, b"
            )
            .is_equivalent());
        // Splitting a graph pattern across MATCH clauses (with explicit
        // injectivity).
        assert!(prover
            .prove(
                "MATCH (a)-[r1]->(b)-[r2]->(c) WHERE r1 <> r2 RETURN a, c",
                "MATCH (a)-[r1]->(b) MATCH (b)-[r2]->(c) WHERE r1 <> r2 RETURN a, c"
            )
            .is_equivalent());
    }

    #[test]
    fn proves_normalization_dependent_pairs() {
        let prover = prover();
        // Undirected vs. explicit union of directions (rule ①).
        assert!(prover
            .prove(
                "MATCH (n1)-[]-(n2) RETURN n1.name",
                "MATCH (n1)-[]->(n2) RETURN n1.name UNION ALL MATCH (n1)<-[]-(n2) RETURN n1.name"
            )
            .is_equivalent());
        // Bounded variable-length path vs. union of lengths (rule ②).
        assert!(prover
            .prove(
                "MATCH (n1)-[*1..2]->(n2) RETURN n1",
                "MATCH (n1)-[]->(n2) RETURN n1 UNION ALL MATCH (n1)-[]->()-[]->(n2) RETURN n1"
            )
            .is_equivalent());
        // RETURN * expansion (rule ③).
        assert!(prover
            .prove("MATCH (x)-[z:R]->(y) RETURN *", "MATCH (x)-[z:R]->(y) RETURN x, y, z")
            .is_equivalent());
        // Redundant WITH elimination (rule ④).
        assert!(prover
            .prove("MATCH (x) WITH x.name AS name RETURN name", "MATCH (x) RETURN x.name")
            .is_equivalent());
        // id() equality simplification (rule ⑥).
        assert!(prover
            .prove("MATCH (n1), (n2) WHERE id(n1) = id(n2) RETURN n2", "MATCH (n1) RETURN n1")
            .is_equivalent());
    }

    #[test]
    fn proves_listing_2_with_divide_and_conquer() {
        let prover = prover();
        let verdict = prover.prove(
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
        );
        match &verdict {
            Verdict::Equivalent(stats) => assert!(stats.used_divide_and_conquer),
            other => panic!("expected equivalence, got {other}"),
        }
    }

    #[test]
    fn maps_returned_elements_across_queries() {
        // §IV-C example: the returned node variables appear in a different
        // order but denote the same nodes.
        let prover = prover();
        assert!(prover
            .prove(
                "MATCH (n1)-[r:READ]->(n2) RETURN n1, n2",
                "MATCH (n1)<-[r:READ]-(n2) RETURN n1, n2"
            )
            .is_equivalent());
    }

    #[test]
    fn rejects_mutated_pairs_with_counterexamples() {
        let prover = prover();
        assert!(prover
            .prove(
                "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
                "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name"
            )
            .is_not_equivalent());
        assert!(prover
            .prove(
                "MATCH (n:Person) WHERE n.age = 59 RETURN n.name",
                "MATCH (n:Person) WHERE n.age = 60 RETURN n.name"
            )
            .is_not_equivalent());
        assert!(prover
            .prove(
                "MATCH (a:Person) RETURN a UNION ALL MATCH (a:Person) RETURN a",
                "MATCH (a:Person) RETURN a UNION MATCH (a:Person) RETURN a"
            )
            .is_not_equivalent());
        assert!(prover
            .prove(
                "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
                "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title"
            )
            .is_not_equivalent());
    }

    #[test]
    fn reports_the_papers_failure_categories() {
        let prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
        // Nested aggregate computation.
        let verdict = prover
            .prove("MATCH (n) RETURN SUM(n.a) / COUNT(n)", "MATCH (n) RETURN SUM(n.a) / COUNT(n)");
        match verdict {
            Verdict::Unknown { category, .. } => {
                assert_eq!(category, FailureCategory::NestedAggregate)
            }
            other => panic!("expected unknown, got {other}"),
        }
        // Inconsistent number of ORDER BY ... LIMIT fragments.
        let verdict = prover.prove(
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
            "MATCH (n1)-[]->(n2) RETURN n2",
        );
        match verdict {
            Verdict::Unknown { category, .. } => {
                assert_eq!(category, FailureCategory::SortingTruncation)
            }
            other => panic!("expected unknown, got {other}"),
        }
    }

    #[test]
    fn invalid_queries_are_rejected_in_stage_1() {
        let prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
        let verdict = prover.prove("MATCH (n RETURN n", "MATCH (n) RETURN n");
        match verdict {
            Verdict::Unknown { category, .. } => {
                assert_eq!(category, FailureCategory::InvalidQuery)
            }
            other => panic!("expected invalid-query verdict, got {other}"),
        }
        let verdict = prover.prove("MATCH (n) WHERE m.x = 1 RETURN n", "MATCH (n) RETURN n");
        assert!(matches!(
            verdict,
            Verdict::Unknown { category: FailureCategory::InvalidQuery, .. }
        ));
    }

    #[test]
    fn ablation_without_normalization_loses_pairs() {
        let with = GraphQE::new();
        let without = GraphQE { normalize: false, search_counterexamples: false, ..GraphQE::new() };
        let q1 = "MATCH (n1), (n2) WHERE id(n1) = id(n2) RETURN n2";
        let q2 = "MATCH (n1) RETURN n1";
        assert!(with.prove(q1, q2).is_equivalent());
        assert!(!without.prove(q1, q2).is_equivalent());
    }

    #[test]
    fn batch_proving_matches_sequential_verdicts_in_order() {
        let _serial = BATCH_REPORT_LOCK.lock().unwrap();
        let prover = prover();
        let pairs = vec![
            ("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"),
            ("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n"),
            (
                "MATCH (n) WHERE n.a = 1 AND n.b = 2 RETURN n",
                "MATCH (n) WHERE n.b = 2 AND n.a = 1 RETURN n",
            ),
            ("MATCH (n) RETURN DISTINCT n.name", "MATCH (n) RETURN n.name"),
        ];
        for threads in [1, 3] {
            let batch = prover.prove_batch_with_threads(&pairs, threads);
            assert_eq!(batch.len(), pairs.len());
            for ((left, right), verdict) in pairs.iter().zip(&batch) {
                let solo = prover.prove(left, right);
                assert_eq!(
                    (solo.is_equivalent(), solo.is_not_equivalent()),
                    (verdict.is_equivalent(), verdict.is_not_equivalent()),
                    "batch verdict diverges for {left} vs {right} with {threads} threads"
                );
            }
        }
    }

    /// `prove_batch_report` documents that its process-global counters are
    /// only meaningful without concurrent provers; tests that read the
    /// report serialize on this lock.
    static BATCH_REPORT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn batch_report_exposes_cache_behavior() {
        let _serial = BATCH_REPORT_LOCK.lock().unwrap();
        let prover = prover();
        // A pair whose decision needs SMT summand simplification, twice: the
        // second run must hit the summand cache.
        let pair = (
            "MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n",
            "MATCH (n) WHERE n.age > 5 RETURN n",
        );
        let report = prover.prove_batch_report(&[pair, pair], 1);
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.outcomes.iter().all(|o| o.verdict.is_equivalent()));
        assert!(report.cache.summand_misses > 0, "first pair must miss");
        assert!(report.cache.summand_hits > 0, "second pair must hit");
        assert!(report.cache.peak_arena_nodes > 0);
        assert_eq!(report.cache.epoch_resets, 0, "default budget must not trigger here");
        let rate = report.cache.summand_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn tiny_arena_budget_triggers_epoch_resets_without_changing_verdicts() {
        let _serial = BATCH_REPORT_LOCK.lock().unwrap();
        let budgeted = GraphQE {
            limits: ProveLimits { arena_node_budget: 1, ..ProveLimits::default() },
            ..GraphQE::new()
        };
        let pairs = vec![
            ("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"),
            ("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n"),
            (
                "MATCH (n) WHERE n.a = 1 AND n.b = 2 RETURN n",
                "MATCH (n) WHERE n.b = 2 AND n.a = 1 RETURN n",
            ),
        ];
        let report = budgeted.prove_batch_report(&pairs, 1);
        assert_eq!(report.cache.epoch_resets, pairs.len() as u64);
        let reference = prover();
        for ((left, right), outcome) in pairs.iter().zip(&report.outcomes) {
            let solo = reference.prove(left, right);
            assert_eq!(
                (solo.is_equivalent(), solo.is_not_equivalent()),
                (outcome.verdict.is_equivalent(), outcome.verdict.is_not_equivalent()),
                "epoch resets changed the verdict of {left} vs {right}"
            );
        }
    }

    /// Tests that read parse-cache counters or reconfigure its (global)
    /// capacity serialize here so they cannot evict each other's entries
    /// mid-assertion.
    static PARSE_CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn parse_cache_replays_both_successes_and_failures() {
        let _serial = PARSE_CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prover = prover();
        // Unique texts so this test controls its own cache entries.
        let valid = "MATCH (pc_hit_test:ParseCache) RETURN pc_hit_test";
        let invalid = "MATCH (pc_err_test RETURN pc_err_test";
        let (hits_before, misses_before) = parse_cache_stats();
        assert!(prover.prove(valid, valid).is_equivalent());
        let (_, misses_after_first) = parse_cache_stats();
        assert!(misses_after_first > misses_before, "first sight of a text must miss");
        // Second certification of the same pair: both texts replay.
        assert!(prover.prove(valid, valid).is_equivalent());
        let (hits_after, _) = parse_cache_stats();
        assert!(hits_after >= hits_before + 2, "warm re-certification must hit per text");
        // Parse failures are memoized too and replay the same verdict.
        for _ in 0..2 {
            let verdict = prover.prove(invalid, valid);
            assert!(matches!(
                verdict,
                Verdict::Unknown { category: FailureCategory::InvalidQuery, .. }
            ));
        }
        // An opted-out prover bypasses the cache entirely.
        let uncached = GraphQE { use_parse_cache: false, ..GraphQE::new() };
        let (hits_frozen, misses_frozen) = parse_cache_stats();
        assert!(uncached.prove(valid, valid).is_equivalent());
        assert_eq!(
            parse_cache_stats(),
            (hits_frozen, misses_frozen),
            "use_parse_cache: false must not touch the cache"
        );
    }

    #[test]
    fn parse_cache_capacity_bound_holds_and_counts_evictions() {
        let _serial = PARSE_CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = set_parse_cache_capacity(4);
        let evictions_before = parse_cache_evictions();
        let prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
        for i in 0..12 {
            let text = format!("MATCH (pc_bound_{i}:L{i}) RETURN pc_bound_{i}");
            let _ = prover.prove(&text, &text);
            assert!(parse_cache_len() <= 4, "bound exceeded: {} entries", parse_cache_len());
        }
        assert!(parse_cache_evictions() > evictions_before, "saturation must evict");
        // Shrinking evicts down immediately; capacity clamps to 1.
        set_parse_cache_capacity(1);
        assert!(parse_cache_len() <= 1);
        assert_eq!(set_parse_cache_capacity(previous), 1);
    }

    /// Tests that read normalize-cache counters or reconfigure its (global)
    /// capacity serialize here, like the parse-cache tests above.
    static NORMALIZE_CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn normalize_cache_replays_warm_certifications() {
        let _serial = NORMALIZE_CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prover = prover();
        // A unique text whose normalization does real work (undirected
        // relationship → union of directions).
        let text = "MATCH (nc_hit_test)-[r]-(m) RETURN nc_hit_test";
        let (_, misses_before) = normalize_cache_stats();
        assert!(prover.prove(text, text).is_equivalent());
        let (hits_mid, misses_mid) = normalize_cache_stats();
        assert!(misses_mid > misses_before, "first sight of a query must miss");
        // Warm re-certification: both sides replay from the cache.
        assert!(prover.prove(text, text).is_equivalent());
        let (hits_after, _) = normalize_cache_stats();
        assert!(hits_after >= hits_mid + 2, "warm re-certification must hit per side");
        // An opted-out prover bypasses the cache entirely.
        let uncached = GraphQE { use_normalize_cache: false, ..GraphQE::new() };
        let frozen = normalize_cache_stats();
        assert!(uncached.prove(text, text).is_equivalent());
        assert_eq!(
            normalize_cache_stats(),
            frozen,
            "use_normalize_cache: false must not touch the cache"
        );
    }

    #[test]
    fn normalize_cache_capacity_bound_holds_and_counts_evictions() {
        let _serial = NORMALIZE_CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = set_normalize_cache_capacity(4);
        let evictions_before = normalize_cache_evictions();
        let prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
        for i in 0..12 {
            let text = format!("MATCH (nc_bound_{i}:L{i}) RETURN nc_bound_{i}");
            let _ = prover.prove(&text, &text);
            assert!(normalize_cache_len() <= 4, "bound exceeded: {}", normalize_cache_len());
        }
        assert!(normalize_cache_evictions() > evictions_before, "saturation must evict");
        set_normalize_cache_capacity(1);
        assert!(normalize_cache_len() <= 1);
        assert_eq!(set_normalize_cache_capacity(previous), 1);
    }

    #[test]
    fn normalized_stages_memoize_builds_across_threads() {
        let query =
            parse_check_cached("MATCH (nc_build_memo)-[r:R]->(m) RETURN nc_build_memo").unwrap();
        let stages = normalized_stages(&query).expect("normalization must succeed");
        let baseline = stages.build().expect("build must succeed");
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let stages = Arc::clone(&stages);
                let expected = baseline.clone();
                std::thread::spawn(move || {
                    assert_eq!(stages.build().expect("build must succeed"), expected);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // The memoized build equals a fresh build of the normalized form.
        assert_eq!(build_query(stages.normalized()).unwrap(), baseline);
    }

    #[test]
    fn batch_report_surfaces_parse_and_plan_cache_counters() {
        let _serial = BATCH_REPORT_LOCK.lock().unwrap();
        let _parse_serial = PARSE_CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // A non-equivalent pair (the search runs and plans both queries),
        // proved twice in one batch on one thread: the second pass must hit
        // both the parse cache and the thread's plan cache.
        let pair = (
            "MATCH (cache_stats_n:Person) RETURN cache_stats_n",
            "MATCH (cache_stats_n:Book) RETURN cache_stats_n",
        );
        let prover = GraphQE {
            search_config: SearchConfig { use_memo: false, ..SearchConfig::default() },
            ..GraphQE::new()
        };
        let report = prover.prove_batch_report(&[pair, pair], 1);
        assert!(report.outcomes.iter().all(|o| o.verdict.is_not_equivalent()));
        assert!(report.cache.parse_cache_misses > 0, "first pass must miss the parse cache");
        assert!(report.cache.parse_cache_hits > 0, "second pass must hit the parse cache");
        assert!(report.cache.normalize_cache_misses > 0, "first pass must normalize");
        assert!(report.cache.normalize_cache_hits > 0, "second pass must hit the normalize cache");
        assert!(report.cache.plan_cache_misses > 0, "first search must plan");
        assert!(report.cache.plan_cache_hits > 0, "second search must reuse the plan");
        let parse_rate = report.cache.parse_cache_hit_rate();
        let plan_rate = report.cache.plan_cache_hit_rate();
        assert!((0.0..=1.0).contains(&parse_rate));
        assert!((0.0..=1.0).contains(&plan_rate));
    }

    #[test]
    fn column_permutation_helpers() {
        let kinds = vec![ColumnKind::Node, ColumnKind::Relationship, ColumnKind::Node];
        let permutations = column_permutations(&kinds, &kinds);
        assert!(permutations.contains(&vec![0, 1, 2]));
        assert!(permutations.contains(&vec![2, 1, 0]));
        assert_eq!(permutations.len(), 2);
        assert!(is_identity(&permutations[0]));
    }

    #[test]
    fn ill_typed_queries_fail_with_a_type_error_verdict() {
        let prover = prover();
        let verdict = prover.prove("UNWIND 1 AS x RETURN x", "UNWIND [1] AS x RETURN x");
        let Verdict::Unknown { category, reason } = verdict else {
            panic!("ill-typed query must not produce a definite verdict")
        };
        assert_eq!(category, FailureCategory::TypeError);
        assert!(reason.starts_with("first query:"), "reason names the side: {reason}");
        assert!(reason.contains("UNWIND requires a list"), "reason carries the message: {reason}");
        // The same pair with the analyzer disabled reaches the pipeline.
        let unanalyzed = GraphQE { analyze: false, ..prover };
        let verdict = unanalyzed.prove("UNWIND 1 AS x RETURN x", "UNWIND [1] AS x RETURN x");
        assert!(
            !matches!(&verdict, Verdict::Unknown { category: FailureCategory::TypeError, .. }),
            "with analyze off there is no stage ⓪ to raise TypeError: {verdict:?}"
        );
    }

    #[test]
    fn discriminating_signatures_still_require_a_witness() {
        // The signatures discriminate (Node vs. non-null Integer), so the
        // fast path fires — but the verdict must rest on a concrete
        // counterexample, recorded in the stats as searched graphs.
        let prover = prover();
        let (left, right) = ("MATCH (n) RETURN n", "MATCH (n) RETURN count(*)");
        let verdict = prover.prove(left, right);
        assert!(
            matches!(&verdict, Verdict::NotEquivalent(_)),
            "expected a counterexample verdict, got {verdict:?}"
        );
        // The emitted certificate carries the discriminating signatures
        // alongside the witness, and the independent checker accepts it.
        let certificate = prover
            .certificate_for(left, right, &verdict)
            .expect("a definite verdict emits a certificate");
        assert!(
            matches!(
                &certificate.evidence,
                graphqe_checker::cert::Evidence::SignatureMismatch { .. }
            ),
            "discriminating signatures must be recorded as evidence"
        );
        graphqe_checker::check_certificate(&certificate)
            .expect("the checker validates signature-mismatch evidence");
    }

    #[test]
    fn stage_zero_is_verdict_neutral_on_representative_pairs() {
        let pairs = [
            ("MATCH (n:Person) RETURN n.name", "MATCH (m:Person) RETURN m.name"),
            ("MATCH (n) RETURN n", "MATCH (n) RETURN count(*)"),
            ("MATCH (a)-[r:X]->(b) RETURN a", "MATCH (a)-[r:Y]->(b) RETURN a"),
            ("RETURN 1 AS x", "RETURN 2 AS x"),
        ];
        let on = prover();
        let off = GraphQE { analyze: false, ..prover() };
        for (left, right) in pairs {
            let with = on.prove(left, right);
            let without = off.prove(left, right);
            assert_eq!(
                with.is_equivalent(),
                without.is_equivalent(),
                "{left} vs {right}: EQ drifted"
            );
            assert_eq!(
                with.is_not_equivalent(),
                without.is_not_equivalent(),
                "{left} vs {right}: NEQ drifted"
            );
        }
    }
}
