//! Prover-as-a-service: a long-running batch equivalence server.
//!
//! GraphQE's warm-path economics — sub-millisecond parses, single-digit
//! millisecond end-to-end proofs once the parse/plan/memo/SMT/summand caches
//! are populated — only pay off inside a process that lives longer than one
//! batch. This crate is that process: a hand-rolled HTTP/1.1 server over
//! `std::net` (the workspace builds offline, so no hyper/tokio/serde) that
//! accepts query-pair batches, proves them through
//! [`graphqe::GraphQE::prove_batch_outcomes`], and keeps every cache layer
//! warm across requests and tenants.
//!
//! The pieces, bottom-up:
//!
//! - [`json`] — a minimal ordered-object JSON value, parser and serializer.
//! - [`http`] — the HTTP/1.1 subset: keep-alive, `Content-Length` framing,
//!   `Expect: 100-continue`, bounded request heads.
//! - [`protocol`] — the wire format, including the 1:1 mapping from
//!   [`graphqe::FailureCategory`] onto stable `error.code` strings.
//! - [`server`] — acceptor + bounded admission queue + worker pool, the
//!   endpoints, and the generation-guarded cache-epoch hygiene.
//!
//! SERVING.md at the repository root is the operator-facing spec and
//! runbook; the loopback integration tests in `tests/server.rs` are the
//! executable version of its examples.
//!
//! # Quickstart
//!
//! ```no_run
//! use graphqe_serve::{ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! // ... POST {"pairs":[["MATCH (n) RETURN n","MATCH (m) RETURN m"]]}
//! //     to /v1/prove ...
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod protocol;
pub mod server;

pub use server::{ServeConfig, Server};
