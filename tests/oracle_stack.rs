//! Differential and determinism tests of the oracle stack (PR 3):
//!
//! * the adjacency-indexed pattern matcher must return results identical to
//!   the linear-scan baseline (`matching::scan`) — on generator-produced
//!   graphs under a PRNG-driven property harness, and on every dataset pair;
//! * the parallel counterexample search must reach the same verdict as the
//!   sequential search (a witness iff one exists, not necessarily the same
//!   graph index).
//!
//! The property harness is hand-rolled (no crates.io access, so `proptest`
//! is unavailable): a deterministic PRNG drives case generation and every
//! failure message carries the inputs needed to reproduce it.

use cypher_parser::parse_and_check;
use graphqe::counterexample::{find_counterexample, find_counterexample_parallel};
use graphqe::SearchConfig;
use property_graph::rng::DetRng;
use property_graph::{
    evaluate_query, evaluate_query_scan, GeneratorConfig, GraphGenerator, PropertyGraph,
};

/// Evaluates `query` on `graph` through both matching paths and asserts the
/// results are identical — not merely bag-equal: the indexed path must
/// preserve the scan's enumeration order, which `LIMIT` without `ORDER BY`
/// can observe.
fn assert_paths_agree(graph: &PropertyGraph, query_text: &str, context: &str) {
    let Ok(query) = parse_and_check(query_text) else { return };
    let indexed = evaluate_query(graph, &query);
    let scanned = evaluate_query_scan(graph, &query);
    match (indexed, scanned) {
        (Ok(indexed), Ok(scanned)) => {
            assert!(
                indexed.ordered_equal(&scanned),
                "indexed and scan matching diverged ({context}) on query `{query_text}` \
                 over graph:\n{graph}\nindexed: {indexed}\nscan: {scanned}"
            );
        }
        (indexed, scanned) => assert_eq!(
            indexed.is_err(),
            scanned.is_err(),
            "one path errored ({context}) on query `{query_text}`"
        ),
    }
}

/// PRNG-driven differential property test: random generator-produced graphs
/// against a pool of queries exercising every candidate-enumeration shape
/// (labels, directions, undirected merges, self-loops via the generator,
/// property constraints, variable-length paths, injectivity).
#[test]
fn indexed_matching_is_identical_to_scan_on_random_graphs() {
    const QUERIES: &[&str] = &[
        "MATCH (n) RETURN n",
        "MATCH (n:Person) RETURN n",
        "MATCH (n:Person:Book) RETURN n",
        "MATCH (n {p1: 1}) RETURN n",
        "MATCH (n:Person {name: 'Alice'}) RETURN n.name",
        "MATCH (a)-[r]->(b) RETURN a, b",
        "MATCH (a)<-[r:READ]-(b) RETURN a",
        "MATCH (a)-[r:READ]-(b) RETURN r",
        "MATCH (a)-[r:READ|WRITE]->(b) RETURN b",
        "MATCH (a)-[r {date: 1}]->(b) RETURN a",
        "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1, p2",
        "MATCH (a:Person)-[:READ]->(b), (a)-[:KNOWS]->(c) RETURN a, b, c",
        "MATCH (x)-[*1..3]->(y) RETURN y",
        "MATCH (x)-[:KNOWS *1..2]-(y) RETURN x",
        "MATCH p = (a)-[:READ]->(b) RETURN p",
        "MATCH (a)-[r]->(b) WHERE a.age > 2 RETURN a.name, b.p1",
        "MATCH (n) RETURN n.p1 LIMIT 3",
        "MATCH (n) RETURN DISTINCT n.p1",
        "MATCH (a)-[r]->(a) RETURN a",
    ];
    let mut rng = DetRng::seed_from_u64(0x0D15_EA5E);
    let mut cases = 0;
    while cases < 60 {
        let seed = rng.next_u64();
        let mut generator = GraphGenerator::new(seed);
        let graph = generator.generate();
        let query = QUERIES[rng.range_usize(0, QUERIES.len())];
        assert_paths_agree(&graph, query, &format!("graph seed {seed}"));
        cases += 1;
    }
    // The deterministic seed graphs of the counterexample pool, too.
    for query in QUERIES {
        assert_paths_agree(&PropertyGraph::new(), query, "empty graph");
        assert_paths_agree(&PropertyGraph::paper_example(), query, "paper example");
    }
}

/// The acceptance-criterion suite: for **every** pair of both datasets, both
/// queries evaluate identically through the indexed and scan matchers over
/// graphs drawn from the pair's own vocabulary (the same distribution the
/// counterexample search explores).
#[test]
fn indexed_vs_scan_differential_on_every_dataset_pair() {
    let pairs: Vec<_> = cyeqset::cyeqset().into_iter().chain(cyeqset::cyneqset()).collect();
    assert!(pairs.len() > 250, "datasets unexpectedly small: {}", pairs.len());
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(0xFEED, vocabulary.clone()).generate_many(4));
        graphs.extend(
            GraphGenerator::with_config(
                0xFEED + 1,
                GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
            )
            .generate_many(2),
        );
        for graph in &graphs {
            assert_paths_agree(graph, &pair.left, "dataset pair, left");
            assert_paths_agree(graph, &pair.right, "dataset pair, right");
        }
    }
}

/// Parallel-vs-sequential verdict determinism over dataset-derived pairs:
/// the parallel search must find a witness exactly when the sequential
/// search does. (The witness index may differ; the verdict may not.)
#[test]
fn parallel_search_verdict_matches_sequential_on_dataset_pairs() {
    // A slice of CyNeqSet (witnesses exist) and CyEqSet (pools exhaust).
    let pairs: Vec<_> = cyeqset::cyneqset()
        .into_iter()
        .step_by(17)
        .chain(cyeqset::cyeqset().into_iter().step_by(29))
        .collect();
    assert!(pairs.len() >= 10);
    // A reduced pool keeps the exhausting (equivalent) pairs fast while
    // still covering both verdict outcomes. The search memo is bypassed so
    // the parallel worker/cancellation machinery genuinely runs instead of
    // replaying the sequential outcome.
    let config = SearchConfig { random_graphs: 24, use_memo: false, ..SearchConfig::default() };
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let sequential = find_counterexample(&q1, &q2, &config);
        for threads in [2, 3] {
            let parallel = find_counterexample_parallel(&q1, &q2, &config, threads);
            assert_eq!(
                sequential.is_some(),
                parallel.is_some(),
                "parallel verdict diverged on {} vs {} with {threads} threads",
                pair.left,
                pair.right,
            );
            if let (Some(seq), Some(par)) = (&sequential, &parallel) {
                // Any parallel witness must be a real witness; the smallest
                // possible index is the sequential one.
                assert!(par.pool_index >= seq.pool_index);
                let left = evaluate_query(&par.graph, &q1).unwrap();
                let right = evaluate_query(&par.graph, &q2).unwrap();
                assert!(!left.bag_equal(&right), "parallel witness does not witness");
            }
        }
    }
}
