//! A self-contained mirror of the prover's G-expression language.
//!
//! The checker re-validates structural claims about G-expressions (summand
//! decomposition, simplification rebuilds, isomorphism pairings) without
//! linking against the `gexpr` or `liastar` crates. To do that soundly it
//! carries its own copy of the term language, of the normalizing smart
//! constructors, and of the injective-renaming unifier. The definitions here
//! must stay semantically identical to their originals; the full-corpus
//! certificate test is the cross-check.

use std::collections::BTreeMap;

/// A bound summation variable, mirroring `gexpr::VarId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Comparison operators usable inside atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Wire name used in the certificate encoding.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Neq => "neq",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parses a wire name back into an operator.
    pub fn from_name(name: &str) -> Option<CmpOp> {
        Some(match name {
            "eq" => CmpOp::Eq,
            "neq" => CmpOp::Neq,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// Aggregate kinds, mirroring `gexpr::GAggKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `count(...)`
    Count,
    /// `sum(...)`
    Sum,
    /// `min(...)`
    Min,
    /// `max(...)`
    Max,
    /// `avg(...)`
    Avg,
    /// `collect(...)`
    Collect,
}

impl AggKind {
    /// Wire name used in the certificate encoding.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
            AggKind::Collect => "collect",
        }
    }

    /// Parses a wire name back into an aggregate kind.
    pub fn from_name(name: &str) -> Option<AggKind> {
        Some(match name {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "avg" => AggKind::Avg,
            "collect" => AggKind::Collect,
            _ => return None,
        })
    }
}

/// Constants, mirroring `gexpr::GConst`.
#[derive(Debug, Clone, PartialEq)]
pub enum GxConst {
    /// An integer literal.
    Integer(i64),
    /// A float literal (compared with `f64` equality, as in the prover).
    Float(f64),
    /// A string literal.
    String(String),
    /// A boolean literal.
    Boolean(bool),
    /// `NULL`.
    Null,
}

/// Terms, mirroring `gexpr::GTerm`.
#[derive(Debug, Clone, PartialEq)]
pub enum GxTerm {
    /// A bound summation variable.
    Var(VarId),
    /// Reference to an output column of the other query side.
    OutCol(usize),
    /// Property access `base.key`.
    Prop(Box<GxTerm>, String),
    /// A constant.
    Const(GxConst),
    /// An uninterpreted function application.
    App(String, Vec<GxTerm>),
    /// An aggregate over a group expression.
    Agg {
        /// Which aggregate.
        kind: AggKind,
        /// Whether `DISTINCT` was requested.
        distinct: bool,
        /// The aggregated term.
        arg: Box<GxTerm>,
        /// The group (a U-semiring expression describing the multiset).
        group: Box<Gx>,
    },
}

/// Atoms, mirroring `gexpr::GAtom`.
#[derive(Debug, Clone, PartialEq)]
pub enum GxAtom {
    /// A comparison between two terms.
    Cmp(CmpOp, GxTerm, GxTerm),
    /// `IS NULL` (`negated` ⇒ `IS NOT NULL`).
    IsNull(GxTerm, bool),
    /// An uninterpreted predicate.
    Pred(String, Vec<GxTerm>),
}

/// U-semiring expressions, mirroring `gexpr::GExpr`.
#[derive(Debug, Clone, PartialEq)]
pub enum Gx {
    /// Additive identity (empty bag).
    Zero,
    /// Multiplicative identity.
    One,
    /// A non-negative constant multiplicity.
    Const(u64),
    /// A 0/1-valued logical atom.
    Atom(GxAtom),
    /// "term is a node" indicator.
    NodeFn(GxTerm),
    /// "term is a relationship" indicator.
    RelFn(GxTerm),
    /// "term has label" indicator.
    LabFn(GxTerm, String),
    /// Unbounded-recursion marker for var-length paths.
    Unbounded(GxTerm),
    /// Product of factors.
    Mul(Vec<Gx>),
    /// Sum of summands.
    Add(Vec<Gx>),
    /// Squash `‖e‖` (0 if e = 0, else 1).
    Squash(Box<Gx>),
    /// Logical negation `¬e` (1 if e = 0, else 0).
    Not(Box<Gx>),
    /// Unbounded summation over bound variables.
    Sum {
        /// Variables bound by the summation.
        vars: Vec<VarId>,
        /// Body of the summation.
        body: Box<Gx>,
    },
}

impl Gx {
    /// Smart constructor for products: drops `One`, `Zero` annihilates,
    /// flattens nested `Mul`, unwraps singletons.
    pub fn mul(factors: Vec<Gx>) -> Gx {
        let mut flat = Vec::with_capacity(factors.len());
        for factor in factors {
            match factor {
                Gx::One => {}
                Gx::Zero => return Gx::Zero,
                Gx::Mul(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Gx::One,
            1 => flat.pop().unwrap(),
            _ => Gx::Mul(flat),
        }
    }

    /// Smart constructor for sums: drops `Zero`, flattens nested `Add`,
    /// unwraps singletons.
    pub fn add(summands: Vec<Gx>) -> Gx {
        let mut flat = Vec::with_capacity(summands.len());
        for summand in summands {
            match summand {
                Gx::Zero => {}
                Gx::Add(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Gx::Zero,
            1 => flat.pop().unwrap(),
            _ => Gx::Add(flat),
        }
    }

    /// Smart constructor for squash: idempotent, identity on `Zero`/`One`.
    pub fn squash(expr: Gx) -> Gx {
        match expr {
            Gx::Zero => Gx::Zero,
            Gx::One => Gx::One,
            already @ Gx::Squash(_) => already,
            other => Gx::Squash(Box::new(other)),
        }
    }

    /// Smart constructor for negation: constant-folds `Zero`/`One`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Gx) -> Gx {
        match expr {
            Gx::Zero => Gx::One,
            Gx::One => Gx::Zero,
            other => Gx::Not(Box::new(other)),
        }
    }

    /// Smart constructor for summation: drops empty binders, annihilates on
    /// `Zero`, merges nested sums (outer variables first).
    pub fn sum(vars: Vec<VarId>, body: Gx) -> Gx {
        if vars.is_empty() {
            return body;
        }
        match body {
            Gx::Zero => Gx::Zero,
            Gx::Sum { vars: inner_vars, body: inner_body } => {
                let mut merged = vars;
                merged.extend(inner_vars);
                Gx::Sum { vars: merged, body: inner_body }
            }
            other => Gx::Sum { vars, body: Box::new(other) },
        }
    }

    /// Whether this expression is literally `Zero`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Gx::Zero)
    }
}

/// Splits an expression into its top-level summands, mirroring the prover's
/// `to_summands`: `Add` yields its items, `Zero` yields nothing, anything
/// else is a single summand.
pub fn to_summands(expr: &Gx) -> Vec<Gx> {
    match expr {
        Gx::Add(items) => items.clone(),
        Gx::Zero => Vec::new(),
        other => vec![other.clone()],
    }
}

/// Splits a summand into its binder list and factor list, mirroring the
/// prover's summand simplifier preamble.
pub fn decompose_summand(summand: &Gx) -> (Vec<VarId>, Vec<Gx>) {
    let (vars, body) = match summand {
        Gx::Sum { vars, body } => (vars.clone(), (**body).clone()),
        other => (Vec::new(), other.clone()),
    };
    let factors = match body {
        Gx::Mul(items) => items,
        other => vec![other],
    };
    (vars, factors)
}

/// An injective renaming of bound variables, mirroring `liastar`'s
/// `VarMapping`: bindings are recorded in both directions and on a trail so
/// speculative matching can be rolled back.
#[derive(Debug, Default, Clone)]
pub struct VarMapping {
    forward: BTreeMap<VarId, VarId>,
    backward: BTreeMap<VarId, VarId>,
    trail: Vec<(VarId, VarId)>,
}

/// A rollback point into a [`VarMapping`] trail.
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint(usize);

impl VarMapping {
    /// Creates an empty mapping.
    pub fn new() -> VarMapping {
        VarMapping::default()
    }

    /// Attempts to bind `from ↦ to`; fails if either side is already bound
    /// to a different partner (injectivity in both directions).
    pub fn bind(&mut self, from: VarId, to: VarId) -> bool {
        if let Some(existing) = self.forward.get(&from) {
            return *existing == to;
        }
        if let Some(existing) = self.backward.get(&to) {
            return *existing == from;
        }
        self.forward.insert(from, to);
        self.backward.insert(to, from);
        self.trail.push((from, to));
        true
    }

    /// Current rollback point.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undoes all bindings made after `mark`.
    pub fn rollback_to(&mut self, mark: Checkpoint) {
        while self.trail.len() > mark.0 {
            let (from, to) = self.trail.pop().unwrap();
            self.forward.remove(&from);
            self.backward.remove(&to);
        }
    }
}

/// Structural unification of two expressions up to an injective renaming of
/// bound variables, threading `mapping`. Mirrors `liastar::iso::unify_expr`.
pub fn unify_expr(a: &Gx, b: &Gx, mapping: &mut VarMapping) -> bool {
    let mark = mapping.checkpoint();
    if unify_expr_inner(a, b, mapping) {
        true
    } else {
        mapping.rollback_to(mark);
        false
    }
}

fn unify_expr_inner(a: &Gx, b: &Gx, mapping: &mut VarMapping) -> bool {
    match (a, b) {
        (Gx::Zero, Gx::Zero) | (Gx::One, Gx::One) => true,
        (Gx::Const(x), Gx::Const(y)) => x == y,
        (Gx::Atom(x), Gx::Atom(y)) => unify_atom(x, y, mapping),
        (Gx::NodeFn(x), Gx::NodeFn(y)) => unify_term(x, y, mapping),
        (Gx::RelFn(x), Gx::RelFn(y)) => unify_term(x, y, mapping),
        (Gx::Unbounded(x), Gx::Unbounded(y)) => unify_term(x, y, mapping),
        (Gx::LabFn(x, lx), Gx::LabFn(y, ly)) => lx == ly && unify_term(x, y, mapping),
        (Gx::Squash(x), Gx::Squash(y)) => unify_expr(x, y, mapping),
        (Gx::Not(x), Gx::Not(y)) => unify_expr(x, y, mapping),
        (Gx::Mul(xs), Gx::Mul(ys)) => unify_multiset(xs, ys, mapping),
        (Gx::Add(xs), Gx::Add(ys)) => unify_multiset(xs, ys, mapping),
        (Gx::Sum { vars: va, body: ba }, Gx::Sum { vars: vb, body: bb }) => {
            va.len() == vb.len() && unify_expr(ba, bb, mapping)
        }
        _ => false,
    }
}

/// Backtracking multiset unification: every element of `xs` must pair with a
/// distinct element of `ys` under one shared mapping.
pub fn unify_multiset(xs: &[Gx], ys: &[Gx], mapping: &mut VarMapping) -> bool {
    if xs.len() != ys.len() {
        return false;
    }
    let mut used = vec![false; ys.len()];
    unify_multiset_rec(xs, ys, &mut used, mapping)
}

fn unify_multiset_rec(xs: &[Gx], ys: &[Gx], used: &mut [bool], mapping: &mut VarMapping) -> bool {
    let Some((first, rest)) = xs.split_first() else {
        return true;
    };
    for (index, candidate) in ys.iter().enumerate() {
        if used[index] {
            continue;
        }
        let mark = mapping.checkpoint();
        if unify_expr(first, candidate, mapping) {
            used[index] = true;
            if unify_multiset_rec(rest, ys, used, mapping) {
                return true;
            }
            used[index] = false;
        }
        mapping.rollback_to(mark);
    }
    false
}

fn unify_atom(a: &GxAtom, b: &GxAtom, mapping: &mut VarMapping) -> bool {
    match (a, b) {
        (GxAtom::Cmp(op_a, a1, a2), GxAtom::Cmp(op_b, b1, b2)) => {
            if op_a == op_b {
                let mark = mapping.checkpoint();
                if unify_term(a1, b1, mapping) && unify_term(a2, b2, mapping) {
                    return true;
                }
                mapping.rollback_to(mark);
            }
            if *op_b == op_a.flipped() {
                let mark = mapping.checkpoint();
                if unify_term(a1, b2, mapping) && unify_term(a2, b1, mapping) {
                    return true;
                }
                mapping.rollback_to(mark);
            }
            false
        }
        (GxAtom::IsNull(ta, na), GxAtom::IsNull(tb, nb)) => na == nb && unify_term(ta, tb, mapping),
        (GxAtom::Pred(name_a, args_a), GxAtom::Pred(name_b, args_b)) => {
            if name_a != name_b || args_a.len() != args_b.len() {
                return false;
            }
            let mark = mapping.checkpoint();
            for (x, y) in args_a.iter().zip(args_b) {
                if !unify_term(x, y, mapping) {
                    mapping.rollback_to(mark);
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

fn unify_term(a: &GxTerm, b: &GxTerm, mapping: &mut VarMapping) -> bool {
    let mark = mapping.checkpoint();
    if unify_term_inner(a, b, mapping) {
        true
    } else {
        mapping.rollback_to(mark);
        false
    }
}

fn unify_term_inner(a: &GxTerm, b: &GxTerm, mapping: &mut VarMapping) -> bool {
    match (a, b) {
        (GxTerm::Var(x), GxTerm::Var(y)) => mapping.bind(*x, *y),
        (GxTerm::OutCol(x), GxTerm::OutCol(y)) => x == y,
        (GxTerm::Const(x), GxTerm::Const(y)) => x == y,
        (GxTerm::Prop(base_a, key_a), GxTerm::Prop(base_b, key_b)) => {
            key_a == key_b && unify_term(base_a, base_b, mapping)
        }
        (GxTerm::App(name_a, args_a), GxTerm::App(name_b, args_b)) => {
            if name_a != name_b || args_a.len() != args_b.len() {
                return false;
            }
            for (x, y) in args_a.iter().zip(args_b) {
                if !unify_term(x, y, mapping) {
                    return false;
                }
            }
            true
        }
        (
            GxTerm::Agg { kind: ka, distinct: da, arg: aa, group: ga },
            GxTerm::Agg { kind: kb, distinct: db, arg: ab, group: gb },
        ) => ka == kb && da == db && unify_term(aa, ab, mapping) && unify_expr(ga, gb, mapping),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: u32) -> GxTerm {
        GxTerm::Var(VarId(n))
    }

    #[test]
    fn smart_constructors_normalize() {
        assert_eq!(Gx::mul(vec![Gx::One, Gx::Const(3)]), Gx::Const(3));
        assert_eq!(Gx::mul(vec![Gx::Const(3), Gx::Zero]), Gx::Zero);
        assert_eq!(Gx::add(vec![]), Gx::Zero);
        assert_eq!(Gx::squash(Gx::One), Gx::One);
        assert_eq!(Gx::not(Gx::Zero), Gx::One);
        assert_eq!(
            Gx::sum(vec![VarId(0)], Gx::sum(vec![VarId(1)], Gx::NodeFn(var(0)))),
            Gx::Sum { vars: vec![VarId(0), VarId(1)], body: Box::new(Gx::NodeFn(var(0))) }
        );
    }

    #[test]
    fn unification_is_injective_renaming() {
        let a = Gx::mul(vec![Gx::NodeFn(var(0)), Gx::NodeFn(var(1))]);
        let b = Gx::mul(vec![Gx::NodeFn(var(5)), Gx::NodeFn(var(7))]);
        assert!(unify_expr(&a, &b, &mut VarMapping::new()));

        // Two distinct variables cannot map to the same target.
        let clash = Gx::mul(vec![Gx::NodeFn(var(5)), Gx::NodeFn(var(5))]);
        let distinct =
            Gx::mul(vec![Gx::Atom(GxAtom::Cmp(CmpOp::Eq, var(0), var(1))), Gx::NodeFn(var(0))]);
        let same =
            Gx::mul(vec![Gx::Atom(GxAtom::Cmp(CmpOp::Eq, var(3), var(3))), Gx::NodeFn(var(3))]);
        assert!(!unify_expr(&distinct, &same, &mut VarMapping::new()));
        let _ = clash;
    }

    #[test]
    fn flipped_comparisons_unify() {
        let a = Gx::Atom(GxAtom::Cmp(CmpOp::Lt, var(0), var(1)));
        let b = Gx::Atom(GxAtom::Cmp(CmpOp::Gt, var(9), var(8)));
        assert!(unify_expr(&a, &b, &mut VarMapping::new()));
    }
}
