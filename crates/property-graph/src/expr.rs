//! Expression evaluation over binding rows.
//!
//! Expressions are evaluated under Cypher's three-valued logic: comparisons
//! involving `NULL` yield `NULL`, and `WHERE` keeps only rows whose predicate
//! evaluates to `TRUE`.

use std::collections::BTreeMap;
use std::rc::Rc;

use cypher_parser::ast::{BinaryOp, Expr, Literal, UnaryOp};

use crate::eval::{evaluate_single_query_on_rows, EvalError};
use crate::graph::{EntityId, PropertyGraph};
use crate::value::{and3, not3, or3, xor3, Value};

/// The key type of binding rows. Shared (`Rc<str>`) rather than owned: the
/// pattern matcher clones the whole row at every nondeterministic binding
/// branch, and with shared keys a row clone bumps refcounts instead of
/// reallocating every variable name — a measurable win for the
/// counterexample search, which evaluates queries over hundreds of graphs.
pub type RowKey = Rc<str>;

/// A binding row: variable name → value.
pub type Row = BTreeMap<RowKey, Value>;

/// Evaluation context shared by all expression evaluations of one query run.
#[derive(Clone, Copy)]
pub struct EvalCtx<'g> {
    /// The property graph being queried.
    pub graph: &'g PropertyGraph,
    /// Bound on variable-length path expansion (see [`crate::eval::Evaluator`]).
    pub max_var_length: u32,
    /// Enumerate pattern candidates with the linear-scan baseline
    /// ([`crate::matching::scan`]) instead of the adjacency index. The two
    /// paths return identical rows in identical order; the flag exists for
    /// differential testing and baseline benchmarking.
    pub scan_matching: bool,
}

impl<'g> EvalCtx<'g> {
    /// Creates a context with the default variable-length bound.
    pub fn new(graph: &'g PropertyGraph) -> Self {
        EvalCtx { graph, max_var_length: graph.relationship_count() as u32, scan_matching: false }
    }
}

/// Evaluates an expression to a [`Value`] in the given row.
pub fn eval_expr(ctx: EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<Value, EvalError> {
    match expr {
        Expr::Literal(lit) => Ok(eval_literal(lit)),
        Expr::Variable(name) => Ok(row.get(name.as_str()).cloned().unwrap_or(Value::Null)),
        Expr::Parameter(name) => Err(EvalError::new(format!(
            "unbound query parameter `${name}` (the evaluator does not take parameters)"
        ))),
        Expr::Property(base, key) => {
            let base = eval_expr(ctx, row, base)?;
            Ok(read_property(ctx, &base, key))
        }
        Expr::Unary(op, inner) => {
            let value = eval_expr(ctx, row, inner)?;
            Ok(match op {
                UnaryOp::Not => bool3_to_value(not3(value.as_bool())),
                UnaryOp::Neg => Value::Integer(0).sub(&value),
                UnaryOp::Pos => value,
            })
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(ctx, row, *op, lhs, rhs),
        Expr::IsNull { expr, negated } => {
            let value = eval_expr(ctx, row, expr)?;
            let is_null = value.is_null();
            Ok(Value::Boolean(if *negated { !is_null } else { is_null }))
        }
        Expr::List(items) => {
            let values = items
                .iter()
                .map(|item| eval_expr(ctx, row, item))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::List(values))
        }
        Expr::Map(entries) => {
            let mut map = BTreeMap::new();
            for (key, value) in entries {
                map.insert(key.clone(), eval_expr(ctx, row, value)?);
            }
            Ok(Value::Map(map))
        }
        Expr::FunctionCall { name, args } => {
            let values =
                args.iter().map(|arg| eval_expr(ctx, row, arg)).collect::<Result<Vec<_>, _>>()?;
            eval_function(ctx, name, &values)
        }
        Expr::AggregateCall { .. } | Expr::CountStar { .. } => {
            Err(EvalError::new("aggregate expressions can only appear in WITH/RETURN projections"))
        }
        Expr::Exists(query) => {
            let result = evaluate_single_query_on_rows(ctx, query, vec![row.clone()], false)?;
            Ok(Value::Boolean(!result.rows.is_empty()))
        }
        Expr::Case { branches, otherwise } => {
            for (cond, value) in branches {
                if eval_expr(ctx, row, cond)?.as_bool() == Some(true) {
                    return eval_expr(ctx, row, value);
                }
            }
            match otherwise {
                Some(e) => eval_expr(ctx, row, e),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluates a predicate for `WHERE`: only `TRUE` passes.
pub fn eval_predicate(ctx: EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<bool, EvalError> {
    Ok(eval_expr(ctx, row, expr)?.as_bool() == Some(true))
}

fn eval_literal(lit: &Literal) -> Value {
    match lit {
        Literal::Integer(v) => Value::Integer(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::String(s.clone()),
        Literal::Boolean(b) => Value::Boolean(*b),
        Literal::Null => Value::Null,
    }
}

fn eval_binary(
    ctx: EvalCtx<'_>,
    row: &Row,
    op: BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
) -> Result<Value, EvalError> {
    // Logical connectives get three-valued treatment and may short-circuit.
    if op.is_logical() {
        let left = eval_expr(ctx, row, lhs)?.as_bool();
        let right = eval_expr(ctx, row, rhs)?.as_bool();
        return Ok(bool3_to_value(match op {
            BinaryOp::And => and3(left, right),
            BinaryOp::Or => or3(left, right),
            BinaryOp::Xor => xor3(left, right),
            _ => unreachable!("is_logical covers only AND/OR/XOR"),
        }));
    }

    let left = eval_expr(ctx, row, lhs)?;
    let right = eval_expr(ctx, row, rhs)?;
    Ok(match op {
        BinaryOp::Eq => bool3_to_value(left.cypher_eq(&right)),
        BinaryOp::Neq => bool3_to_value(not3(left.cypher_eq(&right))),
        BinaryOp::Lt => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_lt())),
        BinaryOp::Le => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_le())),
        BinaryOp::Gt => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_gt())),
        BinaryOp::Ge => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_ge())),
        BinaryOp::Add => left.add(&right),
        BinaryOp::Sub => left.sub(&right),
        BinaryOp::Mul => left.mul(&right),
        BinaryOp::Div => left.div(&right),
        BinaryOp::Mod => left.rem(&right),
        BinaryOp::Pow => left.pow(&right),
        BinaryOp::In => eval_in(&left, &right),
        BinaryOp::StartsWith => eval_string_predicate(&left, &right, |a, b| a.starts_with(b)),
        BinaryOp::EndsWith => eval_string_predicate(&left, &right, |a, b| a.ends_with(b)),
        BinaryOp::Contains => eval_string_predicate(&left, &right, |a, b| a.contains(b)),
        BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => unreachable!("handled above"),
    })
}

fn eval_in(needle: &Value, haystack: &Value) -> Value {
    match haystack {
        Value::Null => Value::Null,
        Value::List(items) => {
            let mut saw_null = false;
            for item in items {
                match needle.cypher_eq(item) {
                    Some(true) => return Value::Boolean(true),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            }
        }
        _ => Value::Null,
    }
}

fn eval_string_predicate(left: &Value, right: &Value, f: impl Fn(&str, &str) -> bool) -> Value {
    match (left, right) {
        (Value::String(a), Value::String(b)) => Value::Boolean(f(a, b)),
        _ => Value::Null,
    }
}

fn bool3_to_value(value: Option<bool>) -> Value {
    match value {
        Some(b) => Value::Boolean(b),
        None => Value::Null,
    }
}

/// Reads `base.key` where `base` may be a node, relationship or map.
pub fn read_property(ctx: EvalCtx<'_>, base: &Value, key: &str) -> Value {
    match base {
        Value::Node(id) => ctx.graph.property(EntityId::Node(*id), key),
        Value::Relationship(id) => ctx.graph.property(EntityId::Relationship(*id), key),
        Value::Map(map) => map.get(key).cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// Evaluates the built-in scalar functions that the evaluation dataset uses.
/// Unknown functions evaluate to `NULL` (documented limitation of the
/// reference evaluator; the prover treats them as uninterpreted symbols).
fn eval_function(ctx: EvalCtx<'_>, name: &str, args: &[Value]) -> Result<Value, EvalError> {
    let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Null);
    Ok(match name {
        "id" => match arg(0) {
            Value::Node(id) => Value::Integer(id.0 as i64),
            // Relationship ids live in a disjoint range so that `id(n) = id(r)`
            // can never hold between a node and a relationship.
            Value::Relationship(id) => Value::Integer(1_000_000_000 + id.0 as i64),
            _ => Value::Null,
        },
        "labels" => match arg(0) {
            Value::Node(id) => {
                Value::List(ctx.graph.node(id).labels.iter().cloned().map(Value::String).collect())
            }
            _ => Value::Null,
        },
        "type" => match arg(0) {
            Value::Relationship(id) => Value::String(ctx.graph.relationship(id).label.clone()),
            _ => Value::Null,
        },
        "size" => match arg(0) {
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        "length" => match arg(0) {
            Value::Path(items) => Value::Integer((items.len().saturating_sub(1) / 2) as i64),
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        "head" => match arg(0) {
            Value::List(items) => items.first().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        "last" => match arg(0) {
            Value::List(items) => items.last().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        "abs" => match arg(0) {
            Value::Integer(v) => Value::Integer(v.abs()),
            Value::Float(v) => Value::Float(v.abs()),
            _ => Value::Null,
        },
        "toupper" | "toUpper" => match arg(0) {
            Value::String(s) => Value::String(s.to_uppercase()),
            _ => Value::Null,
        },
        "tolower" | "toLower" => match arg(0) {
            Value::String(s) => Value::String(s.to_lowercase()),
            _ => Value::Null,
        },
        "coalesce" => args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null),
        "exists" => Value::Boolean(!arg(0).is_null()),
        "startnode" => match arg(0) {
            Value::Relationship(id) => Value::Node(ctx.graph.relationship(id).source),
            _ => Value::Null,
        },
        "endnode" => match arg(0) {
            Value::Relationship(id) => Value::Node(ctx.graph.relationship(id).target),
            _ => Value::Null,
        },
        "index" => match (arg(0), arg(1)) {
            (Value::List(items), Value::Integer(i)) if i >= 0 && (i as usize) < items.len() => {
                items[i as usize].clone()
            }
            _ => Value::Null,
        },
        // Unknown / unmodelled functions: NULL (mirrors the prover treating
        // them as uninterpreted).
        _ => Value::Null,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use cypher_parser::parse_expression;

    fn ctx_and_row() -> (PropertyGraph, Row) {
        let graph = PropertyGraph::paper_example();
        let mut row = Row::new();
        row.insert(RowKey::from("n"), Value::Node(NodeId(0)));
        row.insert(RowKey::from("x"), Value::Integer(5));
        (graph, row)
    }

    fn eval(graph: &PropertyGraph, row: &Row, text: &str) -> Value {
        let expr = parse_expression(text).unwrap();
        eval_expr(EvalCtx::new(graph), row, &expr).unwrap()
    }

    #[test]
    fn evaluates_property_access_and_comparison() {
        let (graph, row) = ctx_and_row();
        assert_eq!(eval(&graph, &row, "n.age"), Value::Integer(59));
        assert_eq!(eval(&graph, &row, "n.age = 59"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "n.age > 100"), Value::Boolean(false));
        assert_eq!(eval(&graph, &row, "n.missing = 1"), Value::Null);
        assert_eq!(eval(&graph, &row, "n.missing IS NULL"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "n.age IS NOT NULL"), Value::Boolean(true));
    }

    #[test]
    fn evaluates_arithmetic_and_logic() {
        let (graph, row) = ctx_and_row();
        assert_eq!(eval(&graph, &row, "x + 2 * 3"), Value::Integer(11));
        assert_eq!(eval(&graph, &row, "x > 1 AND x < 10"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "x > 1 AND n.missing = 1"), Value::Null);
        assert_eq!(eval(&graph, &row, "x < 1 AND n.missing = 1"), Value::Boolean(false));
        assert_eq!(eval(&graph, &row, "NOT x = 5"), Value::Boolean(false));
        assert_eq!(eval(&graph, &row, "x IN [1, 5, 9]"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "x IN [1, 2]"), Value::Boolean(false));
    }

    #[test]
    fn evaluates_string_predicates_and_functions() {
        let (graph, row) = ctx_and_row();
        assert_eq!(eval(&graph, &row, "n.name STARTS WITH 'J.'"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "n.name CONTAINS 'Rowling'"), Value::Boolean(true));
        assert_eq!(eval(&graph, &row, "size('abc')"), Value::Integer(3));
        assert_eq!(eval(&graph, &row, "coalesce(n.missing, 7)"), Value::Integer(7));
        assert_eq!(eval(&graph, &row, "id(n)"), Value::Integer(0));
        assert_eq!(eval(&graph, &row, "labels(n)"), Value::List(vec![Value::from("Person")]));
        assert_eq!(eval(&graph, &row, "unknown_function(n)"), Value::Null);
    }

    #[test]
    fn evaluates_case_and_maps_and_lists() {
        let (graph, row) = ctx_and_row();
        assert_eq!(
            eval(&graph, &row, "CASE WHEN x > 3 THEN 'big' ELSE 'small' END"),
            Value::from("big")
        );
        assert_eq!(eval(&graph, &row, "{a: 1, b: 2}.b"), Value::Integer(2));
        assert_eq!(eval(&graph, &row, "[1, 2, 3][1]"), Value::Integer(2));
        assert_eq!(eval(&graph, &row, "head([4, 5])"), Value::Integer(4));
    }

    #[test]
    fn unbound_variables_are_null() {
        let (graph, row) = ctx_and_row();
        assert_eq!(eval(&graph, &row, "missing_variable"), Value::Null);
        assert_eq!(eval(&graph, &row, "missing_variable = 1"), Value::Null);
    }

    #[test]
    fn parameters_are_rejected() {
        let (graph, row) = ctx_and_row();
        let expr = parse_expression("$p = 1").unwrap();
        assert!(eval_expr(EvalCtx::new(&graph), &row, &expr).is_err());
    }

    #[test]
    fn aggregates_outside_projections_are_rejected() {
        let (graph, row) = ctx_and_row();
        let expr = parse_expression("SUM(x)").unwrap();
        assert!(eval_expr(EvalCtx::new(&graph), &row, &expr).is_err());
    }
}
