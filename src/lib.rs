//! Umbrella crate for the GraphQE-rs workspace.
//!
//! This crate exists so that the workspace root can host runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It simply
//! re-exports the public crates of the workspace under stable names.

#![forbid(unsafe_code)]

pub use cyeqset;
pub use cypher_normalizer as normalizer;
pub use cypher_parser as parser;
pub use gexpr;
pub use graphqe;
pub use liastar;
pub use property_graph;
pub use smt;
