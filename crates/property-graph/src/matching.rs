//! Isomorphism-based graph pattern matching (Definition 2 of the paper).
//!
//! Matching maps node patterns to nodes and relationship patterns to
//! relationships of a [`crate::PropertyGraph`], subject to:
//!
//! * label and property constraints on each pattern element;
//! * structure preservation (relationship endpoints follow the pattern);
//! * variable consistency (patterns sharing a variable match the same entity);
//! * **relationship-injective semantics**: distinct relationship patterns
//!   within one `MATCH` clause must match distinct relationships (§II-B).
//!
//! Variable-length patterns (`-[*1..3]->`) expand to simple paths whose
//! relationships are pairwise distinct, each satisfying the pattern's label
//! and property constraints.
//!
//! Since PR 5 this **name-resolving interpreter** is the differential
//! oracle: the default evaluation path lowers patterns once into
//! [`SymId`](crate::expr::SymId)-native compiled plans ([`crate::plan`]) and
//! matches through those; `Evaluator::interpret_patterns` selects this
//! implementation instead, the same baseline-preservation pattern as
//! [`scan`] and the map-backed row representation.

use cypher_parser::ast::{
    MatchClause, NodePattern, PathPattern, RelDirection, RelationshipPattern,
};

use crate::eval::EvalError;
use crate::expr::{eval_expr, EvalCtx, Row, SymbolTable};
use crate::graph::{EntityId, NodeId, RelId};
use crate::value::Value;

/// The continuation invoked for every complete match of a path pattern.
type OnComplete<'a> =
    &'a mut dyn FnMut(EvalCtx<'_>, Row, &mut Vec<RelId>, &[Value]) -> Result<(), EvalError>;

/// Finds all extensions of `base` that satisfy every pattern of the `MATCH`
/// clause (and its `WHERE` predicate, which the caller applies separately so
/// that `OPTIONAL MATCH` can treat it as part of the optional part).
pub fn match_patterns(
    ctx: EvalCtx<'_>,
    patterns: &[PathPattern],
    base: &Row,
) -> Result<Vec<Row>, EvalError> {
    let mut results = Vec::new();
    let mut used = Vec::new();
    match_pattern_list(ctx, patterns, 0, base.clone(), &mut used, &mut results)?;
    Ok(results)
}

/// Convenience wrapper matching a whole clause including its `WHERE` filter.
pub fn match_clause(
    ctx: EvalCtx<'_>,
    clause: &MatchClause,
    base: &Row,
) -> Result<Vec<Row>, EvalError> {
    let rows = match_patterns(ctx, &clause.patterns, base)?;
    match &clause.where_clause {
        None => Ok(rows),
        Some(predicate) => {
            let mut kept = Vec::new();
            for row in rows {
                if crate::expr::eval_predicate(ctx, &row, predicate)? {
                    kept.push(row);
                }
            }
            Ok(kept)
        }
    }
}

fn match_pattern_list(
    ctx: EvalCtx<'_>,
    patterns: &[PathPattern],
    index: usize,
    row: Row,
    used: &mut Vec<RelId>,
    results: &mut Vec<Row>,
) -> Result<(), EvalError> {
    if index == patterns.len() {
        results.push(row);
        return Ok(());
    }
    let pattern = &patterns[index];
    let candidates = candidate_nodes(ctx, &row, &pattern.start)?;
    for node in candidates {
        let mut next_row = row.clone();
        bind_node(ctx.symbols, &mut next_row, &pattern.start, node);
        let mut trace = vec![Value::Node(node)];
        let used_before = used.len();
        match_segments(
            ctx,
            pattern,
            0,
            node,
            next_row,
            used,
            &mut trace,
            &mut |ctx, row, used, trace| {
                let mut row = row;
                if let Some(path_var) = &pattern.variable {
                    row.insert(ctx.symbols, path_var, Value::Path(trace.to_vec()));
                }
                match_pattern_list(ctx, patterns, index + 1, row, used, results)
            },
        )?;
        used.truncate(used_before);
    }
    Ok(())
}

/// Matches the remaining segments of one path pattern, calling `on_complete`
/// for every full match. `used` accumulates the relationships matched so far
/// in the current `MATCH` clause (for relationship-injectivity) and is
/// restored by callers after exploring each alternative.
#[allow(clippy::too_many_arguments)]
fn match_segments(
    ctx: EvalCtx<'_>,
    pattern: &PathPattern,
    segment_index: usize,
    current: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), EvalError> {
    if segment_index == pattern.segments.len() {
        return on_complete(ctx, row, used, trace);
    }
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;

    if rel_pattern.is_var_length() {
        match_var_length(ctx, pattern, segment_index, current, row, used, trace, on_complete)
    } else {
        let candidates = candidate_relationships(ctx, &row, rel_pattern, current)?;
        for (rel, next_node) in candidates {
            if violates_injectivity(ctx.symbols, &row, rel_pattern, rel, used) {
                continue;
            }
            if !node_matches(ctx, &row, next_node, &segment.node)?
                || !node_binding_consistent(ctx.symbols, &row, &segment.node, next_node)
            {
                continue;
            }
            let mut next_row = row.clone();
            if let Some(var) = &rel_pattern.variable {
                next_row.insert(ctx.symbols, var, Value::Relationship(rel));
            }
            bind_node(ctx.symbols, &mut next_row, &segment.node, next_node);
            used.push(rel);
            trace.push(Value::Relationship(rel));
            trace.push(Value::Node(next_node));
            match_segments(
                ctx,
                pattern,
                segment_index + 1,
                next_node,
                next_row,
                used,
                trace,
                on_complete,
            )?;
            trace.pop();
            trace.pop();
            used.pop();
        }
        Ok(())
    }
}

/// Expands a variable-length relationship pattern into simple paths.
#[allow(clippy::too_many_arguments)]
fn match_var_length(
    ctx: EvalCtx<'_>,
    pattern: &PathPattern,
    segment_index: usize,
    start: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), EvalError> {
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;
    let length = rel_pattern.length.expect("var-length pattern");
    let min = length.effective_min();
    let max = length.max.unwrap_or(ctx.max_var_length).max(min);

    // Depth-first expansion of simple paths (no repeated relationship).
    struct Frame {
        node: NodeId,
        rels: Vec<RelId>,
    }
    let mut stack = vec![Frame { node: start, rels: Vec::new() }];
    while let Some(frame) = stack.pop() {
        let hops = frame.rels.len() as u32;
        if hops >= min {
            // Try to close the pattern at this node.
            let end = frame.node;
            if node_matches(ctx, &row, end, &segment.node)?
                && node_binding_consistent(ctx.symbols, &row, &segment.node, end)
            {
                let mut next_row = row.clone();
                if let Some(var) = &rel_pattern.variable {
                    next_row.insert(
                        ctx.symbols,
                        var,
                        Value::List(frame.rels.iter().map(|r| Value::Relationship(*r)).collect()),
                    );
                }
                bind_node(ctx.symbols, &mut next_row, &segment.node, end);
                let used_before = used.len();
                let trace_before = trace.len();
                for rel in &frame.rels {
                    used.push(*rel);
                    trace.push(Value::Relationship(*rel));
                }
                trace.push(Value::Node(end));
                match_segments(
                    ctx,
                    pattern,
                    segment_index + 1,
                    end,
                    next_row,
                    used,
                    trace,
                    on_complete,
                )?;
                trace.truncate(trace_before);
                used.truncate(used_before);
            }
        }
        if hops >= max {
            continue;
        }
        // Extend the path by one more hop.
        let extensions = candidate_relationships(ctx, &row, rel_pattern, frame.node)?;
        for (rel, next) in extensions {
            if frame.rels.contains(&rel) || used.contains(&rel) {
                continue;
            }
            let mut rels = frame.rels.clone();
            rels.push(rel);
            stack.push(Frame { node: next, rels });
        }
    }
    Ok(())
}

/// Returns `(relationship, neighbour)` pairs adjacent to `from` that satisfy
/// the relationship pattern's direction, label and property constraints.
///
/// Dispatches to the adjacency-indexed enumeration (default) or the
/// linear-scan baseline in [`scan`]; both return the same candidates in the
/// same (ascending relationship id) order.
fn candidate_relationships(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &RelationshipPattern,
    from: NodeId,
) -> Result<Vec<(RelId, NodeId)>, EvalError> {
    if ctx.scan_matching {
        return scan::candidate_relationships(ctx, row, pattern, from);
    }
    let index = ctx.graph.adjacency();

    // Resolve the pattern's type alternatives to interned ids once; a type
    // absent from the graph contributes no candidates. The single-type case
    // (ubiquitous) avoids the alternatives vector entirely.
    enum TypeFilter {
        Any,
        One(u32),
        AnyOf(Vec<u32>),
    }
    let type_filter = match pattern.labels.as_slice() {
        [] => TypeFilter::Any,
        [label] => match index.rel_type_id(label) {
            None => return Ok(Vec::new()),
            Some(id) => TypeFilter::One(id),
        },
        labels => {
            let resolved: Vec<u32> =
                labels.iter().filter_map(|label| index.rel_type_id(label)).collect();
            if resolved.is_empty() {
                return Ok(Vec::new());
            }
            TypeFilter::AnyOf(resolved)
        }
    };
    // If the relationship variable is already bound, the candidate must be
    // that exact relationship (checked per entry below, like the scan).
    let bound = pattern.variable.as_ref().and_then(|var| match row.get(ctx.symbols, var) {
        Some(Value::Relationship(bound)) => Some(*bound),
        _ => None,
    });

    let mut out = Vec::new();
    let mut push = |entry: &crate::index::AdjEntry| -> Result<(), EvalError> {
        let type_ok = match &type_filter {
            TypeFilter::Any => true,
            TypeFilter::One(id) => entry.type_id == *id,
            TypeFilter::AnyOf(ids) => ids.contains(&entry.type_id),
        };
        if !type_ok {
            return Ok(());
        }
        if let Some(bound) = bound {
            if bound != entry.rel {
                return Ok(());
            }
        }
        // Property-key prefilter: a pattern key the relationship does not
        // carry can never compare `TRUE`, so skip before evaluating the
        // (potentially row-dependent) expected values.
        if pattern.properties.iter().any(|(key, _)| !index.rel_has_key(entry.rel, key)) {
            return Ok(());
        }
        if properties_match(ctx, row, EntityId::Relationship(entry.rel), &pattern.properties)? {
            out.push((entry.rel, entry.neighbour));
        }
        Ok(())
    };
    match pattern.direction {
        RelDirection::Outgoing => {
            for entry in index.outgoing(from) {
                push(entry)?;
            }
        }
        RelDirection::Incoming => {
            for entry in index.incoming(from) {
                push(entry)?;
            }
        }
        RelDirection::Undirected => {
            // Merge the two (relationship-id-sorted) lists so candidates come
            // out in ascending relationship id, exactly like the scan. A
            // self-loop appears in both lists and must be yielded once; the
            // scan's source branch wins, so the outgoing entry is kept.
            let outgoing = index.outgoing(from);
            let incoming = index.incoming(from);
            let (mut i, mut j) = (0, 0);
            while i < outgoing.len() || j < incoming.len() {
                let take_out = match (outgoing.get(i), incoming.get(j)) {
                    (Some(o), Some(n)) => {
                        if o.rel == n.rel {
                            // Self-loop: skip the incoming copy.
                            j += 1;
                            true
                        } else {
                            o.rel < n.rel
                        }
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_out {
                    push(&outgoing[i])?;
                    i += 1;
                } else {
                    push(&incoming[j])?;
                    j += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Relationship-injectivity: a candidate violates injectivity when it was
/// already matched by a *different* relationship pattern of the same `MATCH`
/// clause. A pattern whose variable is already bound to this very
/// relationship refers to the same relationship and is allowed.
fn violates_injectivity(
    symbols: &SymbolTable,
    row: &Row,
    pattern: &RelationshipPattern,
    rel: RelId,
    used: &[RelId],
) -> bool {
    if !used.contains(&rel) {
        return false;
    }
    match &pattern.variable {
        Some(var) => {
            !matches!(row.get(symbols, var), Some(Value::Relationship(bound)) if *bound == rel)
        }
        None => true,
    }
}

/// Returns the nodes satisfying the node pattern's label and property
/// constraints, in ascending node id order. Dispatches like
/// [`candidate_relationships`].
fn candidate_nodes(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &NodePattern,
) -> Result<Vec<NodeId>, EvalError> {
    if ctx.scan_matching {
        return scan::candidate_nodes(ctx, row, pattern);
    }
    // A bound variable restricts the candidates to the bound node.
    if let Some(var) = &pattern.variable {
        match row.get(ctx.symbols, var) {
            Some(Value::Node(id)) => {
                return if node_matches(ctx, row, *id, pattern)? {
                    Ok(vec![*id])
                } else {
                    Ok(vec![])
                };
            }
            Some(_) => return Ok(vec![]),
            None => {}
        }
    }
    let index = ctx.graph.adjacency();
    // Fast paths for the two overwhelmingly common shapes, avoiding any
    // bitset allocation: an unconstrained pattern matches every node, and a
    // single-label pattern is exactly that label's bitset.
    if pattern.properties.is_empty() {
        match pattern.labels.as_slice() {
            [] => return Ok(ctx.graph.node_ids().collect()),
            [label] => {
                return Ok(match index.nodes_with_label(label) {
                    None => Vec::new(),
                    Some(set) => set.iter().map(NodeId).collect(),
                })
            }
            _ => {}
        }
    }
    // General path: label bitset intersection (`None` means some label has
    // no node), then the property-key prefilter — the node must carry every
    // constrained key.
    let Some(mut candidates) = index.label_candidates(&pattern.labels) else {
        return Ok(Vec::new());
    };
    for (key, _) in &pattern.properties {
        let Some(with_key) = index.nodes_with_key(key) else {
            return Ok(Vec::new());
        };
        candidates.intersect_with(with_key);
    }
    let mut out = Vec::new();
    for id in candidates.iter() {
        let id = NodeId(id);
        // Labels and key presence are guaranteed by the bitsets; only the
        // property values remain to be checked.
        if properties_match(ctx, row, EntityId::Node(id), &pattern.properties)? {
            out.push(id);
        }
    }
    Ok(out)
}

fn node_matches(
    ctx: EvalCtx<'_>,
    row: &Row,
    id: NodeId,
    pattern: &NodePattern,
) -> Result<bool, EvalError> {
    let node = ctx.graph.node(id);
    if !pattern.labels.iter().all(|label| node.labels.contains(label)) {
        return Ok(false);
    }
    properties_match(ctx, row, EntityId::Node(id), &pattern.properties)
}

/// If the node variable is already bound, the candidate must equal it.
fn node_binding_consistent(
    symbols: &SymbolTable,
    row: &Row,
    pattern: &NodePattern,
    id: NodeId,
) -> bool {
    match &pattern.variable {
        Some(var) => match row.get(symbols, var) {
            Some(Value::Node(bound)) => *bound == id,
            Some(_) => false,
            None => true,
        },
        None => true,
    }
}

/// Evaluates a pattern's property map against an entity. Shared with the
/// compiled matcher ([`crate::plan`]) — property expressions are not on the
/// per-candidate name-resolution path the plan layer optimizes.
pub(crate) fn properties_match(
    ctx: EvalCtx<'_>,
    row: &Row,
    entity: EntityId,
    properties: &[(String, cypher_parser::ast::Expr)],
) -> Result<bool, EvalError> {
    for (key, expr) in properties {
        let expected = eval_expr(ctx, row, expr)?;
        let actual = ctx.graph.property(entity, key);
        if actual.cypher_eq(&expected) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn bind_node(symbols: &SymbolTable, row: &mut Row, pattern: &NodePattern, id: NodeId) {
    if let Some(var) = &pattern.variable {
        row.insert(symbols, var, Value::Node(id));
    }
}

/// The pre-index linear-scan candidate enumeration, kept verbatim as the
/// baseline and differential oracle for the adjacency-indexed path (selected
/// with [`EvalCtx::scan_matching`] / `Evaluator::scan_matching`).
///
/// Both paths yield identical candidates in identical (ascending
/// relationship/node id) order, so whole-query results are identical too —
/// including order-sensitive constructs like `LIMIT` without `ORDER BY`. One
/// deliberate asymmetry: the indexed path prunes candidates by label and
/// property-key bitsets *before* evaluating pattern property expressions, so
/// an expression whose evaluation fails (e.g. an unbound `$parameter`) can
/// error here while the indexed path returns no candidates. Supported
/// pattern properties are literals and row lookups, which never error.
pub mod scan {
    use super::*;

    /// Linear-scan version of the relationship-candidate enumeration: walks
    /// every relationship of the graph and filters.
    pub fn candidate_relationships(
        ctx: EvalCtx<'_>,
        row: &Row,
        pattern: &RelationshipPattern,
        from: NodeId,
    ) -> Result<Vec<(RelId, NodeId)>, EvalError> {
        let mut out = Vec::new();
        for rel_id in ctx.graph.relationship_ids() {
            let rel = ctx.graph.relationship(rel_id);
            let neighbour = match pattern.direction {
                RelDirection::Outgoing => {
                    if rel.source != from {
                        continue;
                    }
                    rel.target
                }
                RelDirection::Incoming => {
                    if rel.target != from {
                        continue;
                    }
                    rel.source
                }
                RelDirection::Undirected => {
                    if rel.source == from {
                        rel.target
                    } else if rel.target == from {
                        rel.source
                    } else {
                        continue;
                    }
                }
            };
            if !pattern.labels.is_empty() && !pattern.labels.contains(&rel.label) {
                continue;
            }
            if !properties_match(ctx, row, EntityId::Relationship(rel_id), &pattern.properties)? {
                continue;
            }
            // If the relationship variable is already bound, the candidate
            // must be that exact relationship.
            if let Some(var) = &pattern.variable {
                if let Some(Value::Relationship(bound)) = row.get(ctx.symbols, var) {
                    if *bound != rel_id {
                        continue;
                    }
                }
            }
            out.push((rel_id, neighbour));
        }
        Ok(out)
    }

    /// Linear-scan version of the node-candidate enumeration: tests every
    /// node of the graph against the pattern.
    pub fn candidate_nodes(
        ctx: EvalCtx<'_>,
        row: &Row,
        pattern: &NodePattern,
    ) -> Result<Vec<NodeId>, EvalError> {
        // A bound variable restricts the candidates to the bound node.
        if let Some(var) = &pattern.variable {
            match row.get(ctx.symbols, var) {
                Some(Value::Node(id)) => {
                    return if node_matches(ctx, row, *id, pattern)? {
                        Ok(vec![*id])
                    } else {
                        Ok(vec![])
                    };
                }
                Some(_) => return Ok(vec![]),
                None => {}
            }
        }
        let mut out = Vec::new();
        for id in ctx.graph.node_ids() {
            if node_matches(ctx, row, id, pattern)? {
                out.push(id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use cypher_parser::ast::Clause;
    use cypher_parser::parse_query;

    fn patterns_of(query: &str) -> Vec<PathPattern> {
        let query = parse_query(query).unwrap();
        match &query.parts[0].clauses[0] {
            Clause::Match(m) => m.patterns.clone(),
            _ => panic!("expected MATCH"),
        }
    }

    fn matches_with_symbols(graph: &PropertyGraph, query: &str) -> (SymbolTable, Vec<Row>) {
        let patterns = patterns_of(query);
        let symbols = SymbolTable::new();
        let rows = match_patterns(EvalCtx::new(graph, &symbols), &patterns, &Row::new()).unwrap();
        (symbols, rows)
    }

    fn matches(graph: &PropertyGraph, query: &str) -> Vec<Row> {
        matches_with_symbols(graph, query).1
    }

    fn get<'r>(symbols: &SymbolTable, row: &'r Row, name: &str) -> &'r Value {
        row.get(symbols, name).expect("binding expected")
    }

    #[test]
    fn matches_labelled_nodes() {
        let graph = PropertyGraph::paper_example();
        assert_eq!(matches(&graph, "MATCH (n:Person) RETURN n").len(), 3);
        assert_eq!(matches(&graph, "MATCH (n:Book) RETURN n").len(), 1);
        assert_eq!(matches(&graph, "MATCH (n) RETURN n").len(), 4);
        assert_eq!(matches(&graph, "MATCH (n:Missing) RETURN n").len(), 0);
    }

    #[test]
    fn matches_property_constrained_nodes() {
        let graph = PropertyGraph::paper_example();
        let (symbols, rows) =
            matches_with_symbols(&graph, "MATCH (n:Person {name: 'Alice'}) RETURN n");
        assert_eq!(rows.len(), 1);
        assert_eq!(*get(&symbols, &rows[0], "n"), Value::Node(NodeId(3)));
    }

    #[test]
    fn matches_directed_relationships() {
        let graph = PropertyGraph::paper_example();
        // Two READ relationships point at the book.
        assert_eq!(matches(&graph, "MATCH (p)-[:READ]->(b) RETURN p").len(), 2);
        // Reversed direction: nobody is read by the book.
        assert_eq!(matches(&graph, "MATCH (p)<-[:READ]-(b) RETURN p").len(), 2);
        assert_eq!(matches(&graph, "MATCH (b:Book)-[:READ]->(p) RETURN p").len(), 0);
        // Undirected matches both directions.
        assert_eq!(matches(&graph, "MATCH (p:Person)-[:READ]-(b) RETURN p").len(), 2);
    }

    #[test]
    fn paper_listing_1_pattern() {
        let graph = PropertyGraph::paper_example();
        let (symbols, rows) = matches_with_symbols(
            &graph,
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) RETURN writer",
        );
        // Jack and Alice both read the book written by Rowling.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(*get(&symbols, row, "writer"), Value::Node(NodeId(0)));
            assert_eq!(*get(&symbols, row, "book"), Value::Node(NodeId(1)));
        }
    }

    #[test]
    fn relationship_injectivity_within_one_match() {
        let graph = PropertyGraph::paper_example();
        // The two relationship patterns may not match the same relationship
        // (Fig. 2 discussion in the paper): p1 and p2 must be distinct readers
        // or reader/writer combinations reached through distinct relationships.
        let (symbols, rows) =
            matches_with_symbols(&graph, "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1");
        for row in &rows {
            assert_ne!(get(&symbols, row, "x"), get(&symbols, row, "y"));
        }
        // Pairs: (Jack,Alice), (Alice,Jack), (Rowling,Jack), (Rowling,Alice),
        // (Jack,Rowling), (Alice,Rowling) = 6.
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn no_injectivity_across_separate_matches() {
        let graph = PropertyGraph::paper_example();
        let q = parse_query("MATCH (a)-[r1]->(b) MATCH (c)-[r2]->(d) RETURN a").unwrap();
        let Clause::Match(m1) = &q.parts[0].clauses[0] else { panic!() };
        let Clause::Match(m2) = &q.parts[0].clauses[1] else { panic!() };
        let symbols = SymbolTable::new();
        let ctx = EvalCtx::new(&graph, &symbols);
        let first = match_patterns(ctx, &m1.patterns, &Row::new()).unwrap();
        let mut total = 0;
        let mut same_rel = 0;
        for row in &first {
            for row2 in match_patterns(ctx, &m2.patterns, row).unwrap() {
                total += 1;
                if get(&symbols, &row2, "r1") == get(&symbols, &row2, "r2") {
                    same_rel += 1;
                }
            }
        }
        // 3 x 3 combinations, including the 3 where both patterns matched the
        // same relationship (allowed across different MATCH clauses).
        assert_eq!(total, 9);
        assert_eq!(same_rel, 3);
    }

    #[test]
    fn shared_variables_join_patterns() {
        let graph = PropertyGraph::paper_example();
        let rows = matches(&graph, "MATCH (a:Person)-[:READ]->(b), (a)-[:READ]->(c) RETURN a");
        // With injectivity the two READ patterns must use different
        // relationships, but `a` is shared — no single person read two books,
        // so only... each reader read exactly one book, so no matches.
        assert_eq!(rows.len(), 0);
        let rows = matches(&graph, "MATCH (a:Person)-[:READ]->(b) MATCH (a)-[:READ]->(c) RETURN a");
        // Without a second relationship in the same clause there is exactly
        // one extension per reader.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn variable_length_paths() {
        let mut graph = PropertyGraph::new();
        let a = graph.add_node(["N"], [("name", Value::from("a"))]);
        let b = graph.add_node(["N"], [("name", Value::from("b"))]);
        let c = graph.add_node(["N"], [("name", Value::from("c"))]);
        let d = graph.add_node(["N"], [("name", Value::from("d"))]);
        graph.add_relationship("E", a, b, Vec::<(String, Value)>::new());
        graph.add_relationship("E", b, c, Vec::<(String, Value)>::new());
        graph.add_relationship("E", c, d, Vec::<(String, Value)>::new());

        // Paths of length exactly 2 starting anywhere: a->b->c and b->c->d.
        assert_eq!(matches(&graph, "MATCH (x)-[*2]->(y) RETURN x").len(), 2);
        // Length 1..3 from a: a->b, a->b->c, a->b->c->d.
        let rows = matches(&graph, "MATCH (x {name: 'a'})-[*1..3]->(y) RETURN y");
        assert_eq!(rows.len(), 3);
        // Unbounded `*` reaches the same three targets from a.
        let rows = matches(&graph, "MATCH (x {name: 'a'})-[*]->(y) RETURN y");
        assert_eq!(rows.len(), 3);
        // Zero-length paths are allowed with *0..1: the node itself plus b.
        let rows = matches(&graph, "MATCH (x {name: 'a'})-[*0..1]->(y) RETURN y");
        assert_eq!(rows.len(), 2);
        // The relationship variable binds to the list of traversed edges.
        let (symbols, rows) =
            matches_with_symbols(&graph, "MATCH (x {name: 'a'})-[r *2]->(y) RETURN r");
        assert_eq!(rows.len(), 1);
        match get(&symbols, &rows[0], "r") {
            Value::List(items) => assert_eq!(items.len(), 2),
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn variable_length_with_label_constraint() {
        let mut graph = PropertyGraph::new();
        let a = graph.add_node(["N"], Vec::<(String, Value)>::new());
        let b = graph.add_node(["N"], Vec::<(String, Value)>::new());
        let c = graph.add_node(["N"], Vec::<(String, Value)>::new());
        graph.add_relationship("GOOD", a, b, Vec::<(String, Value)>::new());
        graph.add_relationship("BAD", b, c, Vec::<(String, Value)>::new());
        // Only the GOOD edge may be traversed.
        assert_eq!(matches(&graph, "MATCH (x)-[:GOOD *1..2]->(y) RETURN y").len(), 1);
        assert_eq!(matches(&graph, "MATCH (x)-[*1..2]->(y) RETURN y").len(), 3);
    }

    #[test]
    fn named_paths_bind_path_values() {
        let graph = PropertyGraph::paper_example();
        let (symbols, rows) =
            matches_with_symbols(&graph, "MATCH p = (a:Person)-[:WRITE]->(b) RETURN p");
        assert_eq!(rows.len(), 1);
        match get(&symbols, &rows[0], "p") {
            Value::Path(items) => assert_eq!(items.len(), 3),
            other => panic!("expected path, got {other}"),
        }
    }

    #[test]
    fn indexed_and_scan_matching_agree_in_order() {
        use crate::generator::GraphGenerator;
        let queries = [
            "MATCH (n) RETURN n",
            "MATCH (n:Person) RETURN n",
            "MATCH (n:Person {name: 'Alice'}) RETURN n",
            "MATCH (a)-[r]->(b) RETURN a",
            "MATCH (a)-[r:READ]->(b:Book) RETURN a",
            "MATCH (a)<-[r:READ]-(b) RETURN a",
            "MATCH (a)-[r]-(b) RETURN a",
            "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1",
            "MATCH (x)-[*1..3]->(y) RETURN y",
            "MATCH (x)-[:KNOWS *1..2]-(y) RETURN y",
            "MATCH (a {p1: 1})-[r {date: 1}]->(b) RETURN b",
        ];
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::new(0xD1FF).generate_many(12));
        for graph in &graphs {
            for query in queries {
                let patterns = patterns_of(query);
                // One shared symbol table, so the two runs produce rows with
                // identical symbol ids and compare with plain equality.
                let symbols = SymbolTable::new();
                let indexed =
                    match_patterns(EvalCtx::new(graph, &symbols), &patterns, &Row::new()).unwrap();
                let scan_ctx = EvalCtx { scan_matching: true, ..EvalCtx::new(graph, &symbols) };
                let scanned = match_patterns(scan_ctx, &patterns, &Row::new()).unwrap();
                // Same rows in the same order — the indexed path is a
                // drop-in replacement, not merely bag-equivalent.
                assert_eq!(indexed, scanned, "matching diverged on {query} over {graph}");
            }
        }
    }

    #[test]
    fn match_clause_applies_where() {
        let graph = PropertyGraph::paper_example();
        let q = parse_query("MATCH (n:Person) WHERE n.age > 26 RETURN n").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        let symbols = SymbolTable::new();
        let rows = match_clause(EvalCtx::new(&graph, &symbols), m, &Row::new()).unwrap();
        assert_eq!(rows.len(), 2); // Rowling (59) and Alice (27).
    }
}
