//! The individual normalization rules of Table II.
//!
//! Every rule exposes `apply(&Query) -> Option<Query>` returning `Some` when
//! it rewrote something (rule ⑤ returns the rewritten query plus a change
//! flag since it always succeeds). Rules must be semantics preserving; the
//! crate-level tests check them against the reference evaluator.

use cypher_parser::ast::*;

/// Shared helpers for the rules.
mod util {
    use super::*;

    /// Applies `f` to every expression embedded in a single query
    /// (property maps, predicates, projections, `ORDER BY`, `UNWIND`).
    pub fn map_expressions(query: &mut SingleQuery, f: &impl Fn(Expr) -> Expr) {
        for clause in &mut query.clauses {
            match clause {
                Clause::Match(m) => {
                    for pattern in &mut m.patterns {
                        map_pattern(pattern, f);
                    }
                    if let Some(w) = m.where_clause.take() {
                        m.where_clause = Some(w.map(f));
                    }
                }
                Clause::Unwind(u) => {
                    u.expr = u.expr.clone().map(f);
                }
                Clause::With(w) => {
                    map_projection(&mut w.projection, f);
                    if let Some(p) = w.where_clause.take() {
                        w.where_clause = Some(p.map(f));
                    }
                }
                Clause::Return(p) => map_projection(p, f),
            }
        }
    }

    pub fn map_projection(projection: &mut Projection, f: &impl Fn(Expr) -> Expr) {
        if let ProjectionItems::Items(items) = &mut projection.items {
            for item in items {
                item.expr = item.expr.clone().map(f);
            }
        }
        for order in &mut projection.order_by {
            order.expr = order.expr.clone().map(f);
        }
        if let Some(skip) = projection.skip.take() {
            projection.skip = Some(skip.map(f));
        }
        if let Some(limit) = projection.limit.take() {
            projection.limit = Some(limit.map(f));
        }
    }

    pub fn map_pattern(pattern: &mut PathPattern, f: &impl Fn(Expr) -> Expr) {
        for (_, value) in &mut pattern.start.properties {
            *value = value.clone().map(f);
        }
        for segment in &mut pattern.segments {
            for (_, value) in &mut segment.relationship.properties {
                *value = value.clone().map(f);
            }
            for (_, value) in &mut segment.node.properties {
                *value = value.clone().map(f);
            }
        }
    }

    /// The variables visible at the end of the clause list (used by rule ③).
    pub fn visible_variables(clauses: &[Clause]) -> Vec<String> {
        let mut scope: Vec<String> = Vec::new();
        for clause in clauses {
            match clause {
                Clause::Match(m) => {
                    for pattern in &m.patterns {
                        if let Some(v) = &pattern.variable {
                            push_unique(&mut scope, v);
                        }
                        for node in pattern.nodes() {
                            if let Some(v) = &node.variable {
                                push_unique(&mut scope, v);
                            }
                        }
                        for rel in pattern.relationships() {
                            if let Some(v) = &rel.variable {
                                push_unique(&mut scope, v);
                            }
                        }
                    }
                }
                Clause::Unwind(u) => push_unique(&mut scope, &u.alias),
                Clause::With(w) => {
                    if let ProjectionItems::Items(items) = &w.projection.items {
                        scope = items.iter().map(|item| item.output_name()).collect();
                    }
                }
                Clause::Return(_) => {}
            }
        }
        scope.sort();
        scope
    }

    fn push_unique(scope: &mut Vec<String>, name: &str) {
        if !scope.iter().any(|s| s == name) {
            scope.push(name.to_string());
        }
    }

    /// Rebuilds a query replacing part `index` by `replacements`, joined to
    /// the rest with `UNION ALL`. Only used when the query has no
    /// deduplicating unions (checked by the callers).
    pub fn splice_parts(query: &Query, index: usize, replacements: Vec<SingleQuery>) -> Query {
        let mut parts = Vec::new();
        let mut unions = Vec::new();
        for (i, part) in query.parts.iter().enumerate() {
            if i == index {
                for (j, replacement) in replacements.iter().enumerate() {
                    if !parts.is_empty() {
                        unions.push(if j == 0 && i > 0 {
                            query.unions[i - 1]
                        } else {
                            UnionKind::All
                        });
                    }
                    parts.push(replacement.clone());
                }
            } else {
                if !parts.is_empty() {
                    unions.push(if i > 0 { query.unions[i - 1] } else { UnionKind::All });
                }
                parts.push(part.clone());
            }
        }
        Query { parts, unions }
    }

    pub fn all_unions_are_all(query: &Query) -> bool {
        query.unions.iter().all(|u| *u == UnionKind::All)
    }
}

/// Rule ①: eliminate undirected relationship patterns by splitting the query
/// into a `UNION ALL` of the two directions.
pub mod rule1_undirected {
    use super::util;
    use super::*;

    /// Applies the rule to the first undirected, fixed-length relationship
    /// pattern found.
    pub fn apply(query: &Query) -> Option<Query> {
        if !util::all_unions_are_all(query) {
            return None;
        }
        for (part_index, part) in query.parts.iter().enumerate() {
            for (clause_index, clause) in part.clauses.iter().enumerate() {
                let Clause::Match(m) = clause else { continue };
                for (pattern_index, pattern) in m.patterns.iter().enumerate() {
                    for (segment_index, segment) in pattern.segments.iter().enumerate() {
                        let rel = &segment.relationship;
                        if rel.direction == RelDirection::Undirected && !rel.is_var_length() {
                            let mut forward = part.clone();
                            let mut backward = part.clone();
                            set_direction(
                                &mut forward,
                                clause_index,
                                pattern_index,
                                segment_index,
                                RelDirection::Outgoing,
                            );
                            set_direction(
                                &mut backward,
                                clause_index,
                                pattern_index,
                                segment_index,
                                RelDirection::Incoming,
                            );
                            return Some(util::splice_parts(
                                query,
                                part_index,
                                vec![forward, backward],
                            ));
                        }
                    }
                }
            }
        }
        None
    }

    fn set_direction(
        part: &mut SingleQuery,
        clause_index: usize,
        pattern_index: usize,
        segment_index: usize,
        direction: RelDirection,
    ) {
        if let Clause::Match(m) = &mut part.clauses[clause_index] {
            m.patterns[pattern_index].segments[segment_index].relationship.direction = direction;
        }
    }
}

/// Rule ②: rewrite bounded variable-length paths (`-[*1..3]->`) into the
/// union of the fixed lengths.
pub mod rule2_var_length {
    use super::util;
    use super::*;

    /// Largest expansion the rule performs; longer ranges stay with the
    /// uninterpreted `UNBOUNDED` modeling.
    const MAX_EXPANSION: u32 = 5;

    /// Applies the rule to the first bounded variable-length pattern found.
    pub fn apply(query: &Query) -> Option<Query> {
        if !util::all_unions_are_all(query) {
            return None;
        }
        for (part_index, part) in query.parts.iter().enumerate() {
            for (clause_index, clause) in part.clauses.iter().enumerate() {
                let Clause::Match(m) = clause else { continue };
                for (pattern_index, pattern) in m.patterns.iter().enumerate() {
                    for (segment_index, segment) in pattern.segments.iter().enumerate() {
                        let rel = &segment.relationship;
                        let Some(length) = rel.length else { continue };
                        let (Some(max), min) = (length.max, length.effective_min()) else {
                            continue;
                        };
                        if rel.variable.is_some() || min == 0 || max < min || max > MAX_EXPANSION {
                            continue;
                        }
                        let mut replacements = Vec::new();
                        for hops in min..=max {
                            let mut copy = part.clone();
                            expand(&mut copy, clause_index, pattern_index, segment_index, hops);
                            replacements.push(copy);
                        }
                        return Some(util::splice_parts(query, part_index, replacements));
                    }
                }
            }
        }
        None
    }

    /// Replaces segment `segment_index` by `hops` copies of a single-hop
    /// relationship with the same labels / properties / direction, chained
    /// through anonymous nodes.
    fn expand(
        part: &mut SingleQuery,
        clause_index: usize,
        pattern_index: usize,
        segment_index: usize,
        hops: u32,
    ) {
        let Clause::Match(m) = &mut part.clauses[clause_index] else { return };
        let pattern = &mut m.patterns[pattern_index];
        let original = pattern.segments[segment_index].clone();
        let mut replacement_segments = Vec::new();
        for hop in 0..hops {
            let relationship = RelationshipPattern {
                variable: None,
                labels: original.relationship.labels.clone(),
                properties: original.relationship.properties.clone(),
                direction: original.relationship.direction,
                length: None,
            };
            let node =
                if hop + 1 == hops { original.node.clone() } else { NodePattern::anonymous() };
            replacement_segments.push(PathSegment { relationship, node });
        }
        pattern.segments.splice(segment_index..=segment_index, replacement_segments);
    }
}

/// Rule ③: expand `RETURN *` / `WITH *` into an explicit item list sorted
/// alphabetically.
pub mod rule3_return_star {
    use super::util;
    use super::*;

    /// Applies the rule to the first star projection found.
    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        let mut changed = false;
        for part in &mut result.parts {
            for index in 0..part.clauses.len() {
                let scope = util::visible_variables(&part.clauses[..index]);
                let projection = match &mut part.clauses[index] {
                    Clause::With(w) => &mut w.projection,
                    Clause::Return(p) => p,
                    _ => continue,
                };
                if projection.items == ProjectionItems::Star && !scope.is_empty() {
                    projection.items = ProjectionItems::Items(
                        scope
                            .iter()
                            .map(|name| ProjectionItem::expr(Expr::Variable(name.clone())))
                            .collect(),
                    );
                    changed = true;
                }
            }
        }
        if changed {
            Some(result)
        } else {
            None
        }
    }
}

/// Rule ④: eliminate a redundant `WITH` clause (no `DISTINCT`, aggregation,
/// ordering, truncation or filter) by inlining its aliases into the
/// following clauses.
pub mod rule4_redundant_with {
    use super::util;
    use super::*;
    use std::collections::BTreeMap;

    /// Applies the rule to the first redundant `WITH` found.
    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        for part in &mut result.parts {
            for index in 0..part.clauses.len() {
                let Clause::With(w) = &part.clauses[index] else { continue };
                if w.projection.distinct
                    || w.projection.has_sort_or_truncation()
                    || w.where_clause.is_some()
                {
                    continue;
                }
                let Some(items) = w.projection.explicit_items() else { continue };
                if items.iter().any(|item| item.expr.contains_aggregate()) {
                    continue;
                }
                // Build the substitution output name -> defining expression.
                let mut substitution: BTreeMap<String, Expr> = BTreeMap::new();
                let mut trivial = true;
                for item in items {
                    let name = item.output_name();
                    if item.alias.is_none() && matches!(item.expr, Expr::Variable(_)) {
                        // `WITH x` keeps `x` as-is; nothing to substitute.
                        continue;
                    }
                    trivial = false;
                    substitution.insert(name, item.expr.clone());
                }
                // A WITH that only forwards variables is redundant as well.
                let _ = trivial;
                part.clauses.remove(index);
                // Substitute in the remaining clauses of this part.
                let mut tail = SingleQuery { clauses: part.clauses.split_off(index) };
                util::map_expressions(&mut tail, &|expr| match &expr {
                    Expr::Variable(name) => substitution.get(name).cloned().unwrap_or(expr),
                    _ => expr,
                });
                part.clauses.extend(tail.clauses);
                return Some(result);
            }
        }
        None
    }
}

/// Rule ⑤: standardize variable names to `n1, n2, ...` (nodes), `r1, ...`
/// (relationships) and `p1, ...` (paths) in order of first appearance.
pub mod rule5_standardize {
    use super::util;
    use super::*;
    use std::collections::BTreeMap;

    /// Renames the variables of every part. Returns the rewritten query and
    /// whether anything changed.
    pub fn apply(query: &Query) -> (Query, bool) {
        let mut result = query.clone();
        let mut changed = false;
        for part in &mut result.parts {
            let mapping = build_mapping(part);
            if mapping.iter().any(|(from, to)| from != to) {
                changed = true;
            }
            rename_part(part, &mapping);
        }
        (result, changed)
    }

    fn build_mapping(part: &SingleQuery) -> BTreeMap<String, String> {
        let mut mapping = BTreeMap::new();
        let mut nodes = 0usize;
        let mut rels = 0usize;
        let mut paths = 0usize;
        for clause in &part.clauses {
            let Clause::Match(m) = clause else { continue };
            for pattern in &m.patterns {
                if let Some(v) = &pattern.variable {
                    paths += 1;
                    mapping.entry(v.clone()).or_insert_with(|| format!("p{paths}"));
                }
                for node in pattern.nodes() {
                    if let Some(v) = &node.variable {
                        if !mapping.contains_key(v) {
                            nodes += 1;
                            mapping.insert(v.clone(), format!("n{nodes}"));
                        }
                    }
                }
                for rel in pattern.relationships() {
                    if let Some(v) = &rel.variable {
                        if !mapping.contains_key(v) {
                            rels += 1;
                            mapping.insert(v.clone(), format!("r{rels}"));
                        }
                    }
                }
            }
        }
        mapping
    }

    fn rename_part(part: &mut SingleQuery, mapping: &BTreeMap<String, String>) {
        for clause in &mut part.clauses {
            if let Clause::Match(m) = clause {
                for pattern in &mut m.patterns {
                    if let Some(v) = &mut pattern.variable {
                        if let Some(new) = mapping.get(v) {
                            *v = new.clone();
                        }
                    }
                    if let Some(v) = &mut pattern.start.variable {
                        if let Some(new) = mapping.get(v) {
                            *v = new.clone();
                        }
                    }
                    for segment in &mut pattern.segments {
                        if let Some(v) = &mut segment.relationship.variable {
                            if let Some(new) = mapping.get(v) {
                                *v = new.clone();
                            }
                        }
                        if let Some(v) = &mut segment.node.variable {
                            if let Some(new) = mapping.get(v) {
                                *v = new.clone();
                            }
                        }
                    }
                }
            }
        }
        util::map_expressions(part, &|expr| match &expr {
            Expr::Variable(name) => match mapping.get(name) {
                Some(new) => Expr::Variable(new.clone()),
                None => expr,
            },
            _ => expr,
        });
    }
}

/// Rule ⑥: simplify `id(a) = id(b)` (or `a = b` on node variables) into a
/// variable unification: `b` is replaced by `a` and duplicate bare node
/// patterns are removed.
pub mod rule6_id_equality {
    use super::util;
    use super::*;

    /// Applies the rule to the first `id(a) = id(b)` conjunct found.
    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        for part in &mut result.parts {
            for clause_index in 0..part.clauses.len() {
                let Clause::Match(m) = &mut part.clauses[clause_index] else { continue };
                let Some(predicate) = &m.where_clause else { continue };
                let Some((keep, drop, remainder)) = find_id_equality(predicate) else { continue };
                m.where_clause = remainder;
                // Substitute `drop` by `keep` throughout the part.
                for clause in &mut part.clauses {
                    if let Clause::Match(m) = clause {
                        for pattern in &mut m.patterns {
                            rename_pattern_variable(pattern, &drop, &keep);
                        }
                    }
                }
                util::map_expressions(part, &|expr| match &expr {
                    Expr::Variable(name) if *name == drop => Expr::Variable(keep.clone()),
                    _ => expr,
                });
                // Deduplicate bare single-node patterns that are now identical.
                if let Clause::Match(m) = &mut part.clauses[clause_index] {
                    let mut seen: Vec<PathPattern> = Vec::new();
                    m.patterns.retain(|pattern| {
                        let bare = pattern.segments.is_empty()
                            && pattern.start.labels.is_empty()
                            && pattern.start.properties.is_empty()
                            && pattern.start.variable.is_some();
                        if bare && seen.contains(pattern) {
                            false
                        } else {
                            seen.push(pattern.clone());
                            true
                        }
                    });
                }
                return Some(result);
            }
        }
        None
    }

    fn rename_pattern_variable(pattern: &mut PathPattern, from: &str, to: &str) {
        if pattern.start.variable.as_deref() == Some(from) {
            pattern.start.variable = Some(to.to_string());
        }
        for segment in &mut pattern.segments {
            if segment.node.variable.as_deref() == Some(from) {
                segment.node.variable = Some(to.to_string());
            }
            if segment.relationship.variable.as_deref() == Some(from) {
                segment.relationship.variable = Some(to.to_string());
            }
        }
    }

    /// Finds a conjunct `id(a) = id(b)` in the AND-tree of the predicate.
    /// Returns `(a, b, predicate without the conjunct)`.
    fn find_id_equality(predicate: &Expr) -> Option<(String, String, Option<Expr>)> {
        let conjuncts = flatten_and(predicate);
        for (index, conjunct) in conjuncts.iter().enumerate() {
            if let Expr::Binary(BinaryOp::Eq, lhs, rhs) = conjunct {
                if let (Some(a), Some(b)) = (id_argument(lhs), id_argument(rhs)) {
                    if a != b {
                        let mut remaining = conjuncts.clone();
                        remaining.remove(index);
                        let remainder = remaining.into_iter().reduce(Expr::and);
                        return Some((a, b, remainder));
                    }
                }
            }
        }
        None
    }

    fn flatten_and(expr: &Expr) -> Vec<Expr> {
        match expr {
            Expr::Binary(BinaryOp::And, lhs, rhs) => {
                let mut out = flatten_and(lhs);
                out.extend(flatten_and(rhs));
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Returns the variable inside `id(x)`, or the variable itself.
    fn id_argument(expr: &Expr) -> Option<String> {
        match expr {
            Expr::FunctionCall { name, args } if name == "id" && args.len() == 1 => {
                match &args[0] {
                    Expr::Variable(v) => Some(v.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    #[test]
    fn rule1_skips_var_length_undirected() {
        let query = parse_query("MATCH (a)-[*1..2]-(b) RETURN a").unwrap();
        assert!(rule1_undirected::apply(&query).is_none());
    }

    #[test]
    fn rule2_respects_expansion_bound() {
        let query = parse_query("MATCH (a)-[*1..9]->(b) RETURN a").unwrap();
        assert!(rule2_var_length::apply(&query).is_none());
        let query = parse_query("MATCH (a)-[*2..3]->(b) RETURN a").unwrap();
        let expanded = rule2_var_length::apply(&query).unwrap();
        assert_eq!(expanded.parts.len(), 2);
    }

    #[test]
    fn rule3_no_change_without_star() {
        let query = parse_query("MATCH (a) RETURN a").unwrap();
        assert!(rule3_return_star::apply(&query).is_none());
    }

    #[test]
    fn rule4_keeps_filtering_with() {
        let query = parse_query("MATCH (a) WITH a WHERE a.x = 1 RETURN a").unwrap();
        assert!(rule4_redundant_with::apply(&query).is_none());
    }

    #[test]
    fn rule6_requires_id_calls() {
        let query = parse_query("MATCH (a), (b) WHERE a.x = b.x RETURN a").unwrap();
        assert!(rule6_id_equality::apply(&query).is_none());
        let query = parse_query("MATCH (a), (b) WHERE id(a) = id(b) RETURN b").unwrap();
        let rewritten = rule6_id_equality::apply(&query).unwrap();
        let Clause::Match(m) = &rewritten.parts[0].clauses[0] else { panic!() };
        assert_eq!(m.patterns.len(), 1);
        assert!(m.where_clause.is_none());
    }
}
