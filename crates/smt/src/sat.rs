//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The solver implements the standard architecture: two-watched-literal unit
//! propagation, first-UIP conflict analysis with clause learning,
//! non-chronological backjumping and activity-based decision ordering. It is
//! deliberately compact — the propositional skeletons produced by the
//! GraphQE decision procedure are small — but it is a complete SAT solver
//! and is tested on classic pigeonhole / random instances.

/// A literal: variable index with a sign. `Lit(2 * var)` is the positive
/// literal, `Lit(2 * var + 1)` the negative one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Creates a literal from a variable index and a polarity.
    pub fn new(var: usize, positive: bool) -> Lit {
        Lit((var as u32) << 1 | u32::from(!positive))
    }

    /// The variable index of the literal.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negated literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The result of a SAT check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable with the given assignment (indexed by variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// A CDCL SAT solver over clauses added with [`SatSolver::add_clause`].
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<usize>>,
    assignment: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    activity: Vec<f64>,
    activity_inc: f64,
    propagate_head: usize,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver { activity_inc: 1.0, ..Default::default() }
    }

    /// The number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assignment.len()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let var = self.assignment.len();
        self.assignment.push(Value::Unassigned);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        var
    }

    fn ensure_var(&mut self, var: usize) {
        while self.num_vars() <= var {
            self.new_var();
        }
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// instance trivially unsatisfiable.
    pub fn add_clause(&mut self, mut clause: Vec<Lit>) {
        for lit in &clause {
            self.ensure_var(lit.var());
        }
        clause.sort_by_key(|l| l.0);
        clause.dedup();
        // A clause containing `l` and `¬l` is a tautology.
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        let index = self.clauses.len();
        match clause.len() {
            0 => {
                // Encode the empty clause as two contradictory unit clauses on
                // a fresh variable.
                let v = self.new_var();
                self.clauses.push(vec![Lit::new(v, true)]);
                self.clauses.push(vec![Lit::new(v, false)]);
            }
            1 => {
                self.clauses.push(clause);
            }
            _ => {
                self.watches[clause[0].index()].push(index);
                self.watches[clause[1].index()].push(index);
                self.clauses.push(clause);
            }
        }
    }

    fn value(&self, lit: Lit) -> Value {
        match self.assignment[lit.var()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if lit.is_positive() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if lit.is_positive() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value(lit) {
            Value::False => false,
            Value::True => true,
            Value::Unassigned => {
                self.assignment[lit.var()] =
                    if lit.is_positive() { Value::True } else { Value::False };
                self.level[lit.var()] = self.decision_level();
                self.reason[lit.var()] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation with two watched literals. Returns the index of a
    /// conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            let false_lit = lit.negated();
            let watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut keep = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            for (position, &clause_index) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    keep.extend_from_slice(&watch_list[position..]);
                    break;
                }
                // Normalize so the false literal is at position 1.
                let clause = &mut self.clauses[clause_index];
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                let first = clause[0];
                if self.value(first) == Value::True {
                    keep.push(clause_index);
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[clause_index].len() {
                    let candidate = self.clauses[clause_index][k];
                    if self.value(candidate) != Value::False {
                        self.clauses[clause_index].swap(1, k);
                        self.watches[candidate.index()].push(clause_index);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                keep.push(clause_index);
                if !self.enqueue(first, Some(clause_index)) {
                    conflict = Some(clause_index);
                }
            }
            self.watches[false_lit.index()] = keep;
            if let Some(conflict) = conflict {
                return Some(conflict);
            }
        }
        None
    }

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause and the level
    /// to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut clause_index = Some(conflict);
        let mut trail_position = self.trail.len();
        #[allow(unused_assignments)]
        let mut uip: Option<Lit> = None;
        let mut skip_var: Option<usize> = None;

        loop {
            if let Some(ci) = clause_index {
                // Resolve on the clause by index: literals are copied out one
                // at a time, so bumping activities needs no clause clone.
                for k in 0..self.clauses[ci].len() {
                    let lit = self.clauses[ci][k];
                    let var = lit.var();
                    // Skip the literal whose reason clause we are resolving on.
                    if Some(var) == skip_var {
                        continue;
                    }
                    if seen[var] || self.level[var] == 0 {
                        continue;
                    }
                    seen[var] = true;
                    self.bump_activity(var);
                    if self.level[var] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(lit);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                trail_position -= 1;
                let lit = self.trail[trail_position];
                if seen[lit.var()] {
                    uip = Some(lit.negated());
                    skip_var = Some(lit.var());
                    seen[lit.var()] = false;
                    clause_index = self.reason[lit.var()];
                    counter -= 1;
                    break;
                }
            }
            if counter == 0 {
                break;
            }
        }
        let asserting = uip.expect("conflict analysis always finds a UIP");
        learned.push(asserting);
        // The backjump level is the second-highest level in the learned clause.
        let mut backjump = 0;
        for lit in &learned {
            if *lit != asserting {
                backjump = backjump.max(self.level[lit.var()]);
            }
        }
        // Place the asserting literal first.
        let last = learned.len() - 1;
        learned.swap(0, last);
        (learned, backjump)
    }

    fn backjump(&mut self, level: u32) {
        while let Some(&lit) = self.trail.last() {
            if self.level[lit.var()] <= level {
                break;
            }
            self.assignment[lit.var()] = Value::Unassigned;
            self.reason[lit.var()] = None;
            self.trail.pop();
        }
        self.trail_lim.truncate(level as usize);
        self.propagate_head = self.trail.len();
    }

    fn pick_branch_variable(&self) -> Option<usize> {
        (0..self.num_vars()).filter(|v| self.assignment[*v] == Value::Unassigned).max_by(|a, b| {
            self.activity[*a].partial_cmp(&self.activity[*b]).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Solves the clause set added so far. Each call restarts the search from
    /// scratch (keeping learned clauses), so clauses may be added between
    /// calls — the lazy DPLL(T) loop relies on this.
    pub fn solve(&mut self) -> SatOutcome {
        // Full restart: clear every assignment, then re-assert unit clauses.
        for value in &mut self.assignment {
            *value = Value::Unassigned;
        }
        for reason in &mut self.reason {
            *reason = None;
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.propagate_head = 0;
        for index in 0..self.clauses.len() {
            if self.clauses[index].len() == 1 {
                let lit = self.clauses[index][0];
                if !self.enqueue(lit, Some(index)) {
                    return SatOutcome::Unsat;
                }
            }
        }
        loop {
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    return SatOutcome::Unsat;
                }
                let (learned, backjump_level) = self.analyze(conflict);
                self.backjump(backjump_level);
                let asserting = learned[0];
                let clause_index = self.clauses.len();
                if learned.len() >= 2 {
                    self.watches[learned[0].index()].push(clause_index);
                    self.watches[learned[1].index()].push(clause_index);
                }
                self.clauses.push(learned);
                self.activity_inc *= 1.05;
                self.enqueue(asserting, Some(clause_index));
            } else {
                match self.pick_branch_variable() {
                    None => {
                        let model = self.assignment.iter().map(|v| *v == Value::True).collect();
                        return SatOutcome::Sat(model);
                    }
                    Some(var) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(var, false), None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        Lit::new(v, positive)
    }

    #[test]
    fn literal_encoding() {
        let l = lit(3, true);
        assert_eq!(l.var(), 3);
        assert!(l.is_positive());
        assert_eq!(l.negated().var(), 3);
        assert!(!l.negated().is_positive());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn solves_trivial_instances() {
        let mut solver = SatSolver::new();
        solver.add_clause(vec![lit(0, true)]);
        solver.add_clause(vec![lit(1, false)]);
        match solver.solve() {
            SatOutcome::Sat(model) => {
                assert!(model[0]);
                assert!(!model[1]);
            }
            SatOutcome::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn detects_direct_contradiction() {
        let mut solver = SatSolver::new();
        solver.add_clause(vec![lit(0, true)]);
        solver.add_clause(vec![lit(0, false)]);
        assert_eq!(solver.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn propagates_implication_chains() {
        // (¬a ∨ b) ∧ (¬b ∨ c) ∧ a ∧ ¬c is UNSAT.
        let mut solver = SatSolver::new();
        solver.add_clause(vec![lit(0, false), lit(1, true)]);
        solver.add_clause(vec![lit(1, false), lit(2, true)]);
        solver.add_clause(vec![lit(0, true)]);
        solver.add_clause(vec![lit(2, false)]);
        assert_eq!(solver.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn solves_satisfiable_3sat() {
        // (a ∨ b ∨ c) ∧ (¬a ∨ ¬b) ∧ (¬b ∨ ¬c) ∧ (¬a ∨ ¬c)
        // — exactly one of a, b, c true.
        let mut solver = SatSolver::new();
        solver.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, false)]);
        solver.add_clause(vec![lit(1, false), lit(2, false)]);
        solver.add_clause(vec![lit(0, false), lit(2, false)]);
        match solver.solve() {
            SatOutcome::Sat(model) => {
                let trues = model.iter().take(3).filter(|b| **b).count();
                assert_eq!(trues, 1);
            }
            SatOutcome::Unsat => panic!("expected SAT"),
        }
    }

    /// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes is UNSAT.
    fn pigeonhole(pigeons: usize, holes: usize) -> SatSolver {
        let mut solver = SatSolver::new();
        let var = |p: usize, h: usize| p * holes + h;
        // Each pigeon sits in some hole.
        for p in 0..pigeons {
            solver.add_clause((0..holes).map(|h| lit(var(p, h), true)).collect());
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    solver.add_clause(vec![lit(var(p1, h), false), lit(var(p2, h), false)]);
                }
            }
        }
        solver
    }

    #[test]
    fn refutes_pigeonhole_4_into_3() {
        assert_eq!(pigeonhole(4, 3).solve(), SatOutcome::Unsat);
    }

    #[test]
    fn satisfies_pigeonhole_3_into_3() {
        assert!(matches!(pigeonhole(3, 3).solve(), SatOutcome::Sat(_)));
    }

    #[test]
    fn models_satisfy_all_clauses() {
        // Deterministic pseudo-random 3-SAT instances with a planted solution.
        let mut seed = 0x1234_5678u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..20 {
            let num_vars = 12;
            let planted: Vec<bool> = (0..num_vars).map(|_| next() % 2 == 0).collect();
            let mut solver = SatSolver::new();
            let mut clauses = Vec::new();
            for _ in 0..40 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = next() % num_vars;
                    clause.push(Lit::new(v, next() % 2 == 0));
                }
                // Force the clause to be satisfied by the planted assignment.
                if !clause.iter().any(|l| planted[l.var()] == l.is_positive()) {
                    let v = clause[0].var();
                    clause[0] = Lit::new(v, planted[v]);
                }
                clauses.push(clause.clone());
                solver.add_clause(clause);
            }
            match solver.solve() {
                SatOutcome::Sat(model) => {
                    for clause in &clauses {
                        assert!(
                            clause.iter().any(|l| model[l.var()] == l.is_positive()),
                            "model does not satisfy {clause:?}"
                        );
                    }
                }
                SatOutcome::Unsat => panic!("planted instance must be SAT"),
            }
        }
    }
}
