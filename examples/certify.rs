//! Certify: every definite verdict carries a machine-checkable artifact.
//!
//! Proves one equivalent and one non-equivalent dataset pair, writes both
//! certificates to JSON files, re-reads them, and validates them with the
//! dependency-free checker crate — the auditor workflow: the checker never
//! invokes the prover or the SMT solver, so a green check is independent
//! evidence, not the prover agreeing with itself.
//!
//! Run with `cargo run --example certify`.

#![forbid(unsafe_code)]

use std::path::Path;

use graphqe::{GraphQE, Verdict};
use graphqe_checker::{check_certificate, Certificate};

fn main() {
    let prover = GraphQE::new();
    let out_dir = std::env::temp_dir().join("graphqe-certify");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // The first dataset pair the prover settles on each side of the verdict
    // space: one proved equivalence, one concrete counterexample.
    let eq = cyeqset::cyeqset()
        .into_iter()
        .find(|pair| prover.prove(&pair.left, &pair.right).is_equivalent())
        .expect("an equivalent dataset pair");
    let neq = cyeqset::cyneqset()
        .into_iter()
        .find(|pair| prover.prove(&pair.left, &pair.right).is_not_equivalent())
        .expect("a non-equivalent dataset pair");

    for pair in [eq, neq] {
        println!("pair {id}:", id = pair.id);
        println!("  Q1: {}", pair.left);
        println!("  Q2: {}", pair.right);
        let (verdict, certificate) = prover.prove_certified(&pair.left, &pair.right, true);
        match verdict {
            Verdict::Equivalent(_) => println!("  verdict: EQUIVALENT"),
            Verdict::NotEquivalent(example) => println!(
                "  verdict: NOT EQUIVALENT ({} vs {} rows on a {}-node graph)",
                example.left_rows,
                example.right_rows,
                example.graph.node_count()
            ),
            Verdict::Unknown { reason, .. } => unreachable!("definite pair went unknown: {reason}"),
        }
        let certificate = certificate.expect("definite verdicts carry a certificate");
        let path = out_dir.join(format!("{id}.json", id = pair.id));
        std::fs::write(&path, certificate.to_json()).expect("write certificate");
        revalidate(&path);
        println!();
    }
}

/// Re-reads a certificate from disk and validates it from scratch — nothing
/// survives from the emitting prover but the bytes in the file.
fn revalidate(path: &Path) {
    let text = std::fs::read_to_string(path).expect("read certificate back");
    let certificate = Certificate::from_json(&text).expect("re-parse certificate");
    let summary = check_certificate(&certificate).expect("independent validation");
    println!("  certificate: {} ({} bytes)", path.display(), text.len());
    println!(
        "  checked: {} derivation steps, {} segments, {} summands matched, \
         {} classes counted, {} rows re-evaluated, {} obligations trusted to SMT",
        summary.derivation_steps,
        summary.segments,
        summary.summands_matched,
        summary.classes_counted,
        summary.rows_reevaluated,
        summary.trusted_obligations
    );
}
