//! # liastar
//!
//! The LIA\*-based decision procedure for G-expression equivalence
//! (stage ④ of the GraphQE workflow, §IV-C of the paper).
//!
//! The paper eliminates unbounded summations with the LIA\* construction of
//! Ding et al. and hands the resulting linear-arithmetic formula to Z3. This
//! crate reproduces the same pipeline on top of the from-scratch [`smt`]
//! solver:
//!
//! 1. both G-expressions are [`gexpr::normalize()`]d into sums of summations of
//!    products;
//! 2. each summand is **simplified with SMT reasoning** — summands whose
//!    factors are jointly unsatisfiable are identically zero and dropped, and
//!    atoms implied by the remaining factors of their product are removed
//!    (`[x > 5] × [x > 3] = [x > 5]`);
//! 3. each summation is abstracted by a non-negative integer variable; two
//!    summations receive the same variable exactly when their bodies are
//!    isomorphic (found by the backtracking matcher in [`iso`]);
//! 4. the equality of the two abstracted linear expressions is discharged by
//!    the SMT solver: `∃t. g1(t) ≠ g2(t)` is unsatisfiable iff every abstract
//!    variable occurs with the same multiplicity on both sides.
//!
//! All steps are sound: a `Proved` verdict implies the G-expressions agree on
//! every property graph and tuple.
//!
//! ## Two implementations of the decision procedure
//!
//! The default pipeline is **arena-native**: both inputs are interned into
//! the calling thread's hash-consed [`gexpr::arena::GStore`] once, and every
//! stage — disjoint-squash splitting, normalization, summand splitting and
//! SMT simplification, isomorphism matching, class counting — operates
//! directly on interned `NodeId`s. No `GExpr` tree is materialized between
//! stages, the caches key on ids natively, and the iso matcher short-circuits
//! in O(1) when both sides are the same interned node.
//!
//! The paper-faithful **tree pipeline** (reference normalizer, cloning
//! matcher, no caches) is kept behind [`DecideOptions::tree_normalizer`] as
//! the benchmark baseline and the differential-testing oracle: both pipelines
//! return identical verdicts on every input (asserted by the property tests
//! and by `bench_pr2` over both datasets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod iso;
pub mod witness;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gexpr::arena::{ANode, GStore, NodeId as ArenaNodeId};
use gexpr::{normalize_tree, GExpr};
use smt::{SmtResult, Solver, Term};

pub use encode::{
    encode_atom, encode_atom_id, encode_factor, encode_factor_id, encode_product,
    encode_product_ids, encode_term, encode_term_id,
};
pub use iso::{isomorphic, unify_expr, unify_multiset, Checkpoint, VarMapping};

/// The outcome of the equivalence decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The two G-expressions were proven equivalent.
    Proved,
    /// Equivalence could not be established (this does **not** mean the
    /// queries are inequivalent).
    NotProved,
}

impl Decision {
    /// Returns `true` for [`Decision::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Decision::Proved)
    }
}

/// Statistics of one equivalence decision, reported for benchmarking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionStats {
    /// Number of summands on each side after normalization.
    pub summands: (usize, usize),
    /// Number of summands pruned because they were identically zero.
    pub pruned_zero: usize,
    /// Number of atoms removed by implication pruning.
    pub pruned_implied: usize,
    /// Whether the final step needed the SMT arithmetic check.
    pub used_smt_arithmetic: bool,
}

/// Options of the decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecideOptions {
    /// Use the paper-faithful tree pipeline (reference tree normalizer,
    /// cloning iso matcher, no caches) instead of the id-native arena
    /// pipeline. Results are identical; this exists so benchmarks can
    /// measure the arena speedup against the paper-faithful baseline and so
    /// tests can differentially compare the two implementations.
    pub tree_normalizer: bool,
}

/// Decides whether two G-expressions are equivalent on every property graph.
pub fn check_equivalence(g1: &GExpr, g2: &GExpr) -> Decision {
    check_equivalence_with_stats(g1, g2).0
}

/// [`check_equivalence`] with decision statistics.
pub fn check_equivalence_with_stats(g1: &GExpr, g2: &GExpr) -> (Decision, DecisionStats) {
    check_equivalence_with_opts(g1, g2, DecideOptions::default())
}

/// [`check_equivalence_with_stats`] with explicit [`DecideOptions`].
pub fn check_equivalence_with_opts(
    g1: &GExpr,
    g2: &GExpr,
    opts: DecideOptions,
) -> (Decision, DecisionStats) {
    // A trip can only occur under an ambient `limits::RunToken`; degrading to
    // `NotProved` is sound — `NotProved` asserts nothing. Deadline-aware
    // callers use [`try_check_equivalence_with_opts`] to see the trip itself.
    try_check_equivalence_with_opts(g1, g2, opts)
        .unwrap_or_else(|_| (Decision::NotProved, DecisionStats::default()))
}

/// [`check_equivalence_with_opts`] with cooperative limit checkpoints
/// surfaced: under an ambient [`limits::RunToken`] that trips (deadline,
/// budget, cancellation), the decision unwinds with the [`limits::Trip`]
/// instead of a degraded verdict. Checkpoints sit at every `decide`
/// recursion, per summand simplified, and per summand classified in the
/// LIA class counting; the SMT layer additionally charges the token's step
/// budget per CDCL iteration.
pub fn try_check_equivalence_with_opts(
    g1: &GExpr,
    g2: &GExpr,
    opts: DecideOptions,
) -> Result<(Decision, DecisionStats), limits::Trip> {
    if opts.tree_normalizer {
        // The paper-faithful baseline pipeline carries no checkpoints of its
        // own (its SMT calls still observe the step budget, degrading each
        // check to `Unknown`, which only weakens simplification — soundly).
        return Ok(tree::check_equivalence(g1, g2));
    }
    let mut stats = DecisionStats::default();
    gexpr::arena::with_thread_store(|store| {
        sync_caches_to_epoch(store.epoch());
        limits::checkpoint(limits::Stage::Decide)?;
        let left = store.intern_expr(g1);
        let right = store.intern_expr(g2);
        let left = split_disjoint_squashes(store, left);
        let right = split_disjoint_squashes(store, right);
        let left = store.normalize_id(left);
        let right = store.normalize_id(right);
        // Quick path: hash-consing makes post-normalization syntactic
        // equality a single id comparison.
        if left == right {
            return Ok((Decision::Proved, stats));
        }
        decide(store, left, right, &mut stats)
    })
}

// ---------------------------------------------------------------------------
// Caches (id-keyed, thread-local, epoch-synced) and their counters
// ---------------------------------------------------------------------------

thread_local! {
    /// Cache of pairwise disjointness checks, keyed by arena node ids.
    static DISJOINT_CACHE: RefCell<HashMap<(ArenaNodeId, ArenaNodeId), bool>> =
        RefCell::new(HashMap::new());
    /// Cache of [`simplify_summand`] results, keyed by the summand's arena
    /// node id: the simplified summand (`None` = pruned as identically zero),
    /// the number of implied atoms removed (replayed into the stats), and a
    /// recency stamp driving the cross-epoch carry-over (see
    /// [`reset_thread_caches`]).
    static SUMMAND_CACHE: RefCell<HashMap<ArenaNodeId, SummandEntry>> =
        RefCell::new(HashMap::new());
    /// Monotonic access counter stamping [`SUMMAND_CACHE`] entries.
    static SUMMAND_STAMP: Cell<u64> = const { Cell::new(0) };
    /// The arena epoch the id-keyed caches above belong to.
    static CACHE_EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// One memoized summand simplification: the result id (`None` = pruned as
/// identically zero), the implied-atom count, and the last-access stamp.
#[derive(Clone, Copy)]
struct SummandEntry {
    result: Option<ArenaNodeId>,
    implied: usize,
    stamp: u64,
}

/// How many of the most recently used summand-simplification entries survive
/// an epoch reset (externalized before the arena is dropped, re-interned
/// after). Small on purpose: the carry-over exists to absorb the latency
/// spike right after a reset — the first pairs decided in the new epoch are
/// usually structurally close to the last pairs of the old one — not to
/// defeat the eviction.
const SUMMAND_CARRY_OVER: usize = 32;

fn next_summand_stamp() -> u64 {
    SUMMAND_STAMP.with(|stamp| {
        let next = stamp.get() + 1;
        stamp.set(next);
        next
    })
}

/// Lifetime counters of the liastar-level caches, summed over all threads.
static SUMMAND_HITS: AtomicU64 = AtomicU64::new(0);
/// Miss counter of the summand-simplification cache.
static SUMMAND_MISSES: AtomicU64 = AtomicU64::new(0);
/// Hit counter of the disjointness cache.
static DISJOINT_HITS: AtomicU64 = AtomicU64::new(0);
/// Miss counter of the disjointness cache.
static DISJOINT_MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of the two liastar-level SMT-result caches, accumulated
/// across every thread since process start (or the last
/// [`reset_cache_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Hits of the summand-simplification cache.
    pub summand_hits: u64,
    /// Misses of the summand-simplification cache.
    pub summand_misses: u64,
    /// Hits of the pairwise-disjointness cache.
    pub disjoint_hits: u64,
    /// Misses of the pairwise-disjointness cache.
    pub disjoint_misses: u64,
}

/// Snapshot of the global cache counters.
pub fn cache_counters() -> CacheCounters {
    CacheCounters {
        summand_hits: SUMMAND_HITS.load(Ordering::Relaxed),
        summand_misses: SUMMAND_MISSES.load(Ordering::Relaxed),
        disjoint_hits: DISJOINT_HITS.load(Ordering::Relaxed),
        disjoint_misses: DISJOINT_MISSES.load(Ordering::Relaxed),
    }
}

/// Resets the global cache counters (entries stay cached).
pub fn reset_cache_counters() {
    SUMMAND_HITS.store(0, Ordering::Relaxed);
    SUMMAND_MISSES.store(0, Ordering::Relaxed);
    DISJOINT_HITS.store(0, Ordering::Relaxed);
    DISJOINT_MISSES.store(0, Ordering::Relaxed);
}

/// Drops the thread's id-keyed caches when the arena epoch moved under them
/// (defense in depth — [`reset_thread_caches`] already clears both in sync).
fn sync_caches_to_epoch(store_epoch: u64) {
    CACHE_EPOCH.with(|epoch| {
        if epoch.get() != store_epoch {
            DISJOINT_CACHE.with(|cache| cache.borrow_mut().clear());
            SUMMAND_CACHE.with(|cache| cache.borrow_mut().clear());
            epoch.set(store_epoch);
        }
    });
}

/// Epoch-based eviction for everything the calling thread accumulates at
/// the decision layer: the hash-consed arena (via [`GStore::reset_epoch`]),
/// the id-keyed summand and disjointness caches, and the SMT formula cache.
/// (The prover's counterexample pool cache lives a layer up, in `graphqe`,
/// and is evicted alongside this by the batch workers' budget check.)
///
/// Long-running batch workers call this between pairs once the arena
/// outgrows its budget, so a service proving an unbounded stream of pairs
/// runs in bounded memory. Correctness is unaffected: every cache is a pure
/// memo, so the only cost of a reset is re-computing entries.
///
/// **Cross-epoch carry-over**: instead of dropping the summand-simplification
/// cache wholesale, the `SUMMAND_CARRY_OVER` most recently used entries are
/// externalized to `GExpr` trees *before* the arena resets and re-interned
/// (with fresh ids) into the new epoch. Hot summands — which tend to recur in
/// the very next pairs — therefore stay memoized across the reset, smoothing
/// the post-reset latency spike at the cost of interning a few dozen small
/// trees.
pub fn reset_thread_caches() {
    gexpr::arena::with_thread_store(|store| {
        // Select the hottest entries by recency stamp and externalize them
        // while their ids are still valid in the old epoch. If the arena
        // epoch moved underneath the caches (a caller reset the store
        // directly without going through this function), the cached ids are
        // stale and must not be externalized — carry nothing over.
        let cache_in_sync = CACHE_EPOCH.with(|epoch| epoch.get()) == store.epoch();
        let mut hottest: Vec<(ArenaNodeId, SummandEntry)> = if cache_in_sync {
            SUMMAND_CACHE.with(|cache| cache.borrow().iter().map(|(k, v)| (*k, *v)).collect())
        } else {
            Vec::new()
        };
        hottest.sort_by_key(|(_, entry)| std::cmp::Reverse(entry.stamp));
        hottest.truncate(SUMMAND_CARRY_OVER);
        let externalized: Vec<(GExpr, Option<GExpr>, usize)> = hottest
            .iter()
            .map(|(key, entry)| {
                (
                    store.extern_expr(*key),
                    entry.result.map(|id| store.extern_expr(id)),
                    entry.implied,
                )
            })
            .collect();

        store.reset_epoch();

        // Re-seed the fresh caches under the new epoch's ids.
        DISJOINT_CACHE.with(|cache| cache.borrow_mut().clear());
        SUMMAND_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.clear();
            // `externalized` is ordered most-recent-first; re-insert in
            // reverse so fresh stamps preserve the relative recency (the
            // hottest entry gets the newest stamp, not the oldest).
            for (key, result, implied) in externalized.into_iter().rev() {
                let key = store.intern_expr(&key);
                let result = result.map(|expr| store.intern_expr(&expr));
                cache.insert(key, SummandEntry { result, implied, stamp: next_summand_stamp() });
            }
        });
    });
    CACHE_EPOCH.with(|epoch| epoch.set(gexpr::arena::thread_store_epoch()));
    smt::clear_formula_cache();
}

// ---------------------------------------------------------------------------
// The id-native decision pipeline
// ---------------------------------------------------------------------------

/// Recursive decision on interned ids: squashes are peeled in lock-step, then
/// the summand lists are compared.
fn decide(
    store: &mut GStore,
    left: ArenaNodeId,
    right: ArenaNodeId,
    stats: &mut DecisionStats,
) -> Result<(Decision, DecisionStats), limits::Trip> {
    limits::checkpoint(limits::Stage::Decide)?;
    if let (ANode::Squash(a), ANode::Squash(b)) = (store.node_of(left), store.node_of(right)) {
        // ‖A‖ = ‖B‖ is implied by A = B (sufficient condition).
        let (a, b) = (*a, *b);
        if a == b {
            return Ok((Decision::Proved, stats.clone()));
        }
        return decide(store, a, b, stats);
    }

    let left_summands = simplify_summands(store, to_summands(store, left), stats)?;
    let right_summands = simplify_summands(store, to_summands(store, right), stats)?;
    stats.summands = (left_summands.len(), right_summands.len());

    // Structural bijection between the summand multisets, on ids with the
    // undo-trail matcher (same-node summand pairs match in O(1)).
    if iso::ids::unify_multiset(store, &left_summands, &right_summands, &mut VarMapping::new()) {
        return Ok((Decision::Proved, stats.clone()));
    }

    // LIA* arithmetic check: abstract each isomorphism class of summands by a
    // non-negative integer variable and ask the SMT solver whether the two
    // sides can differ. (With per-class counts this is decidable directly;
    // the SMT formulation mirrors the paper's pipeline and exercises the LIA
    // solver.)
    stats.used_smt_arithmetic = true;
    let mut classes: Vec<ArenaNodeId> = Vec::new();
    let mut left_counts: Vec<i64> = Vec::new();
    let mut right_counts: Vec<i64> = Vec::new();
    for summand in &left_summands {
        // The iso matching behind `class_index` is the potentially expensive
        // step of the counting loop; checkpoint once per summand.
        limits::checkpoint(limits::Stage::Decide)?;
        let class = class_index(store, &mut classes, &mut left_counts, &mut right_counts, *summand);
        left_counts[class] += 1;
    }
    for summand in &right_summands {
        limits::checkpoint(limits::Stage::Decide)?;
        let class = class_index(store, &mut classes, &mut left_counts, &mut right_counts, *summand);
        right_counts[class] += 1;
    }

    // g1 = Σ count_l[i]·v_i, g2 = Σ count_r[i]·v_i with v_i ≥ 1 (a summand's
    // value is unknown but identical across sides). The queries can differ
    // only if some class count differs, so `g1 ≠ g2` must be unsatisfiable.
    // The solver memoizes through the formula cache, so the identical class
    // structure produced by permutation retries is a hash lookup.
    let mut solver = Solver::cached();
    let mut left_sum = Vec::new();
    let mut right_sum = Vec::new();
    for (index, _) in classes.iter().enumerate() {
        let v = Term::int_var(format!("class{index}"));
        solver.assert(Term::ge(v.clone(), Term::int(1)));
        left_sum.push(Term::MulConst(left_counts[index], Box::new(v.clone())));
        right_sum.push(Term::MulConst(right_counts[index], Box::new(v)));
    }
    let lhs = if left_sum.is_empty() { Term::int(0) } else { Term::add(left_sum) };
    let rhs = if right_sum.is_empty() { Term::int(0) } else { Term::add(right_sum) };
    solver.assert(Term::neq(lhs, rhs));
    match solver.check() {
        SmtResult::Unsat => Ok((Decision::Proved, stats.clone())),
        _ => Ok((Decision::NotProved, stats.clone())),
    }
}

/// The isomorphism class of `summand` among `classes` (appending a new class
/// if none matches). Same-node comparisons short-circuit in the matcher.
fn class_index(
    store: &mut GStore,
    classes: &mut Vec<ArenaNodeId>,
    left_counts: &mut Vec<i64>,
    right_counts: &mut Vec<i64>,
    summand: ArenaNodeId,
) -> usize {
    for (index, representative) in classes.iter().enumerate() {
        if iso::ids::isomorphic(store, *representative, summand) {
            return index;
        }
    }
    classes.push(summand);
    left_counts.push(0);
    right_counts.push(0);
    classes.len() - 1
}

/// `true` iff the product `a × b` is unsatisfiable, memoized under the pair
/// of hash-consed ids: the quadratic sweep of [`split_disjoint_squashes`]
/// re-pays the SMT call only for pairs of alternatives never seen before on
/// this thread.
fn disjoint(store: &mut GStore, a: ArenaNodeId, b: ArenaNodeId) -> bool {
    if let Some(hit) = DISJOINT_CACHE.with(|cache| cache.borrow().get(&(a, b)).copied()) {
        DISJOINT_HITS.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    DISJOINT_MISSES.fetch_add(1, Ordering::Relaxed);
    let product = Term::and(vec![encode_factor_id(store, a), encode_factor_id(store, b)]);
    let verdict = smt::check_formula_cached(product);
    let result = verdict.is_unsat();
    // Disjointness is symmetric; memoize both orientations so alternatives
    // that normalize in a different order on the other side still hit.
    // Cache hygiene: an `Unknown` verdict (budget trip, cancellation, or an
    // injected fault) conservatively reads as "not disjoint" for this call,
    // but memoizing it would poison later, un-tripped proofs.
    if !matches!(verdict, SmtResult::Unknown) && !limits::cancelled() {
        DISJOINT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.insert((a, b), result);
            cache.insert((b, a), result);
        });
    }
    result
}

/// Rewrites `‖a + b + ...‖` into `a + b + ...` when every alternative is
/// 0/1-valued and the alternatives are pairwise disjoint (their pairwise
/// products are unsatisfiable). This is the LIA\*-style reasoning that makes
/// `WHERE p OR q` over disjoint ranges equal to the `UNION ALL` of the two
/// branches (the worked example of §IV-C).
fn split_disjoint_squashes(store: &mut GStore, expr: ArenaNodeId) -> ArenaNodeId {
    match store.node_of(expr).clone() {
        ANode::Squash(inner) => {
            let inner = split_disjoint_squashes(store, inner);
            if let ANode::Add(items) = store.node_of(inner).clone() {
                let all_unit = items.iter().all(|i| store.is_zero_one(*i));
                let pairwise_disjoint = all_unit
                    && items
                        .iter()
                        .enumerate()
                        .all(|(i, a)| items.iter().skip(i + 1).all(|b| disjoint(store, *a, *b)));
                if pairwise_disjoint {
                    return inner;
                }
            }
            store.mk_squash(inner)
        }
        ANode::Mul(items) => {
            let items = items.iter().map(|i| split_disjoint_squashes(store, *i)).collect();
            store.mk_mul(items)
        }
        ANode::Add(items) => {
            let items = items.iter().map(|i| split_disjoint_squashes(store, *i)).collect();
            store.mk_add(items)
        }
        ANode::Not(inner) => {
            let inner = split_disjoint_squashes(store, inner);
            store.mk_not(inner)
        }
        ANode::Sum(vars, body) => {
            let body = split_disjoint_squashes(store, body);
            store.mk_sum(vars.to_vec(), body)
        }
        _ => expr,
    }
}

/// Splits a normalized expression into its top-level summand ids.
fn to_summands(store: &GStore, expr: ArenaNodeId) -> Vec<ArenaNodeId> {
    match store.node_of(expr) {
        ANode::Add(items) => items.to_vec(),
        ANode::Zero => Vec::new(),
        _ => vec![expr],
    }
}

/// SMT-backed simplification of summands: zero pruning and implied-atom
/// elimination, entirely on interned ids, with a cooperative limit
/// checkpoint per summand.
fn simplify_summands(
    store: &mut GStore,
    summands: Vec<ArenaNodeId>,
    stats: &mut DecisionStats,
) -> Result<Vec<ArenaNodeId>, limits::Trip> {
    let mut result = Vec::new();
    for summand in summands {
        limits::checkpoint(limits::Stage::Decide)?;
        match simplify_summand(store, summand, stats) {
            Some(simplified) => result.push(simplified),
            None => stats.pruned_zero += 1,
        }
    }
    Ok(result)
}

/// Memoized summand simplification: the result is cached under the summand's
/// hash-consed id — with **no extern/intern round trip** — so the SMT solver
/// runs once per distinct summand per thread: across permutation retries of
/// the same pair and across structurally overlapping pairs of a batch. This
/// is the single hottest SMT call site of the prover.
fn simplify_summand(
    store: &mut GStore,
    summand: ArenaNodeId,
    stats: &mut DecisionStats,
) -> Option<ArenaNodeId> {
    let hit = SUMMAND_CACHE.with(|cache| {
        cache.borrow_mut().get_mut(&summand).map(|entry| {
            entry.stamp = next_summand_stamp();
            (entry.result, entry.implied)
        })
    });
    if let Some((result, implied)) = hit {
        SUMMAND_HITS.fetch_add(1, Ordering::Relaxed);
        stats.pruned_implied += implied;
        return result;
    }
    SUMMAND_MISSES.fetch_add(1, Ordering::Relaxed);

    // Decompose Σ_{vars} Π factors (both layers optional).
    let (vars, body) = match store.node_of(summand).clone() {
        ANode::Sum(vars, body) => (vars.to_vec(), body),
        _ => (Vec::new(), summand),
    };
    let mut factors = match store.node_of(body).clone() {
        ANode::Mul(items) => items.to_vec(),
        _ => vec![body],
    };

    // Cache hygiene: an `Unknown` SMT verdict on this path (budget trip,
    // cancellation, injected fault) degrades pruning conservatively — keep
    // the factor, keep the summand — which is sound but must not be
    // memoized, or later un-tripped proofs would inherit the weaker result.
    let mut degraded = false;

    // Zero pruning: unsatisfiable products contribute nothing.
    let zero_check = smt::check_formula_cached(encode_product_ids(store, &factors));
    degraded |= matches!(zero_check, SmtResult::Unknown);
    if zero_check.is_unsat() {
        if !limits::cancelled() {
            SUMMAND_CACHE.with(|cache| {
                cache.borrow_mut().insert(
                    summand,
                    SummandEntry { result: None, implied: 0, stamp: next_summand_stamp() },
                )
            });
        }
        return None;
    }

    // Implied-atom pruning: drop an atomic factor when the remaining factors
    // already force it to 1.
    let mut implied = 0;
    let mut index = 0;
    while index < factors.len() {
        if matches!(store.node_of(factors[index]), ANode::Atom(_)) && factors.len() > 1 {
            let mut others = factors.clone();
            let candidate = others.remove(index);
            let implication = Term::implies(
                encode_product_ids(store, &others),
                encode_factor_id(store, candidate),
            );
            let validity = smt::check_formula_cached(Term::not(implication));
            degraded |= matches!(validity, SmtResult::Unknown);
            if validity.is_unsat() {
                factors.remove(index);
                implied += 1;
                continue;
            }
        }
        index += 1;
    }
    stats.pruned_implied += implied;

    let body = store.mk_mul(factors);
    let result = store.mk_sum(vars, body);
    if !degraded && !limits::cancelled() {
        SUMMAND_CACHE.with(|cache| {
            cache.borrow_mut().insert(
                summand,
                SummandEntry { result: Some(result), implied, stamp: next_summand_stamp() },
            )
        });
    }
    Some(result)
}

// ---------------------------------------------------------------------------
// The paper-faithful tree pipeline (benchmark baseline + differential oracle)
// ---------------------------------------------------------------------------

/// The pre-refactor reference implementation of the decision procedure,
/// operating on `GExpr` trees with the reference normalizer and the cloning
/// iso matcher, and **no caches** (every SMT query is re-solved). Kept
/// verbatim as the benchmark baseline and the differential-testing oracle for
/// the id-native pipeline.
mod tree {
    use super::*;

    pub fn check_equivalence(g1: &GExpr, g2: &GExpr) -> (Decision, DecisionStats) {
        let mut stats = DecisionStats::default();
        let left = normalize_tree(&split_disjoint_squashes(g1));
        let right = normalize_tree(&split_disjoint_squashes(g2));
        if left == right {
            return (Decision::Proved, stats);
        }
        decide(&left, &right, &mut stats)
    }

    fn decide(left: &GExpr, right: &GExpr, stats: &mut DecisionStats) -> (Decision, DecisionStats) {
        if let (GExpr::Squash(a), GExpr::Squash(b)) = (left, right) {
            return decide(a, b, stats);
        }

        let left_summands = simplify_summands(to_summands(left), stats);
        let right_summands = simplify_summands(to_summands(right), stats);
        stats.summands = (left_summands.len(), right_summands.len());

        let bijective =
            iso::cloning::unify_multiset(&left_summands, &right_summands, &VarMapping::new())
                .is_some();
        if bijective {
            return (Decision::Proved, stats.clone());
        }

        stats.used_smt_arithmetic = true;
        let mut classes: Vec<GExpr> = Vec::new();
        let mut left_counts: Vec<i64> = Vec::new();
        let mut right_counts: Vec<i64> = Vec::new();
        for summand in &left_summands {
            let class = class_index(&mut classes, &mut left_counts, &mut right_counts, summand);
            left_counts[class] += 1;
        }
        for summand in &right_summands {
            let class = class_index(&mut classes, &mut left_counts, &mut right_counts, summand);
            right_counts[class] += 1;
        }

        let mut solver = Solver::new();
        let mut left_sum = Vec::new();
        let mut right_sum = Vec::new();
        for (index, _) in classes.iter().enumerate() {
            let v = Term::int_var(format!("class{index}"));
            solver.assert(Term::ge(v.clone(), Term::int(1)));
            left_sum.push(Term::MulConst(left_counts[index], Box::new(v.clone())));
            right_sum.push(Term::MulConst(right_counts[index], Box::new(v)));
        }
        let lhs = if left_sum.is_empty() { Term::int(0) } else { Term::add(left_sum) };
        let rhs = if right_sum.is_empty() { Term::int(0) } else { Term::add(right_sum) };
        solver.assert(Term::neq(lhs, rhs));
        match solver.check() {
            SmtResult::Unsat => (Decision::Proved, stats.clone()),
            _ => (Decision::NotProved, stats.clone()),
        }
    }

    fn class_index(
        classes: &mut Vec<GExpr>,
        left_counts: &mut Vec<i64>,
        right_counts: &mut Vec<i64>,
        summand: &GExpr,
    ) -> usize {
        for (index, representative) in classes.iter().enumerate() {
            if iso::cloning::unify_expr(representative, summand, &VarMapping::new()).is_some() {
                return index;
            }
        }
        classes.push(summand.clone());
        left_counts.push(0);
        right_counts.push(0);
        classes.len() - 1
    }

    fn disjoint(a: &GExpr, b: &GExpr) -> bool {
        let product = Term::and(vec![encode_factor(a), encode_factor(b)]);
        smt::check_formula(product).is_unsat()
    }

    fn split_disjoint_squashes(expr: &GExpr) -> GExpr {
        match expr {
            GExpr::Squash(inner) => {
                let inner = split_disjoint_squashes(inner);
                if let GExpr::Add(items) = &inner {
                    let all_unit = items.iter().all(gexpr::is_zero_one);
                    let pairwise_disjoint = all_unit
                        && items
                            .iter()
                            .enumerate()
                            .all(|(i, a)| items.iter().skip(i + 1).all(|b| disjoint(a, b)));
                    if pairwise_disjoint {
                        return inner;
                    }
                }
                GExpr::squash(inner)
            }
            GExpr::Mul(items) => GExpr::mul(items.iter().map(split_disjoint_squashes).collect()),
            GExpr::Add(items) => GExpr::add(items.iter().map(split_disjoint_squashes).collect()),
            GExpr::Not(inner) => GExpr::not(split_disjoint_squashes(inner)),
            GExpr::Sum { vars, body } => GExpr::sum(vars.clone(), split_disjoint_squashes(body)),
            other => other.clone(),
        }
    }

    fn to_summands(expr: &GExpr) -> Vec<GExpr> {
        match expr {
            GExpr::Add(items) => items.clone(),
            GExpr::Zero => Vec::new(),
            other => vec![other.clone()],
        }
    }

    fn simplify_summands(summands: Vec<GExpr>, stats: &mut DecisionStats) -> Vec<GExpr> {
        let mut result = Vec::new();
        for summand in summands {
            match simplify_summand(&summand, stats) {
                Some(simplified) => result.push(simplified),
                None => stats.pruned_zero += 1,
            }
        }
        result
    }

    fn simplify_summand(summand: &GExpr, stats: &mut DecisionStats) -> Option<GExpr> {
        let (vars, body) = match summand {
            GExpr::Sum { vars, body } => (vars.clone(), (**body).clone()),
            other => (Vec::new(), other.clone()),
        };
        let mut factors = match body {
            GExpr::Mul(items) => items,
            other => vec![other],
        };

        if smt::check_formula(encode_product(&factors)).is_unsat() {
            return None;
        }

        let mut index = 0;
        while index < factors.len() {
            if matches!(factors[index], GExpr::Atom(_)) && factors.len() > 1 {
                let mut others = factors.clone();
                let candidate = others.remove(index);
                let implication = Term::implies(encode_product(&others), encode_factor(&candidate));
                if smt::is_valid(implication) {
                    factors.remove(index);
                    stats.pruned_implied += 1;
                    continue;
                }
            }
            index += 1;
        }

        Some(GExpr::sum(vars, GExpr::mul(factors)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;
    use gexpr::build_query;

    fn gexpr_of(query: &str) -> GExpr {
        build_query(&parse_query(query).unwrap()).unwrap().expr
    }

    #[test]
    fn int_column_hints_add_deductive_power() {
        use gexpr::{CmpOp, GAtom, GTerm, VarId};
        // One summand: Σ_n [col0 = n.age] × [n.age ≤ 0] × [col0 ≥ 1]. The
        // equality is between two non-arithmetic term shapes (the bound
        // variable occurs only under the property accessor, so the Σ-unnest
        // rule cannot substitute it away). Whether the summand prunes to 0
        // depends on the column's sort: with an untyped (Value) column,
        // `col0 = n.age` has no arithmetic side, so the LIA theory never
        // sees the equality and the conjunction stays satisfiable; with an
        // integer-typed column the equality links the chain `n.age ≤ 0 < 1 ≤
        // col0 = n.age` into a LIA contradiction.
        let summand = |col: GTerm| {
            let age = GTerm::prop(GTerm::Var(VarId(0)), "age");
            GExpr::sum(
                vec![VarId(0)],
                GExpr::mul(vec![
                    GExpr::eq(col.clone(), age.clone()),
                    GExpr::Atom(GAtom::Cmp(CmpOp::Le, age, GTerm::int(0))),
                    GExpr::Atom(GAtom::Cmp(CmpOp::Ge, col, GTerm::int(1))),
                ]),
            )
        };
        let untyped = summand(GTerm::OutCol(0));
        let typed = summand(GTerm::IntCol(0));
        assert!(
            !check_equivalence(&untyped, &GExpr::Zero).is_proved(),
            "without typing facts the summand must not be pruned"
        );
        assert!(
            check_equivalence(&typed, &GExpr::Zero).is_proved(),
            "the integer typing fact must prune the summand to zero"
        );
        // The tree (paper-faithful) pipeline agrees on both.
        let opts = DecideOptions { tree_normalizer: true };
        assert!(!check_equivalence_with_opts(&untyped, &GExpr::Zero, opts).0.is_proved());
        assert!(check_equivalence_with_opts(&typed, &GExpr::Zero, opts).0.is_proved());
    }

    fn equivalent(q1: &str, q2: &str) -> bool {
        let by_id = check_equivalence(&gexpr_of(q1), &gexpr_of(q2)).is_proved();
        // Every test case doubles as a differential check against the
        // paper-faithful tree oracle.
        let by_tree = check_equivalence_with_opts(
            &gexpr_of(q1),
            &gexpr_of(q2),
            DecideOptions { tree_normalizer: true },
        )
        .0
        .is_proved();
        assert_eq!(by_id, by_tree, "pipelines disagree on {q1} vs {q2}");
        by_id
    }

    #[test]
    fn identical_queries_are_equivalent() {
        assert!(equivalent(
            "MATCH (n:Person) WHERE n.age = 59 RETURN n.name",
            "MATCH (n:Person) WHERE n.age = 59 RETURN n.name"
        ));
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        assert!(equivalent(
            "MATCH (person)-[r:READ]->(book) RETURN person.name",
            "MATCH (x)-[y:READ]->(z) RETURN x.name"
        ));
    }

    #[test]
    fn reversed_direction_is_equivalent() {
        assert!(equivalent("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"));
    }

    #[test]
    fn commuted_predicates_are_equivalent() {
        assert!(equivalent(
            "MATCH (n) WHERE n.a = 1 AND n.b = 2 RETURN n",
            "MATCH (n) WHERE n.b = 2 AND n.a = 1 RETURN n"
        ));
    }

    #[test]
    fn the_papers_or_distribution_example() {
        // §IV-C: a single pattern with (p ∨ q) over disjoint ranges equals the
        // UNION ALL of the two branches.
        assert!(equivalent(
            "MATCH (n) WHERE n.age < 10 OR n.age > 20 RETURN n.name",
            "MATCH (n) WHERE n.age < 10 RETURN n.name \
             UNION ALL MATCH (n) WHERE n.age > 20 RETURN n.name"
        ));
    }

    #[test]
    fn split_pattern_is_equivalent() {
        assert!(equivalent(
            "MATCH (a)-[r1]->(b)-[r2]->(c) WHERE r1 <> r2 RETURN a",
            "MATCH (a)-[r1]->(b) MATCH (b)-[r2]->(c) WHERE r1 <> r2 RETURN a"
        ));
    }

    #[test]
    fn different_labels_are_not_proved() {
        assert!(!equivalent("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n"));
    }

    #[test]
    fn different_directions_with_asymmetric_returns_are_not_proved() {
        assert!(!equivalent("MATCH (a)-[r]->(b) RETURN b", "MATCH (a)-[r]->(b) RETURN a"));
    }

    #[test]
    fn union_all_vs_union_is_not_proved() {
        assert!(!equivalent(
            "MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b",
            "MATCH (a) RETURN a UNION MATCH (b) RETURN b"
        ));
    }

    #[test]
    fn contradictory_predicates_make_queries_empty_and_equivalent() {
        // Both queries always return the empty bag.
        assert!(equivalent(
            "MATCH (n) WHERE n.age = 1 AND n.age = 2 RETURN n",
            "MATCH (m:Person) WHERE m.x < 1 AND m.x > 1 RETURN m"
        ));
    }

    #[test]
    fn implied_predicates_are_pruned() {
        assert!(equivalent(
            "MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n",
            "MATCH (n) WHERE n.age > 5 RETURN n"
        ));
    }

    #[test]
    fn distinct_vs_plain_is_not_proved() {
        assert!(!equivalent("MATCH (n) RETURN DISTINCT n.name", "MATCH (n) RETURN n.name"));
    }

    #[test]
    fn limit_values_must_agree() {
        assert!(equivalent(
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 5",
            "MATCH (m) RETURN m ORDER BY m.age LIMIT 5"
        ));
        assert!(!equivalent(
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 5",
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 6"
        ));
    }

    #[test]
    fn aggregates_with_same_usage_are_equivalent() {
        assert!(equivalent(
            "MATCH (n:Person) RETURN SUM(n.age)",
            "MATCH (m:Person) RETURN SUM(m.age)"
        ));
        assert!(!equivalent(
            "MATCH (n:Person) RETURN SUM(n.age)",
            "MATCH (n:Person) RETURN SUM(n.salary)"
        ));
    }

    #[test]
    fn with_renaming_is_equivalent_to_direct_projection() {
        assert!(equivalent("MATCH (x) WITH x.name AS name RETURN name", "MATCH (x) RETURN x.name"));
    }

    #[test]
    fn stats_report_pruning() {
        let g1 = gexpr_of("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n");
        let g2 = gexpr_of("MATCH (n) WHERE n.age > 5 RETURN n");
        let (decision, stats) = check_equivalence_with_stats(&g1, &g2);
        assert!(decision.is_proved());
        assert!(stats.pruned_implied >= 1);
    }

    #[test]
    fn decide_survives_a_thread_cache_reset() {
        let g1 = gexpr_of("MATCH (a)-[r]->(b) RETURN a");
        let g2 = gexpr_of("MATCH (b)<-[r]-(a) RETURN a");
        assert!(check_equivalence(&g1, &g2).is_proved());
        let epoch_before = gexpr::arena::thread_store_epoch();
        let nodes_before = gexpr::arena::thread_store_node_count();
        reset_thread_caches();
        assert_eq!(gexpr::arena::thread_store_epoch(), epoch_before + 1);
        // The arena shrinks to just the re-interned carry-over entries
        // (bounded by the constant, far below a working arena).
        assert!(
            gexpr::arena::thread_store_node_count() < nodes_before,
            "reset must shrink the arena"
        );
        // Same decision after the reset: the caches are pure memos.
        assert!(check_equivalence(&g1, &g2).is_proved());
        let g3 = gexpr_of("MATCH (n:Person) RETURN n");
        let g4 = gexpr_of("MATCH (n:Book) RETURN n");
        assert!(!check_equivalence(&g3, &g4).is_proved());
    }

    #[test]
    fn summand_cache_replays_implied_counts_across_epochs() {
        reset_thread_caches();
        let g1 = gexpr_of("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n");
        let g2 = gexpr_of("MATCH (n) WHERE n.age > 5 RETURN n");
        let (_, cold) = check_equivalence_with_stats(&g1, &g2);
        // Second run hits the summand cache; the implied-atom count must be
        // replayed identically.
        let (_, warm) = check_equivalence_with_stats(&g1, &g2);
        assert_eq!(cold.pruned_implied, warm.pruned_implied);
        assert_eq!(cold.pruned_zero, warm.pruned_zero);
    }

    #[test]
    fn epoch_reset_carries_hot_summand_entries() {
        let g1 = gexpr_of("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n");
        let g2 = gexpr_of("MATCH (n) WHERE n.age > 5 RETURN n");
        let (decision, cold) = check_equivalence_with_stats(&g1, &g2);
        assert!(decision.is_proved());
        reset_thread_caches();
        // The pair's summands were the most recently used entries, so they
        // survived the reset (as re-interned ids of the new epoch).
        let carried = SUMMAND_CACHE.with(|cache| cache.borrow().len());
        assert!(carried > 0, "reset must carry hot entries over");
        // Re-deciding probes only carried entries: a summand miss would
        // insert a new cache entry, so an unchanged entry count proves every
        // lookup hit. (Thread-local observation — the global hit/miss
        // counters are shared with concurrently running tests.)
        let (decision, warm) = check_equivalence_with_stats(&g1, &g2);
        assert!(decision.is_proved());
        let after = SUMMAND_CACHE.with(|cache| cache.borrow().len());
        assert_eq!(after, carried, "carry-over must prevent summand re-simplification");
        // The replayed stats are bit-identical to the cold run's.
        assert_eq!(cold.pruned_implied, warm.pruned_implied);
        assert_eq!(cold.pruned_zero, warm.pruned_zero);
    }

    #[test]
    fn smt_budget_trip_unwinds_without_polluting_the_summand_cache() {
        use std::sync::Arc;
        let g1 = gexpr_of("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n");
        let g2 = gexpr_of("MATCH (n) WHERE n.age > 5 RETURN n");
        // A one-step SMT budget trips inside the first summand
        // simplification; the decide-layer checkpoint surfaces the recorded
        // trip (first-trip-wins: the stage is Smt, not Decide).
        let token = Arc::new(limits::RunToken::new(None, 1, 0));
        let tripped = limits::with_token(token, || {
            try_check_equivalence_with_opts(&g1, &g2, DecideOptions::default())
        });
        assert!(
            matches!(
                tripped,
                Err(limits::Trip::BudgetExhausted { stage: limits::Stage::Smt, budget: 1 })
            ),
            "{tripped:?}"
        );
        // Cache hygiene: nothing simplified on the tripped path was memoized
        // (this test's thread started with a cold cache).
        assert_eq!(SUMMAND_CACHE.with(|cache| cache.borrow().len()), 0);
        // A clean re-prove from the same thread proves the pair and
        // repopulates the cache — no degraded state was retained.
        let (decision, stats) = check_equivalence_with_stats(&g1, &g2);
        assert!(decision.is_proved());
        assert!(stats.pruned_implied >= 1, "{stats:?}");
        assert!(SUMMAND_CACHE.with(|cache| cache.borrow().len()) > 0);
    }
}
