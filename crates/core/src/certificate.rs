//! Proof-certificate emission.
//!
//! Every EQUIVALENT or NOT_EQUIVALENT verdict can be accompanied by a
//! machine-checkable [`Certificate`] (schema owned by the dependency-free
//! `graphqe-checker` crate). Emission is strictly off the hot path: the
//! default prove pipeline never records anything, and a certificate is
//! produced only on request by re-deriving the evidence —
//!
//! - the stage-② derivation via
//!   [`cypher_normalizer::normalize_query_with_derivation`] (rule id +
//!   position per step, replayable by the checker's own rule mirror);
//! - the stage-④ witness via [`liastar::witness::prove_with_witness`]
//!   (summand split, isomorphism pairing or class counts, per-summand SMT
//!   obligations);
//! - the NOT_EQUIVALENT bags via the reference scan evaluator
//!   ([`property_graph::eval::evaluate_query_scan`]) on the verdict's
//!   counterexample graph.
//!
//! Emission runs under [`limits::without_token`]: a deadline configured for
//! the *proof* must not trip the re-derivation, which is bounded by the same
//! work the proof already did.

use std::sync::atomic::{AtomicU64, Ordering};

use cypher_parser::ast::Query;
use cypher_parser::pretty::query_to_string;
use gexpr::{build_query, GAggKind, GAtom, GConst, GExpr, GTerm};
use graphqe_checker::cert::{
    CertVerdict, DerivationStep, Evidence, GraphCert, KeptSummand, Matching, Proof, QueryCert,
    SegmentWitness, SideSummands, SigColumn, SummandsProof, CERTIFICATE_VERSION,
};
use graphqe_checker::graph as checker_graph;
use graphqe_checker::gx::{AggKind, CmpOp, Gx, GxAtom, GxConst, GxTerm, VarId};
use graphqe_checker::value::{NodeId, RelId, Value};
use graphqe_checker::Certificate;
use liastar::witness::{self, MatchingRecord, ProofRecord, SegmentRecord, SideRecord};
use property_graph::PropertyGraph;

use crate::verdict::{FailureCategory, Verdict};
use crate::{divide, GraphQE};

// ---------------------------------------------------------------------------
// Process-wide emission counters
// ---------------------------------------------------------------------------

static CERT_EMITTED: AtomicU64 = AtomicU64::new(0);
static CERT_CHECK_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(emitted, check_failures)` certificate counters.
///
/// `emitted` counts successfully produced certificates;
/// `check_failures` counts pairs downgraded to
/// [`FailureCategory::CertificateInvalid`] because emission failed or the
/// independent checker rejected the artifact while checking was requested.
pub fn certificate_counters() -> (u64, u64) {
    (CERT_EMITTED.load(Ordering::Relaxed), CERT_CHECK_FAILURES.load(Ordering::Relaxed))
}

impl GraphQE {
    /// Emits the certificate for a definite `verdict` on `(q1, q2)`.
    ///
    /// The evidence is re-derived from scratch (see the module docs), so this
    /// works for verdicts produced by any prove path — including warm
    /// cached-substrate proves, whose shared [`crate::NormalizedStages`]
    /// entries carry no derivations. Errors are descriptive strings; an
    /// `Unknown` verdict has no certificate by definition.
    pub fn certificate_for(
        &self,
        q1: &str,
        q2: &str,
        verdict: &Verdict,
    ) -> Result<Certificate, String> {
        let cert = limits::without_token(|| self.certificate_for_inner(q1, q2, verdict))?;
        CERT_EMITTED.fetch_add(1, Ordering::Relaxed);
        Ok(cert)
    }

    /// [`GraphQE::prove`] plus certificate emission, and (with `check`) an
    /// independent validation of the emitted artifact.
    ///
    /// `Unknown` verdicts pass through with no certificate. For a definite
    /// verdict whose certificate cannot be emitted, or is emitted but fails
    /// the independent checker, the pair is downgraded to
    /// `Unknown(CertificateInvalid)` when `check` is requested — a verdict
    /// whose evidence does not validate is not a verdict this API stands
    /// behind. Without `check`, emission failures surface as a missing
    /// certificate and the verdict stands.
    pub fn prove_certified(
        &self,
        q1: &str,
        q2: &str,
        check: bool,
    ) -> (Verdict, Option<Certificate>) {
        let verdict = self.prove(q1, q2);
        self.certify_verdict(q1, q2, verdict, check)
    }

    /// The certification half of [`GraphQE::prove_certified`], for callers
    /// that already hold a verdict (batch frontends certify after the batch).
    pub fn certify_verdict(
        &self,
        q1: &str,
        q2: &str,
        verdict: Verdict,
        check: bool,
    ) -> (Verdict, Option<Certificate>) {
        if verdict.is_unknown() {
            return (verdict, None);
        }
        match self.certificate_for(q1, q2, &verdict) {
            Ok(cert) => {
                if check {
                    if let Err(error) = graphqe_checker::check_certificate(&cert) {
                        CERT_CHECK_FAILURES.fetch_add(1, Ordering::Relaxed);
                        return (
                            Verdict::Unknown {
                                category: FailureCategory::CertificateInvalid,
                                reason: format!("certificate failed validation: {error}"),
                            },
                            Some(cert),
                        );
                    }
                }
                (verdict, Some(cert))
            }
            Err(reason) => {
                if check {
                    CERT_CHECK_FAILURES.fetch_add(1, Ordering::Relaxed);
                    (
                        Verdict::Unknown {
                            category: FailureCategory::CertificateInvalid,
                            reason: format!("certificate emission failed: {reason}"),
                        },
                        None,
                    )
                } else {
                    (verdict, None)
                }
            }
        }
    }

    fn certificate_for_inner(
        &self,
        q1: &str,
        q2: &str,
        verdict: &Verdict,
    ) -> Result<Certificate, String> {
        let parsed1 = self.parse_checked(q1).map_err(|e| format!("left query: {e}"))?;
        let parsed2 = self.parse_checked(q2).map_err(|e| format!("right query: {e}"))?;
        // The checker replays the full Table II fixpoint regardless of the
        // prover's configuration, so the derivation is always recorded — an
        // ablation prover (normalize off) still emits checkable artifacts.
        let (left, nq1) = query_cert(&parsed1);
        let (right, nq2) = query_cert(&parsed2);
        let (cert_verdict, evidence) = match verdict {
            Verdict::Equivalent(_) => {
                (CertVerdict::Equivalent, self.equivalence_evidence(&nq1, &nq2)?)
            }
            Verdict::NotEquivalent(example) => (
                CertVerdict::NotEquivalent,
                counterexample_evidence(&parsed1, &parsed2, &example.graph, example.pool_index)?,
            ),
            Verdict::Unknown { .. } => {
                return Err("an unknown verdict carries no certificate".to_string())
            }
        };
        Ok(Certificate {
            version: CERTIFICATE_VERSION,
            verdict: cert_verdict,
            left,
            right,
            evidence,
        })
    }

    /// Re-derives the EQUIVALENT evidence on the normalized pair, mirroring
    /// the control flow of the prove pipeline (divide-and-conquer split,
    /// arity fast path, return-element permutation loop) with the
    /// witness-emitting reference decision in place of the arena decision.
    fn equivalence_evidence(&self, nq1: &Query, nq2: &Query) -> Result<Evidence, String> {
        if divide::needs_divide_and_conquer(nq1) || divide::needs_divide_and_conquer(nq2) {
            let segments1 = divide::split_into_segments(nq1)
                .ok_or("cannot split the first query into segments")?;
            let segments2 = divide::split_into_segments(nq2)
                .ok_or("cannot split the second query into segments")?;
            if segments1.len() != segments2.len() {
                return Err(format!(
                    "the queries split into {} and {} segments",
                    segments1.len(),
                    segments2.len()
                ));
            }
            let mut witnesses = Vec::new();
            let mut columns = 0;
            for (a, b) in segments1.iter().zip(segments2.iter()) {
                let (witness, arity) = self.segment_witness(a, b)?;
                columns = arity;
                witnesses.push(witness);
            }
            // Per-segment permutations are folded into each segment's right
            // G-expression (built from the permuted fragment), which the
            // checker takes as a stage-③ input; the top-level permutation is
            // therefore the identity on the final RETURN arity.
            return Ok(Evidence::Equivalence {
                column_permutation: (0..columns).collect(),
                permuted_right: None,
                segments: witnesses,
            });
        }
        let built1 = build_query(nq1).map_err(|e| e.to_string())?;
        let built2 = build_query(nq2).map_err(|e| e.to_string())?;
        if built1.columns != built2.columns {
            if crate::both_always_empty(&built1, &built2, true) {
                return Ok(Evidence::Equivalence {
                    column_permutation: (0..built1.columns).collect(),
                    permuted_right: None,
                    segments: vec![SegmentWitness {
                        left: Gx::Zero,
                        right: Gx::Zero,
                        proof: Proof::Identical,
                    }],
                });
            }
            return Err(format!(
                "the queries return {} and {} columns and are not both empty",
                built1.columns, built2.columns
            ));
        }
        for permutation in crate::column_permutations(&built1.column_kinds, &built2.column_kinds)
            .into_iter()
            .take(self.max_column_permutations)
        {
            let identity = crate::is_identity(&permutation);
            let candidate = if identity {
                built2.clone()
            } else {
                match build_query(&crate::permute_returns(nq2, &permutation)) {
                    Ok(output) => output,
                    Err(_) => continue,
                }
            };
            if let Some(record) = witness::prove_with_witness(&built1.expr, &candidate.expr) {
                let permuted_right = if identity {
                    None
                } else {
                    Some(query_to_string(&crate::permute_returns(nq2, &permutation)))
                };
                return Ok(Evidence::Equivalence {
                    column_permutation: permutation,
                    permuted_right,
                    segments: vec![segment_of(&record)],
                });
            }
        }
        Err("could not re-derive an equivalence witness".to_string())
    }

    /// The witness for one divide-and-conquer segment pair, with the
    /// column-permutation loop folded into the segment's right build.
    /// Returns the witness plus the segment's left RETURN arity.
    fn segment_witness(&self, q1: &Query, q2: &Query) -> Result<(SegmentWitness, usize), String> {
        let built1 = build_query(q1).map_err(|e| e.to_string())?;
        let built2 = build_query(q2).map_err(|e| e.to_string())?;
        if built1.columns != built2.columns {
            if crate::both_always_empty(&built1, &built2, true) {
                return Ok((
                    SegmentWitness { left: Gx::Zero, right: Gx::Zero, proof: Proof::Identical },
                    built1.columns,
                ));
            }
            return Err(format!(
                "segment arity mismatch: {} vs {} columns",
                built1.columns, built2.columns
            ));
        }
        for permutation in crate::column_permutations(&built1.column_kinds, &built2.column_kinds)
            .into_iter()
            .take(self.max_column_permutations)
        {
            let candidate = if crate::is_identity(&permutation) {
                built2.clone()
            } else {
                match build_query(&crate::permute_returns(q2, &permutation)) {
                    Ok(output) => output,
                    Err(_) => continue,
                }
            };
            if let Some(record) = witness::prove_with_witness(&built1.expr, &candidate.expr) {
                return Ok((segment_of(&record), built1.columns));
            }
        }
        Err("could not re-derive a witness for a divide-and-conquer segment".to_string())
    }
}

/// The per-query attestation: pretty-printed source, the full normalization
/// derivation, and the fixpoint. Returns the normalized query alongside so
/// the equivalence evidence builds on exactly what the certificate records.
fn query_cert(parsed: &Query) -> (QueryCert, Query) {
    let (normalized, steps) = cypher_normalizer::normalize_query_with_derivation(parsed);
    let cert = QueryCert {
        source: query_to_string(parsed),
        steps: steps
            .iter()
            .map(|step| DerivationStep {
                rule: step.rule.to_string(),
                part: step.part,
                clause: step.clause,
                after: query_to_string(&step.after),
            })
            .collect(),
        normalized: query_to_string(&normalized),
    };
    (cert, normalized)
}

/// The NOT_EQUIVALENT evidence: the counterexample graph plus both result
/// bags, re-computed on the **original** queries with the reference scan
/// evaluator (whose semantics — including `LIMIT` without `ORDER BY`
/// production order — the checker's evaluator mirrors).
fn counterexample_evidence(
    q1: &Query,
    q2: &Query,
    graph: &PropertyGraph,
    pool_index: usize,
) -> Result<Evidence, String> {
    let left = property_graph::eval::evaluate_query_scan(graph, q1)
        .map_err(|e| format!("left evaluation: {e}"))?;
    let right = property_graph::eval::evaluate_query_scan(graph, q2)
        .map_err(|e| format!("right evaluation: {e}"))?;
    let left_rows = left.rows.iter().map(|row| row.iter().map(value_of).collect()).collect();
    let right_rows = right.rows.iter().map(|row| row.iter().map(value_of).collect()).collect();
    // When the stage-⓪ signatures discriminate the pair, the certificate
    // records them alongside the witness (the richer `signature_mismatch`
    // evidence kind); the checker then re-infers both signatures on top of
    // re-evaluating the witness. Recomputed here rather than threaded from
    // the verdict so emission works for any prove path (including warm
    // cached proves and verdicts from an analyzer-off prover).
    let signatures = signature_pair(q1, q2);
    Ok(match signatures {
        Some((left_signature, right_signature)) => Evidence::SignatureMismatch {
            left_signature,
            right_signature,
            graph: graph_cert_of(graph),
            pool_index,
            left_columns: left.columns,
            left_rows,
            right_columns: right.columns,
            right_rows,
        },
        None => Evidence::Counterexample {
            graph: graph_cert_of(graph),
            pool_index,
            left_columns: left.columns,
            left_rows,
            right_columns: right.columns,
            right_rows,
        },
    })
}

/// The two analyzer signatures in the checker's wire form, when the
/// analysis succeeds on both sides **and** the signatures discriminate —
/// the only situation the `signature_mismatch` evidence kind describes.
fn signature_pair(q1: &Query, q2: &Query) -> Option<(Vec<SigColumn>, Vec<SigColumn>)> {
    let left = graphqe_analyzer::analyze(q1).ok()?.signature?;
    let right = graphqe_analyzer::analyze(q2).ok()?.signature?;
    if !graphqe_analyzer::signatures_discriminate(&left, &right) {
        return None;
    }
    let wire = |signature: Vec<graphqe_analyzer::TypeSig>| {
        signature
            .into_iter()
            .map(|column| SigColumn {
                name: column.name,
                ty: column.ty.to_string(),
                nullable: column.nullable,
            })
            .collect()
    };
    Some((wire(left), wire(right)))
}

// ---------------------------------------------------------------------------
// Type bridges into the checker's mirrored language
// ---------------------------------------------------------------------------

fn graph_cert_of(graph: &PropertyGraph) -> GraphCert {
    GraphCert {
        nodes: graph
            .node_ids()
            .map(|id| {
                let node = graph.node(id);
                checker_graph::NodeData {
                    labels: node.labels.clone(),
                    properties: node
                        .properties
                        .iter()
                        .map(|(k, v)| (k.clone(), value_of(v)))
                        .collect(),
                }
            })
            .collect(),
        relationships: graph
            .relationship_ids()
            .map(|id| {
                let rel = graph.relationship(id);
                checker_graph::RelData {
                    label: rel.label.clone(),
                    source: NodeId(rel.source.0),
                    target: NodeId(rel.target.0),
                    properties: rel
                        .properties
                        .iter()
                        .map(|(k, v)| (k.clone(), value_of(v)))
                        .collect(),
                }
            })
            .collect(),
    }
}

fn value_of(value: &property_graph::Value) -> Value {
    match value {
        property_graph::Value::Null => Value::Null,
        property_graph::Value::Boolean(b) => Value::Boolean(*b),
        property_graph::Value::Integer(i) => Value::Integer(*i),
        property_graph::Value::Float(f) => Value::Float(*f),
        property_graph::Value::String(s) => Value::String(s.clone()),
        property_graph::Value::List(items) => Value::List(items.iter().map(value_of).collect()),
        property_graph::Value::Map(map) => {
            Value::Map(map.iter().map(|(k, v)| (k.clone(), value_of(v))).collect())
        }
        property_graph::Value::Node(id) => Value::Node(NodeId(id.0)),
        property_graph::Value::Relationship(id) => Value::Relationship(RelId(id.0)),
        property_graph::Value::Path(items) => Value::Path(items.iter().map(value_of).collect()),
    }
}

fn segment_of(record: &SegmentRecord) -> SegmentWitness {
    SegmentWitness {
        left: gx_of(&record.left),
        right: gx_of(&record.right),
        proof: proof_of(&record.proof),
    }
}

fn proof_of(record: &ProofRecord) -> Proof {
    match record {
        ProofRecord::Identical => Proof::Identical,
        ProofRecord::Peel(inner) => Proof::Peel(Box::new(proof_of(inner))),
        ProofRecord::Summands(summands) => Proof::Summands(Box::new(SummandsProof {
            left: side_of(&summands.left),
            right: side_of(&summands.right),
            matching: matching_of(&summands.matching),
        })),
    }
}

fn side_of(record: &SideRecord) -> SideSummands {
    SideSummands {
        total: record.total,
        zero_pruned: record.zero_pruned.clone(),
        kept: record
            .kept
            .iter()
            .map(|kept| KeptSummand {
                index: kept.index,
                removed_atoms: kept.removed_atoms.iter().map(gx_of).collect(),
                result: gx_of(&kept.result),
            })
            .collect(),
    }
}

fn matching_of(record: &MatchingRecord) -> Matching {
    match record {
        MatchingRecord::Bijection(pairs) => Matching::Bijection(pairs.clone()),
        MatchingRecord::Classes {
            representatives,
            left_assign,
            right_assign,
            left_counts,
            right_counts,
        } => Matching::Classes {
            representatives: representatives.iter().map(gx_of).collect(),
            left_assign: left_assign.clone(),
            right_assign: right_assign.clone(),
            left_counts: left_counts.clone(),
            right_counts: right_counts.clone(),
        },
    }
}

fn gx_of(expr: &GExpr) -> Gx {
    match expr {
        GExpr::Zero => Gx::Zero,
        GExpr::One => Gx::One,
        GExpr::Const(n) => Gx::Const(*n),
        GExpr::Atom(atom) => Gx::Atom(atom_of(atom)),
        GExpr::NodeFn(t) => Gx::NodeFn(term_of(t)),
        GExpr::RelFn(t) => Gx::RelFn(term_of(t)),
        GExpr::LabFn(t, label) => Gx::LabFn(term_of(t), label.clone()),
        GExpr::Unbounded(t) => Gx::Unbounded(term_of(t)),
        GExpr::Mul(items) => Gx::Mul(items.iter().map(gx_of).collect()),
        GExpr::Add(items) => Gx::Add(items.iter().map(gx_of).collect()),
        GExpr::Squash(inner) => Gx::Squash(Box::new(gx_of(inner))),
        GExpr::Not(inner) => Gx::Not(Box::new(gx_of(inner))),
        GExpr::Sum { vars, body } => {
            Gx::Sum { vars: vars.iter().map(|v| VarId(v.0)).collect(), body: Box::new(gx_of(body)) }
        }
    }
}

fn atom_of(atom: &GAtom) -> GxAtom {
    match atom {
        GAtom::Cmp(op, a, b) => GxAtom::Cmp(cmp_of(*op), term_of(a), term_of(b)),
        GAtom::IsNull(t, negated) => GxAtom::IsNull(term_of(t), *negated),
        GAtom::Pred(name, args) => GxAtom::Pred(name.clone(), args.iter().map(term_of).collect()),
    }
}

fn term_of(term: &GTerm) -> GxTerm {
    match term {
        GTerm::Var(v) => GxTerm::Var(VarId(v.0)),
        GTerm::OutCol(i) => GxTerm::OutCol(*i),
        // Certificates erase typing hints: evidence is always re-derived
        // from a plain (unhinted) build, so hinted columns cannot actually
        // reach this conversion; mapping them to the untyped column keeps
        // the certificate format hint-free either way.
        GTerm::IntCol(i) => GxTerm::OutCol(*i),
        GTerm::Prop(base, key) => GxTerm::Prop(Box::new(term_of(base)), key.clone()),
        GTerm::Const(c) => GxTerm::Const(const_of(c)),
        GTerm::App(name, args) => GxTerm::App(name.clone(), args.iter().map(term_of).collect()),
        GTerm::Agg { kind, distinct, arg, group } => GxTerm::Agg {
            kind: agg_of(*kind),
            distinct: *distinct,
            arg: Box::new(term_of(arg)),
            group: Box::new(gx_of(group)),
        },
    }
}

fn const_of(c: &GConst) -> GxConst {
    match c {
        GConst::Integer(i) => GxConst::Integer(*i),
        GConst::Float(f) => GxConst::Float(*f),
        GConst::String(s) => GxConst::String(s.clone()),
        GConst::Boolean(b) => GxConst::Boolean(*b),
        GConst::Null => GxConst::Null,
    }
}

/// Enum-to-enum: the prover's wire names are uppercase (`COUNT`), the
/// checker's lowercase, so mapping by name would silently skew.
fn agg_of(kind: GAggKind) -> AggKind {
    match kind {
        GAggKind::Count => AggKind::Count,
        GAggKind::Sum => AggKind::Sum,
        GAggKind::Min => AggKind::Min,
        GAggKind::Max => AggKind::Max,
        GAggKind::Avg => AggKind::Avg,
        GAggKind::Collect => AggKind::Collect,
    }
}

fn cmp_of(op: gexpr::CmpOp) -> CmpOp {
    match op {
        gexpr::CmpOp::Eq => CmpOp::Eq,
        gexpr::CmpOp::Neq => CmpOp::Neq,
        gexpr::CmpOp::Lt => CmpOp::Lt,
        gexpr::CmpOp::Le => CmpOp::Le,
        gexpr::CmpOp::Gt => CmpOp::Gt,
        gexpr::CmpOp::Ge => CmpOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphqe_checker::check_certificate;

    #[test]
    fn equivalent_verdicts_yield_checkable_certificates() {
        let prover = GraphQE::new();
        let pairs = [
            ("MATCH (a) RETURN a", "MATCH (b) RETURN b"),
            ("MATCH (a)-[r:READ]->(b) RETURN a.name", "MATCH (b)<-[r:READ]-(a) RETURN a.name"),
            ("MATCH (n1)-[r:READ]->(n2) RETURN n1, n2", "MATCH (n1)<-[r:READ]-(n2) RETURN n2, n1"),
        ];
        for (q1, q2) in pairs {
            let (verdict, cert) = prover.prove_certified(q1, q2, true);
            assert!(verdict.is_equivalent(), "{q1} vs {q2}: {verdict}");
            let cert = cert.expect("certificate emitted");
            let summary = check_certificate(&cert).expect("certificate validates");
            assert!(summary.segments >= 1);
        }
    }

    #[test]
    fn not_equivalent_verdicts_yield_checkable_certificates() {
        let prover = GraphQE::new();
        let (verdict, cert) = prover.prove_certified(
            "MATCH (n:Person) WHERE n.age = 59 RETURN n.name",
            "MATCH (n:Person) WHERE n.age = 60 RETURN n.name",
            true,
        );
        assert!(verdict.is_not_equivalent(), "{verdict}");
        let cert = cert.expect("certificate emitted");
        let summary = check_certificate(&cert).expect("certificate validates");
        assert!(summary.rows_reevaluated >= 1);
        // The artifact survives a JSON round trip bit-exactly.
        let back = Certificate::from_json(&cert.to_json()).expect("round trip");
        assert_eq!(back, cert);
    }

    #[test]
    fn divide_and_conquer_proofs_are_certified_per_segment() {
        let prover = GraphQE::new();
        let (verdict, cert) = prover.prove_certified(
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
            true,
        );
        assert!(verdict.is_equivalent(), "{verdict}");
        let cert = cert.expect("certificate emitted");
        let summary = check_certificate(&cert).expect("certificate validates");
        assert!(summary.segments >= 2, "expected a multi-segment witness");
    }

    #[test]
    fn unknown_verdicts_carry_no_certificate() {
        let prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
        let (verdict, cert) = prover.prove_certified(
            "MATCH (n) RETURN SUM(n.a) / COUNT(n)",
            "MATCH (n) RETURN SUM(n.a) / COUNT(n)",
            true,
        );
        assert!(verdict.is_unknown());
        assert!(cert.is_none());
    }

    #[test]
    fn checking_downgrades_when_evidence_cannot_be_rederived() {
        // Lie about the verdict: a NOT_EQUIVALENT pair presented as
        // EQUIVALENT has no witness, so emission fails and checking
        // downgrades the pair instead of standing behind it.
        let prover = GraphQE::new();
        let q1 = "MATCH (a:Person)-[r:READ]->(b) RETURN a.name";
        let q2 = "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name";
        let fake = Verdict::Equivalent(crate::ProofStats::default());
        let before = certificate_counters().1;
        let (downgraded, cert) = prover.certify_verdict(q1, q2, fake, true);
        assert_eq!(
            downgraded.failure_category(),
            Some(FailureCategory::CertificateInvalid),
            "{downgraded}"
        );
        assert!(cert.is_none());
        assert!(certificate_counters().1 > before);
    }
}
