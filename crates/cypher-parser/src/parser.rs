//! A recursive-descent parser (with Pratt-style expression parsing) for the
//! Cypher fragment of Fig. 4 in the GraphQE paper.

use crate::ast::*;
use crate::token::{Token, TokenKind};
use crate::{ParseError, Span};

/// The parser state: a cursor over the token stream produced by the lexer.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream (must be terminated by `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // -- token helpers -------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::syntax(
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            // Many keywords are legal identifiers in practice (e.g. a property
            // called `count` or a variable called `end`); accept the
            // non-structural ones.
            TokenKind::Count => {
                self.bump();
                Ok("count".to_string())
            }
            other => Err(ParseError::syntax(
                format!("expected {what}, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::syntax(msg, self.span()))
    }

    /// Span of the most recently consumed token (used to close clause spans).
    fn prev_span(&self) -> Span {
        match self.pos.checked_sub(1) {
            Some(index) => self.tokens[index].span,
            None => self.span(),
        }
    }

    // -- query level ---------------------------------------------------------

    /// Parses a full query (with unions) and requires the whole input to be
    /// consumed.
    pub fn parse_query(&mut self) -> Result<Query, ParseError> {
        let query = self.parse_union_query()?;
        self.eat(&TokenKind::Semicolon);
        if !self.at(&TokenKind::Eof) {
            return self.error(format!("unexpected {} after query", self.peek().describe()));
        }
        Ok(query)
    }

    /// Parses a standalone expression and requires the whole input to be
    /// consumed.
    pub fn parse_standalone_expression(&mut self) -> Result<Expr, ParseError> {
        let expr = self.parse_expression()?;
        if !self.at(&TokenKind::Eof) {
            return self.error(format!("unexpected {} after expression", self.peek().describe()));
        }
        Ok(expr)
    }

    fn parse_union_query(&mut self) -> Result<Query, ParseError> {
        let first = self.parse_single_query()?;
        let mut parts = vec![first];
        let mut unions = Vec::new();
        while self.eat(&TokenKind::Union) {
            let kind = if self.eat(&TokenKind::All) { UnionKind::All } else { UnionKind::Distinct };
            unions.push(kind);
            parts.push(self.parse_single_query()?);
        }
        Ok(Query { parts, unions })
    }

    fn parse_single_query(&mut self) -> Result<SingleQuery, ParseError> {
        let mut clauses = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Match | TokenKind::Optional => {
                    clauses.push(Clause::Match(self.parse_match()?));
                }
                TokenKind::Unwind => {
                    clauses.push(Clause::Unwind(self.parse_unwind()?));
                }
                TokenKind::With => {
                    clauses.push(Clause::With(self.parse_with()?));
                }
                TokenKind::Return => {
                    clauses.push(Clause::Return(self.parse_return()?));
                    break;
                }
                _ => break,
            }
        }
        if clauses.is_empty() {
            return self.error(format!(
                "expected a clause (MATCH, OPTIONAL MATCH, UNWIND, WITH or RETURN), found {}",
                self.peek().describe()
            ));
        }
        Ok(SingleQuery { clauses })
    }

    // -- clauses ---------------------------------------------------------------

    fn parse_match(&mut self) -> Result<MatchClause, ParseError> {
        let start = self.span();
        let optional = self.eat(&TokenKind::Optional);
        self.expect(&TokenKind::Match)?;
        let mut patterns = vec![self.parse_path_pattern()?];
        while self.eat(&TokenKind::Comma) {
            patterns.push(self.parse_path_pattern()?);
        }
        let where_clause =
            if self.eat(&TokenKind::Where) { Some(self.parse_expression()?) } else { None };
        let span = start.merge(self.prev_span());
        Ok(MatchClause { optional, patterns, where_clause, span })
    }

    fn parse_unwind(&mut self) -> Result<UnwindClause, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Unwind)?;
        let expr = self.parse_expression()?;
        self.expect(&TokenKind::As)?;
        let alias = self.expect_ident("alias after AS")?;
        let span = start.merge(self.prev_span());
        Ok(UnwindClause { expr, alias, span })
    }

    fn parse_with(&mut self) -> Result<WithClause, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::With)?;
        let projection = self.parse_projection(start)?;
        let where_clause =
            if self.eat(&TokenKind::Where) { Some(self.parse_expression()?) } else { None };
        let span = start.merge(self.prev_span());
        Ok(WithClause { projection, where_clause, span })
    }

    fn parse_return(&mut self) -> Result<Projection, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Return)?;
        self.parse_projection(start)
    }

    fn parse_projection(&mut self, start: Span) -> Result<Projection, ParseError> {
        let distinct = self.eat(&TokenKind::Distinct);
        let items = if self.at(&TokenKind::Star) {
            self.bump();
            ProjectionItems::Star
        } else {
            let mut items = vec![self.parse_projection_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.parse_projection_item()?);
            }
            ProjectionItems::Items(items)
        };

        let mut order_by = Vec::new();
        if self.at(&TokenKind::Order) {
            self.bump();
            self.expect(&TokenKind::By)?;
            order_by.push(self.parse_order_item()?);
            while self.eat(&TokenKind::Comma) {
                order_by.push(self.parse_order_item()?);
            }
        }
        let skip = if self.eat(&TokenKind::Skip) { Some(self.parse_expression()?) } else { None };
        let limit = if self.eat(&TokenKind::Limit) { Some(self.parse_expression()?) } else { None };
        let span = start.merge(self.prev_span());
        Ok(Projection { distinct, items, order_by, skip, limit, span })
    }

    fn parse_projection_item(&mut self) -> Result<ProjectionItem, ParseError> {
        let expr = self.parse_expression()?;
        let alias = if self.eat(&TokenKind::As) {
            Some(self.expect_ident("alias after AS")?)
        } else {
            None
        };
        Ok(ProjectionItem { expr, alias })
    }

    fn parse_order_item(&mut self) -> Result<OrderItem, ParseError> {
        let expr = self.parse_expression()?;
        let ascending = if self.eat(&TokenKind::Desc) {
            false
        } else {
            self.eat(&TokenKind::Asc);
            true
        };
        Ok(OrderItem { expr, ascending })
    }

    // -- graph patterns --------------------------------------------------------

    fn parse_path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        // Optional path variable: `p = (...)...`
        let variable =
            if matches!(self.peek(), TokenKind::Ident(_)) && *self.peek_at(1) == TokenKind::Eq {
                let name = self.expect_ident("path variable")?;
                self.expect(&TokenKind::Eq)?;
                Some(name)
            } else {
                None
            };

        let start = self.parse_node_pattern()?;
        let mut segments = Vec::new();
        while self.at(&TokenKind::Minus) || self.at(&TokenKind::Lt) {
            let relationship = self.parse_relationship_pattern()?;
            let node = self.parse_node_pattern()?;
            segments.push(PathSegment { relationship, node });
        }
        Ok(PathPattern { variable, start, segments })
    }

    fn parse_node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut node = NodePattern::default();
        if let TokenKind::Ident(_) = self.peek() {
            node.variable = Some(self.expect_ident("node variable")?);
        }
        while self.eat(&TokenKind::Colon) {
            node.labels.push(self.expect_ident("node label")?);
        }
        if self.at(&TokenKind::LBrace) {
            node.properties = self.parse_property_map()?;
        }
        self.expect(&TokenKind::RParen)?;
        Ok(node)
    }

    /// Parses a relationship pattern between two node patterns:
    /// `-[...]->`, `<-[...]-`, `-[...]-`, `-->`, `<--` or `--`.
    fn parse_relationship_pattern(&mut self) -> Result<RelationshipPattern, ParseError> {
        let leading_lt = self.eat(&TokenKind::Lt);
        self.expect(&TokenKind::Minus)?;

        let mut rel = RelationshipPattern {
            variable: None,
            labels: Vec::new(),
            properties: Vec::new(),
            direction: RelDirection::Undirected,
            length: None,
        };

        if self.eat(&TokenKind::LBracket) {
            if let TokenKind::Ident(_) = self.peek() {
                rel.variable = Some(self.expect_ident("relationship variable")?);
            }
            if self.eat(&TokenKind::Colon) {
                rel.labels.push(self.expect_ident("relationship label")?);
                while self.eat(&TokenKind::Pipe) {
                    // `:A|B` and `:A|:B` are both accepted.
                    self.eat(&TokenKind::Colon);
                    rel.labels.push(self.expect_ident("relationship label")?);
                }
            }
            if self.eat(&TokenKind::Star) {
                rel.length = Some(self.parse_var_length()?);
            }
            if self.at(&TokenKind::LBrace) {
                rel.properties = self.parse_property_map()?;
            }
            // Tolerate `*` after the property map as well.
            if rel.length.is_none() && self.eat(&TokenKind::Star) {
                rel.length = Some(self.parse_var_length()?);
            }
            self.expect(&TokenKind::RBracket)?;
        }

        self.expect(&TokenKind::Minus)?;
        let trailing_gt = self.eat(&TokenKind::Gt);

        rel.direction = match (leading_lt, trailing_gt) {
            (true, false) => RelDirection::Incoming,
            (false, true) => RelDirection::Outgoing,
            (false, false) => RelDirection::Undirected,
            (true, true) => {
                return self.error("a relationship pattern cannot point in both directions");
            }
        };
        Ok(rel)
    }

    fn parse_var_length(&mut self) -> Result<VarLength, ParseError> {
        let mut length = VarLength { min: None, max: None };
        if let TokenKind::Integer(v) = *self.peek() {
            self.bump();
            let v = self.check_hop_count(v)?;
            length.min = Some(v);
            if self.eat(&TokenKind::DotDot) {
                if let TokenKind::Integer(v) = *self.peek() {
                    self.bump();
                    length.max = Some(self.check_hop_count(v)?);
                }
            } else {
                // `*2` means exactly two hops.
                length.max = Some(v);
            }
        } else if self.eat(&TokenKind::DotDot) {
            if let TokenKind::Integer(v) = *self.peek() {
                self.bump();
                length.max = Some(self.check_hop_count(v)?);
            }
        }
        Ok(length)
    }

    fn check_hop_count(&self, v: i64) -> Result<u32, ParseError> {
        if v < 0 || v > u32::MAX as i64 {
            return Err(ParseError::syntax(
                format!("invalid variable-length hop count {v}"),
                self.span(),
            ));
        }
        Ok(v as u32)
    }

    fn parse_property_map(&mut self) -> Result<Vec<(String, Expr)>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut properties = Vec::new();
        if !self.at(&TokenKind::RBrace) {
            loop {
                let key = self.expect_ident("property key")?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_expression()?;
                properties.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(properties)
    }

    // -- expressions -----------------------------------------------------------

    /// Parses an expression with standard Cypher operator precedence.
    pub fn parse_expression(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_xor()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_xor()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Xor) {
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinaryOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinaryOp::Eq,
                TokenKind::Neq => BinaryOp::Neq,
                TokenKind::Lt => BinaryOp::Lt,
                TokenKind::Le => BinaryOp::Le,
                TokenKind::Gt => BinaryOp::Gt,
                TokenKind::Ge => BinaryOp::Ge,
                TokenKind::In => BinaryOp::In,
                TokenKind::Starts => {
                    self.bump();
                    self.expect(&TokenKind::With)?;
                    let rhs = self.parse_additive()?;
                    lhs = Expr::binary(BinaryOp::StartsWith, lhs, rhs);
                    continue;
                }
                TokenKind::Ends => {
                    self.bump();
                    self.expect(&TokenKind::With)?;
                    let rhs = self.parse_additive()?;
                    lhs = Expr::binary(BinaryOp::EndsWith, lhs, rhs);
                    continue;
                }
                TokenKind::Contains => {
                    self.bump();
                    let rhs = self.parse_additive()?;
                    lhs = Expr::binary(BinaryOp::Contains, lhs, rhs);
                    continue;
                }
                TokenKind::Is => {
                    self.bump();
                    let negated = self.eat(&TokenKind::Not);
                    self.expect(&TokenKind::Null)?;
                    lhs = Expr::IsNull { expr: Box::new(lhs), negated };
                    continue;
                }
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_power()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_unary()?;
        if self.eat(&TokenKind::Caret) {
            // Exponentiation is right-associative.
            let rhs = self.parse_power()?;
            Ok(Expr::binary(BinaryOp::Pow, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.parse_unary()?;
                // Fold negation of numeric literals immediately so `-1` is a
                // literal rather than a unary application.
                match inner {
                    Expr::Literal(Literal::Integer(v)) => Ok(Expr::int(-v)),
                    Expr::Literal(Literal::Float(v)) => Ok(Expr::Literal(Literal::Float(-v))),
                    other => Ok(Expr::Unary(UnaryOp::Neg, Box::new(other))),
                }
            }
            TokenKind::Plus => {
                self.bump();
                let inner = self.parse_unary()?;
                Ok(Expr::Unary(UnaryOp::Pos, Box::new(inner)))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.at(&TokenKind::Dot) {
                self.bump();
                let key = self.expect_ident("property key")?;
                expr = Expr::Property(Box::new(expr), key);
            } else if self.at(&TokenKind::LBracket) {
                // List indexing `expr[idx]` is parsed as an uninterpreted
                // `index` function application.
                self.bump();
                let idx = self.parse_expression()?;
                self.expect(&TokenKind::RBracket)?;
                expr = Expr::FunctionCall { name: "index".to_string(), args: vec![expr, idx] };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Integer(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::string(s))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::boolean(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::boolean(false))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Parameter(name) => {
                self.bump();
                Ok(Expr::Parameter(name))
            }
            TokenKind::Count => {
                self.bump();
                self.parse_call("count".to_string())
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.parse_call(name)
                } else {
                    Ok(Expr::Variable(name))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.parse_expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(expr)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    items.push(self.parse_expression()?);
                    while self.eat(&TokenKind::Comma) {
                        items.push(self.parse_expression()?);
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                let entries = self.parse_property_map()?;
                Ok(Expr::Map(entries))
            }
            TokenKind::Exists => {
                self.bump();
                self.parse_exists()
            }
            TokenKind::Case => {
                self.bump();
                self.parse_case()
            }
            other => self.error(format!("expected an expression, found {}", other.describe())),
        }
    }

    fn parse_call(&mut self, name: String) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let distinct = self.eat(&TokenKind::Distinct);

        // COUNT(*) / COUNT(DISTINCT *).
        if self.at(&TokenKind::Star) && name.eq_ignore_ascii_case("count") {
            self.bump();
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::CountStar { distinct });
        }

        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            args.push(self.parse_expression()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.parse_expression()?);
            }
        }
        self.expect(&TokenKind::RParen)?;

        if let Some(func) = Aggregate::from_name(&name) {
            if args.len() != 1 {
                return self.error(format!(
                    "aggregate {} takes exactly one argument, got {}",
                    func.name(),
                    args.len()
                ));
            }
            return Ok(Expr::AggregateCall {
                func,
                distinct,
                arg: Box::new(args.into_iter().next().expect("one argument")),
            });
        }
        if distinct {
            return self
                .error(format!("DISTINCT is only allowed in aggregate calls, not `{name}`"));
        }
        Ok(Expr::FunctionCall { name: name.to_ascii_lowercase(), args })
    }

    fn parse_exists(&mut self) -> Result<Expr, ParseError> {
        // `EXISTS { <query> }` subquery form.
        if self.eat(&TokenKind::LBrace) {
            let query = self.parse_union_query()?;
            self.expect(&TokenKind::RBrace)?;
            return Ok(Expr::Exists(Box::new(query)));
        }
        // `EXISTS(expr)` property-existence form, kept as an uninterpreted
        // function call.
        if self.at(&TokenKind::LParen) {
            self.bump();
            let inner = self.parse_expression()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::FunctionCall { name: "exists".to_string(), args: vec![inner] });
        }
        self.error("expected `{` or `(` after EXISTS")
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let mut branches = Vec::new();
        // Only the searched CASE form (`CASE WHEN cond THEN value ...`) is
        // supported; the simple form can be rewritten into it.
        while self.eat(&TokenKind::When) {
            let cond = self.parse_expression()?;
            self.expect(&TokenKind::Then)?;
            let value = self.parse_expression()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return self.error("CASE requires at least one WHEN branch");
        }
        let otherwise = if self.eat(&TokenKind::Else) {
            Some(Box::new(self.parse_expression()?))
        } else {
            None
        };
        self.expect(&TokenKind::End)?;
        Ok(Expr::Case { branches, otherwise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expression, parse_query};

    #[test]
    fn parses_simple_match_return() {
        let q = parse_query("MATCH (n:Person) RETURN n.name").unwrap();
        let clause = &q.parts[0].clauses[0];
        match clause {
            Clause::Match(m) => {
                assert!(!m.optional);
                assert_eq!(m.patterns.len(), 1);
                assert_eq!(m.patterns[0].start.labels, vec!["Person"]);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
        match &q.parts[0].clauses[1] {
            Clause::Return(p) => {
                let items = p.explicit_items().unwrap();
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].expr, Expr::prop("n", "name"));
            }
            other => panic!("expected RETURN, got {other:?}"),
        }
    }

    #[test]
    fn parses_directions() {
        let q = parse_query("MATCH (a)-[r]->(b), (c)<-[s]-(d), (e)-[t]-(f) RETURN a").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        let dirs: Vec<_> =
            m.patterns.iter().map(|p| p.segments[0].relationship.direction).collect();
        assert_eq!(
            dirs,
            vec![RelDirection::Outgoing, RelDirection::Incoming, RelDirection::Undirected]
        );
    }

    #[test]
    fn parses_abbreviated_relationships() {
        let q = parse_query("MATCH (a)-->(b)<--(c)--(d) RETURN a").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        let dirs: Vec<_> =
            m.patterns[0].segments.iter().map(|s| s.relationship.direction).collect();
        assert_eq!(
            dirs,
            vec![RelDirection::Outgoing, RelDirection::Incoming, RelDirection::Undirected]
        );
    }

    #[test]
    fn parses_relationship_detail() {
        let q = parse_query("MATCH (a)-[r:KNOWS|LIKES {since: 2020} *1..3]->(b) RETURN r").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        let rel = &m.patterns[0].segments[0].relationship;
        assert_eq!(rel.variable.as_deref(), Some("r"));
        assert_eq!(rel.labels, vec!["KNOWS", "LIKES"]);
        assert_eq!(rel.properties.len(), 1);
        assert_eq!(rel.length, Some(VarLength::range(1, 3)));
    }

    #[test]
    fn parses_var_length_forms() {
        for (text, expected) in [
            ("*", VarLength { min: None, max: None }),
            ("*2", VarLength { min: Some(2), max: Some(2) }),
            ("*1..3", VarLength { min: Some(1), max: Some(3) }),
            ("*2..", VarLength { min: Some(2), max: None }),
            ("*..3", VarLength { min: None, max: Some(3) }),
        ] {
            let q = parse_query(&format!("MATCH (a)-[{text}]->(b) RETURN a")).unwrap();
            let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
            assert_eq!(m.patterns[0].segments[0].relationship.length, Some(expected), "{text}");
        }
    }

    #[test]
    fn parses_node_properties_and_multiple_labels() {
        let q = parse_query("MATCH (n:A:B {x: 1, y: 'two'}) RETURN n").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        let node = &m.patterns[0].start;
        assert_eq!(node.labels, vec!["A", "B"]);
        assert_eq!(node.properties.len(), 2);
    }

    #[test]
    fn parses_optional_match_and_where() {
        let q = parse_query("OPTIONAL MATCH (n)-[r]->(m) WHERE n.age > 10 RETURN m").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        assert!(m.optional);
        assert!(m.where_clause.is_some());
    }

    #[test]
    fn parses_with_order_skip_limit_where() {
        let q = parse_query(
            "MATCH (n) WITH DISTINCT n.name AS name ORDER BY name DESC SKIP 2 LIMIT 5 \
             WHERE name <> 'x' RETURN name",
        )
        .unwrap();
        let Clause::With(w) = &q.parts[0].clauses[1] else { panic!() };
        assert!(w.projection.distinct);
        assert_eq!(w.projection.order_by.len(), 1);
        assert!(!w.projection.order_by[0].ascending);
        assert_eq!(w.projection.skip, Some(Expr::int(2)));
        assert_eq!(w.projection.limit, Some(Expr::int(5)));
        assert!(w.where_clause.is_some());
    }

    #[test]
    fn parses_return_star_and_distinct() {
        let q = parse_query("MATCH (n) RETURN DISTINCT *").unwrap();
        let Clause::Return(p) = &q.parts[0].clauses[1] else { panic!() };
        assert!(p.distinct);
        assert_eq!(p.items, ProjectionItems::Star);
    }

    #[test]
    fn parses_union_and_union_all() {
        let q =
            parse_query("MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b UNION MATCH (c) RETURN c")
                .unwrap();
        assert_eq!(q.parts.len(), 3);
        assert_eq!(q.unions, vec![UnionKind::All, UnionKind::Distinct]);
    }

    #[test]
    fn parses_unwind() {
        let q = parse_query("UNWIND [1, 2, 3] AS x RETURN x").unwrap();
        let Clause::Unwind(u) = &q.parts[0].clauses[0] else { panic!() };
        assert_eq!(u.alias, "x");
        assert_eq!(u.expr, Expr::List(vec![Expr::int(1), Expr::int(2), Expr::int(3)]));
    }

    #[test]
    fn parses_aggregates_and_count_star() {
        let q =
            parse_query("MATCH (n:Person) RETURN COUNT(*), SUM(n.age), COLLECT(DISTINCT n.name)")
                .unwrap();
        let Clause::Return(p) = &q.parts[0].clauses[1] else { panic!() };
        let items = p.explicit_items().unwrap();
        assert_eq!(items[0].expr, Expr::CountStar { distinct: false });
        assert!(matches!(
            items[1].expr,
            Expr::AggregateCall { func: Aggregate::Sum, distinct: false, .. }
        ));
        assert!(matches!(
            items[2].expr,
            Expr::AggregateCall { func: Aggregate::Collect, distinct: true, .. }
        ));
    }

    #[test]
    fn parses_exists_subquery() {
        let q = parse_query("MATCH (n) WHERE EXISTS { MATCH (n)-[:KNOWS]->(m) RETURN m } RETURN n")
            .unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        assert!(matches!(m.where_clause, Some(Expr::Exists(_))));
    }

    #[test]
    fn parses_named_paths() {
        let q = parse_query("MATCH p = (a)-[]->(b) RETURN p").unwrap();
        let Clause::Match(m) = &q.parts[0].clauses[0] else { panic!() };
        assert_eq!(m.patterns[0].variable.as_deref(), Some("p"));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinaryOp::Add,
                Expr::int(1),
                Expr::binary(BinaryOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
        let e = parse_expression("a.x = 1 AND b.y = 2 OR c.z = 3").unwrap();
        match e {
            Expr::Binary(BinaryOp::Or, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinaryOp::And, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let e = parse_expression("NOT a.x = 1").unwrap();
        assert!(matches!(e, Expr::Unary(UnaryOp::Not, _)));
        let e = parse_expression("2 ^ 3 ^ 2").unwrap();
        match e {
            Expr::Binary(BinaryOp::Pow, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinaryOp::Pow, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_is_null_and_negative_numbers() {
        let e = parse_expression("n.age IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
        assert_eq!(parse_expression("-5").unwrap(), Expr::int(-5));
    }

    #[test]
    fn parses_case_expression() {
        let e = parse_expression("CASE WHEN n.age > 18 THEN 'adult' ELSE 'minor' END").unwrap();
        match e {
            Expr::Case { branches, otherwise } => {
                assert_eq!(branches.len(), 1);
                assert!(otherwise.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_string_predicates() {
        assert!(matches!(
            parse_expression("n.name STARTS WITH 'A'").unwrap(),
            Expr::Binary(BinaryOp::StartsWith, _, _)
        ));
        assert!(matches!(
            parse_expression("n.name ENDS WITH 'z'").unwrap(),
            Expr::Binary(BinaryOp::EndsWith, _, _)
        ));
        assert!(matches!(
            parse_expression("n.name CONTAINS 'b'").unwrap(),
            Expr::Binary(BinaryOp::Contains, _, _)
        ));
        assert!(matches!(
            parse_expression("n.x IN [1, 2]").unwrap(),
            Expr::Binary(BinaryOp::In, _, _)
        ));
    }

    #[test]
    fn parses_function_calls_and_parameters() {
        let e = parse_expression("id(n) = $target").unwrap();
        match e {
            Expr::Binary(BinaryOp::Eq, lhs, rhs) => {
                assert_eq!(
                    *lhs,
                    Expr::FunctionCall { name: "id".into(), args: vec![Expr::var("n")] }
                );
                assert_eq!(*rhs, Expr::Parameter("target".into()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_list_indexing_as_function() {
        let e = parse_expression("xs[0]").unwrap();
        assert_eq!(
            e,
            Expr::FunctionCall { name: "index".into(), args: vec![Expr::var("xs"), Expr::int(0)] }
        );
    }

    #[test]
    fn parses_multiple_matches_and_chained_clauses() {
        let q = parse_query("MATCH (n1) MATCH (n1)-[]->(n2) WITH n2 MATCH (n2)-[]->(n3) RETURN n3")
            .unwrap();
        assert_eq!(q.parts[0].clauses.len(), 5);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("MATCH (n RETURN n").is_err());
        assert!(parse_query("MATCH (a)<-[r]->(b) RETURN a").is_err());
        assert!(parse_query("RETURN").is_err());
        assert!(parse_query("MATCH (n) RETURN n extra").is_err());
        assert!(parse_query("MATCH (n) WHERE RETURN n").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("MATCH (n) RETURN SUM(n.a, n.b)").is_err());
        assert!(parse_query("MATCH (n) RETURN foo(DISTINCT n.a)").is_err());
    }

    #[test]
    fn allows_trailing_semicolon() {
        assert!(parse_query("MATCH (n) RETURN n;").is_ok());
    }

    #[test]
    fn parses_the_paper_listing_2_queries() {
        let q1 =
            parse_query("MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2")
                .unwrap();
        assert_eq!(q1.parts[0].clauses.len(), 4);
        let q2 =
            parse_query("MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2")
                .unwrap();
        assert_eq!(q2.parts[0].clauses.len(), 4);
    }

    #[test]
    fn parses_map_literal_unwind_from_table_1() {
        let q = parse_query(
            "WITH [{c1: 0, c2: 1}, {c1: 2, c2: 3}] AS tmp UNWIND tmp AS tmpRow RETURN tmpRow.c1",
        )
        .unwrap();
        let Clause::With(w) = &q.parts[0].clauses[0] else { panic!() };
        let items = w.projection.explicit_items().unwrap();
        assert!(matches!(items[0].expr, Expr::List(_)));
    }
}
