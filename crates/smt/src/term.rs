//! The term language of the SMT solver.
//!
//! The solver decides quantifier-free formulas over two theories:
//! **EUF** (equality with uninterpreted functions) and **LIA** (linear
//! integer arithmetic). This is exactly the fragment the LIA\*-based decision
//! procedure of GraphQE produces after eliminating unbounded summations.

use std::fmt;

/// The sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Booleans.
    Bool,
    /// Mathematical integers.
    Int,
    /// An uninterpreted value sort (graph entities, strings, ...).
    Value,
}

/// A quantifier-free SMT term / formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A boolean constant.
    BoolConst(bool),
    /// An integer constant.
    IntConst(i64),
    /// A named variable of the given sort name (`"bool"`, `"int"`, `"value"`).
    Var(String, SortTag),
    /// An application of an uninterpreted function to arguments.
    App(String, Vec<Term>),
    /// Equality between two terms of the same sort.
    Eq(Box<Term>, Box<Term>),
    /// `lhs ≤ rhs` over integers.
    Le(Box<Term>, Box<Term>),
    /// Integer addition (n-ary).
    Add(Vec<Term>),
    /// Multiplication of a term by an integer constant.
    MulConst(i64, Box<Term>),
    /// Boolean negation.
    Not(Box<Term>),
    /// Boolean conjunction (n-ary).
    And(Vec<Term>),
    /// Boolean disjunction (n-ary).
    Or(Vec<Term>),
    /// Boolean implication.
    Implies(Box<Term>, Box<Term>),
    /// If-then-else over booleans (condition, then, else).
    Ite(Box<Term>, Box<Term>, Box<Term>),
}

/// A serializable sort tag carried by variables (the solver does not run a
/// full type checker; it trusts the construction site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SortTag {
    /// Boolean variable.
    Bool,
    /// Integer variable.
    Int,
    /// Uninterpreted value variable.
    Value,
}

impl Term {
    /// A boolean variable.
    pub fn bool_var(name: impl Into<String>) -> Term {
        Term::Var(name.into(), SortTag::Bool)
    }

    /// An integer variable.
    pub fn int_var(name: impl Into<String>) -> Term {
        Term::Var(name.into(), SortTag::Int)
    }

    /// An uninterpreted value variable.
    pub fn value_var(name: impl Into<String>) -> Term {
        Term::Var(name.into(), SortTag::Value)
    }

    /// An integer constant.
    pub fn int(v: i64) -> Term {
        Term::IntConst(v)
    }

    /// The boolean constant `true`.
    pub fn tt() -> Term {
        Term::BoolConst(true)
    }

    /// The boolean constant `false`.
    pub fn ff() -> Term {
        Term::BoolConst(false)
    }

    /// Equality.
    pub fn eq(lhs: Term, rhs: Term) -> Term {
        Term::Eq(Box::new(lhs), Box::new(rhs))
    }

    /// Disequality.
    pub fn neq(lhs: Term, rhs: Term) -> Term {
        Term::Not(Box::new(Term::eq(lhs, rhs)))
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: Term, rhs: Term) -> Term {
        Term::Le(Box::new(lhs), Box::new(rhs))
    }

    /// `lhs < rhs` (encoded as `lhs + 1 ≤ rhs` over integers).
    pub fn lt(lhs: Term, rhs: Term) -> Term {
        Term::le(Term::Add(vec![lhs, Term::int(1)]), rhs)
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: Term, rhs: Term) -> Term {
        Term::le(rhs, lhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: Term, rhs: Term) -> Term {
        Term::lt(rhs, lhs)
    }

    /// N-ary conjunction with trivial simplification.
    pub fn and(terms: Vec<Term>) -> Term {
        let mut flat = Vec::new();
        for term in terms {
            match term {
                Term::BoolConst(true) => {}
                Term::BoolConst(false) => return Term::ff(),
                Term::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Term::tt(),
            1 => flat.into_iter().next().expect("one term"),
            _ => Term::And(flat),
        }
    }

    /// N-ary disjunction with trivial simplification.
    pub fn or(terms: Vec<Term>) -> Term {
        let mut flat = Vec::new();
        for term in terms {
            match term {
                Term::BoolConst(false) => {}
                Term::BoolConst(true) => return Term::tt(),
                Term::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Term::ff(),
            1 => flat.into_iter().next().expect("one term"),
            _ => Term::Or(flat),
        }
    }

    /// Negation with double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(term: Term) -> Term {
        match term {
            Term::BoolConst(b) => Term::BoolConst(!b),
            Term::Not(inner) => *inner,
            other => Term::Not(Box::new(other)),
        }
    }

    /// Implication.
    pub fn implies(lhs: Term, rhs: Term) -> Term {
        Term::Implies(Box::new(lhs), Box::new(rhs))
    }

    /// Addition.
    pub fn add(terms: Vec<Term>) -> Term {
        let mut flat = Vec::new();
        for term in terms {
            match term {
                Term::Add(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            1 => flat.into_iter().next().expect("one term"),
            _ => Term::Add(flat),
        }
    }

    /// Returns `true` if the term is a boolean-sorted formula.
    pub fn is_formula(&self) -> bool {
        matches!(
            self,
            Term::BoolConst(_)
                | Term::Var(_, SortTag::Bool)
                | Term::Eq(_, _)
                | Term::Le(_, _)
                | Term::Not(_)
                | Term::And(_)
                | Term::Or(_)
                | Term::Implies(_, _)
                | Term::Ite(_, _, _)
        )
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::BoolConst(b) => write!(f, "{b}"),
            Term::IntConst(v) => write!(f, "{v}"),
            Term::Var(name, _) => write!(f, "{name}"),
            Term::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            Term::Eq(a, b) => write!(f, "(= {a} {b})"),
            Term::Le(a, b) => write!(f, "(<= {a} {b})"),
            Term::Add(items) => {
                write!(f, "(+")?;
                for item in items {
                    write!(f, " {item}")?;
                }
                write!(f, ")")
            }
            Term::MulConst(c, t) => write!(f, "(* {c} {t})"),
            Term::Not(t) => write!(f, "(not {t})"),
            Term::And(items) => {
                write!(f, "(and")?;
                for item in items {
                    write!(f, " {item}")?;
                }
                write!(f, ")")
            }
            Term::Or(items) => {
                write!(f, "(or")?;
                for item in items {
                    write!(f, " {item}")?;
                }
                write!(f, ")")
            }
            Term::Implies(a, b) => write!(f, "(=> {a} {b})"),
            Term::Ite(c, t, e) => write!(f, "(ite {c} {t} {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_simplify() {
        assert_eq!(Term::and(vec![Term::tt(), Term::bool_var("a")]), Term::bool_var("a"));
        assert_eq!(Term::and(vec![Term::ff(), Term::bool_var("a")]), Term::ff());
        assert_eq!(Term::or(vec![Term::ff()]), Term::ff());
        assert_eq!(Term::or(vec![Term::tt(), Term::bool_var("a")]), Term::tt());
        assert_eq!(Term::not(Term::not(Term::bool_var("a"))), Term::bool_var("a"));
        assert_eq!(Term::and(vec![]), Term::tt());
        assert_eq!(Term::or(vec![]), Term::ff());
    }

    #[test]
    fn comparison_sugar() {
        let x = Term::int_var("x");
        let y = Term::int_var("y");
        assert_eq!(
            Term::lt(x.clone(), y.clone()),
            Term::le(Term::Add(vec![x.clone(), Term::int(1)]), y.clone())
        );
        assert_eq!(Term::ge(x.clone(), y.clone()), Term::le(y, x));
    }

    #[test]
    fn display_renders_sexprs() {
        let formula = Term::and(vec![
            Term::eq(Term::int_var("x"), Term::int(3)),
            Term::le(Term::int_var("y"), Term::int_var("x")),
        ]);
        assert_eq!(formula.to_string(), "(and (= x 3) (<= y x))");
    }

    #[test]
    fn is_formula_distinguishes_sorts() {
        assert!(Term::eq(Term::int_var("x"), Term::int(1)).is_formula());
        assert!(Term::bool_var("p").is_formula());
        assert!(!Term::int_var("x").is_formula());
        assert!(!Term::App("f".into(), vec![Term::int_var("x")]).is_formula());
    }
}
