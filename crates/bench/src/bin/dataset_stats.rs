//! Prints the composition of CyEqSet (§VII-A): pairs per project and per
//! construction rule.

#![forbid(unsafe_code)]

fn main() {
    let stats = cyeqset::dataset_stats();
    println!("CyEqSet composition ({} pairs)", stats.total);
    for (project, total, provable) in &stats.per_project {
        println!("  {:<22} {:>3} pairs ({} expected provable)", project.name(), total, provable);
    }
    println!("By construction rule:");
    for (rule, count) in &stats.per_construction {
        println!("  {rule:<28} {count:>3}");
    }
}
