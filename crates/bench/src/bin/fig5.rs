//! Regenerates Fig. 5: the distribution of proving latency over CyEqSet.

use graphqe::GraphQE;
use graphqe_bench::{format_fig5, latency_distribution, run_cyeqset};

fn main() {
    let prover = GraphQE::new();
    let results = run_cyeqset(&prover);
    let distribution = latency_distribution(&results);
    print!("{}", format_fig5(&distribution, results.len()));
}
