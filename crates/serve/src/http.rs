//! A hand-rolled HTTP/1.1 subset over `std::net`, sized for the wire
//! protocol: request-line + headers + `Content-Length` body, keep-alive
//! connections, `Expect: 100-continue`, and nothing else. Chunked transfer
//! encoding, pipelining past an error, and multipart bodies are deliberately
//! out of scope — `curl` and `nc` (the clients SERVING.md documents) never
//! need them for JSON payloads.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all headers, defending the parser against a
/// client that never sends a blank line.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request path (query strings are not split off; the protocol does
    /// not use them).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// `true` when the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub close: bool,
}

/// Why a request could not be read. Each variant maps onto exactly one HTTP
/// status so the server's error responses are mechanical.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or the read timed out on) an idle connection before
    /// sending a request line — a clean end of a keep-alive session, not an
    /// error to report.
    Closed,
    /// The request was structurally invalid (→ `400`).
    BadRequest(String),
    /// A `POST` arrived without `Content-Length` (→ `411`). Chunked bodies
    /// land here too: the parser refuses rather than mis-frames them.
    LengthRequired,
    /// The declared body exceeds the configured cap (→ `413`).
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
}

/// Reads one request from a keep-alive connection.
///
/// `max_body_bytes` bounds the accepted `Content-Length`; the body is only
/// read after that check, so an oversized upload costs the server a header
/// parse, not a buffer. When the declared length passes the check and the
/// client sent `Expect: 100-continue`, the interim `100 Continue` response
/// is written before the body read (this is how `curl` sends larger JSON
/// documents).
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut head_bytes = 0;
    let request_line = match read_line(reader, &mut head_bytes)? {
        Some(line) if !line.is_empty() => line,
        // An empty line where a request line should be: tolerate stray CRLFs
        // between pipelined requests by trying once more, then give up.
        Some(_) => match read_line(reader, &mut head_bytes)? {
            Some(line) if !line.is_empty() => line,
            _ => return Err(ReadError::Closed),
        },
        None => return Err(ReadError::Closed),
    };

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!("malformed request line {request_line:?}")));
    }

    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut expects_continue = false;
    let mut chunked = false;
    loop {
        let line = read_line(reader, &mut head_bytes)?
            .ok_or_else(|| ReadError::BadRequest("connection closed mid-headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header line {line:?}")));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                let parsed = value
                    .parse::<usize>()
                    .map_err(|_| ReadError::BadRequest(format!("bad Content-Length {value:?}")))?;
                content_length = Some(parsed);
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            "expect" => expects_continue = value.eq_ignore_ascii_case("100-continue"),
            "transfer-encoding" => chunked = true,
            _ => {}
        }
    }
    if chunked {
        return Err(ReadError::LengthRequired);
    }

    let declared = content_length.unwrap_or(0);
    if declared == 0 && method == "POST" && content_length.is_none() {
        return Err(ReadError::LengthRequired);
    }
    if declared > max_body_bytes {
        return Err(ReadError::PayloadTooLarge { declared, limit: max_body_bytes });
    }

    let mut body = vec![0u8; declared];
    if declared > 0 {
        if expects_continue {
            // Best effort: a client that sent the body anyway ignores this.
            let _ = reader.get_mut().write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        reader
            .read_exact(&mut body)
            .map_err(|e| ReadError::BadRequest(format!("body shorter than Content-Length: {e}")))?;
    }
    Ok(Request { method, path, body, close })
}

/// Reads one CRLF-terminated line, charging its length against the head cap
/// *as it accumulates* (a client streaming an endless line is cut off at the
/// cap, never buffered). `Ok(None)` is a clean EOF — or a timeout — before
/// any byte of the line.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    head_bytes: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buffered = match reader.fill_buf() {
            Ok(buffered) => buffered,
            Err(_) if line.is_empty() => return Ok(None), // idle timeout or reset
            Err(e) => return Err(ReadError::BadRequest(format!("read failed mid-line: {e}"))),
        };
        if buffered.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::BadRequest("connection closed mid-line".to_string()));
        }
        let newline = buffered.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buffered.len());
        line.extend_from_slice(&buffered[..take]);
        reader.consume(take);
        *head_bytes += take;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest("request head too large".to_string()));
        }
        if newline.is_some() {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| ReadError::BadRequest("non-UTF-8 bytes in request head".to_string()))
}

/// Writes one JSON response. `keep_alive: false` adds `Connection: close`;
/// the caller then drops the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
