//! Verify the three Cypher rewrite rules of §VII-A (rename variables,
//! reverse path direction, split graph pattern) on LDBC-style queries:
//! every rewrite must be proven equivalent by the prover and must agree with
//! the reference evaluator on random graphs.
//!
//! Run with `cargo run --example rewrite_verification`.

#![forbid(unsafe_code)]

use cyeqset::rewrite;
use cypher_parser::parse_query;
use graphqe::GraphQE;
use property_graph::{evaluate_query, GraphGenerator};

fn main() {
    let queries = [
        "MATCH (p:Person)-[k:KNOWS]->(f:Person) WHERE p.firstName = 'Jan' RETURN f.lastName",
        "MATCH (p:Person)-[l:LIKES]->(m:Message)-[c:HAS_CREATOR]->(a:Person) WHERE l <> c RETURN a.firstName",
        "MATCH (p:Person)-[w:WORK_AT]->(c:Company) WHERE w.workFrom < 2010 RETURN p, c",
    ];
    let prover = GraphQE::new();
    let mut generator = GraphGenerator::new(7);
    let graphs = generator.generate_many(25);

    for base in queries {
        println!("base query: {base}");
        for (rule, rewritten) in rewrite::all_rewrites(base) {
            let verdict = prover.prove(base, &rewritten);
            // Cross-check against the evaluator on random graphs.
            let original = parse_query(base).unwrap();
            let candidate = parse_query(&rewritten).unwrap();
            let oracle_agrees = graphs.iter().all(|graph| {
                match (evaluate_query(graph, &original), evaluate_query(graph, &candidate)) {
                    (Ok(a), Ok(b)) => a.bag_equal(&b),
                    _ => true,
                }
            });
            println!(
                "  {rule:<18} prover: {:<12} oracle: {}",
                if verdict.is_equivalent() { "EQUIVALENT" } else { "not proved" },
                if oracle_agrees { "agrees" } else { "DISAGREES" }
            );
        }
        println!();
    }
}
