//! Fault-injection harness for the prover's failure domains.
//!
//! Every test arms a `limits::faults` fault (panic, stall, forced SMT
//! `Unknown`) or a resource budget, drives the prover through it, and
//! asserts the three robustness invariants of the limits layer:
//!
//! 1. the injected fault yields the *right* structured reason code
//!    (`Timeout { stage }`, `BudgetExhausted { stage, budget }`, `Panicked`)
//!    — never a wrong `EQUIVALENT`/`NOT EQUIVALENT`;
//! 2. a batch containing the afflicted pair completes, with every other
//!    pair's verdict identical to the fault-free run;
//! 3. no cache retains state computed on the faulted path: re-proving with
//!    faults disarmed and limits off reproduces the reference verdict.
//!
//! The fault harness and the panic hook are process-global, so every test
//! serializes on [`FAULT_LOCK`]. Each `#[test]` runs on its own fresh
//! thread, so thread-local caches (arena, summand, SMT formula, plan) are
//! cold unless the test itself warms them — several tests rely on this to
//! guarantee the armed stage is actually reached instead of served from a
//! warm memo.

use std::sync::Mutex;
use std::time::Duration;

use graphqe::{FailureCategory, GraphQE, ProveLimits, SearchConfig, Verdict};
use limits::faults::{self, FaultKind};
use limits::Stage;

/// Serializes every test in this file: armed faults and the panic hook are
/// process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// A prover whose pipeline always runs for real: no search memo and no
/// shared normalize cache (a memoized replay would skip the machinery the
/// faults target — a warm normalize-cache entry satisfies stage ② without
/// ever reaching the armed normalize checkpoint) and a single sequential
/// search thread (so the afflicted checkpoint is deterministic).
fn fault_prover() -> GraphQE {
    GraphQE {
        search_config: SearchConfig { use_memo: false, ..SearchConfig::default() },
        search_threads: 1,
        use_normalize_cache: false,
        ..GraphQE::new()
    }
}

/// Runs `f` with a silenced panic hook (the injected panics are expected;
/// their backtraces would drown the test output), restoring the previous
/// hook afterwards.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

/// An equivalent pair whose proof requires SMT summand simplification, so
/// the pipeline reaches the CDCL loop (`smt_step` checkpoints).
const EQ_SMT: (&str, &str) =
    ("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n", "MATCH (n) WHERE n.age > 5 RETURN n");
/// A non-equivalent pair: not provable, so the pipeline reaches the
/// counterexample search (`search_step` checkpoints).
const NEQ_SEARCH: (&str, &str) = ("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n");
/// An equivalent pair decided by iso matching alone.
const EQ_SIMPLE: (&str, &str) = ("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a");

/// The batch covering every faultable stage, ordered so that with one armed
/// shot the afflicted pair is deterministic: the first pair exercises
/// normalize, decide and the SMT loop; the second is the first to search.
const BATCH: [(&str, &str); 3] = [EQ_SMT, NEQ_SEARCH, EQ_SIMPLE];

/// Fingerprint for verdict comparison across runs (counterexample identity
/// may legitimately vary with scheduling; the verdict class may not).
fn fingerprint(verdict: &Verdict) -> (bool, bool, Option<FailureCategory>) {
    (verdict.is_equivalent(), verdict.is_not_equivalent(), verdict.failure_category())
}

/// One armed panic shot at `stage`: the batch must complete, exactly one
/// pair must degrade to `Unknown(Panicked)`, and every other pair's verdict
/// must match the fault-free reference bit for bit.
fn panic_isolation_at(stage: Stage) {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    let prover = fault_prover();
    let report = with_quiet_panics(|| {
        faults::arm(stage, FaultKind::Panic, 1);
        let report = prover.prove_batch_report(&BATCH, 1);
        faults::disarm();
        report
    });
    assert_eq!(report.outcomes.len(), BATCH.len(), "the batch must complete");
    let panicked: Vec<usize> = report
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.failure_reason == Some(FailureCategory::Panicked))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(panicked.len(), 1, "exactly one pair must be afflicted at {stage}: {panicked:?}");
    assert_eq!(report.unknown_reason_counts().get("panicked"), Some(&1));
    // Fault-free reference run (after the faulted one, so the faulted run
    // starts from this test thread's cold caches and really reaches the
    // armed stage).
    let reference = prover.prove_batch_report(&BATCH, 1);
    for (index, (outcome, expected)) in report.outcomes.iter().zip(&reference.outcomes).enumerate()
    {
        if index == panicked[0] {
            // The afflicted pair itself recovers on the clean re-run: no
            // cache may have frozen the panicked attempt.
            assert!(
                !expected.verdict.is_unknown(),
                "pair {index} must re-prove cleanly after the panic"
            );
            continue;
        }
        assert_eq!(
            fingerprint(&outcome.verdict),
            fingerprint(&expected.verdict),
            "pair {index} diverged from the fault-free run under panic@{stage}"
        );
    }
}

#[test]
fn a_panic_during_normalization_degrades_one_pair_not_the_batch() {
    panic_isolation_at(Stage::Normalize);
}

#[test]
fn a_panic_during_the_decision_degrades_one_pair_not_the_batch() {
    panic_isolation_at(Stage::Decide);
}

#[test]
fn a_panic_inside_the_smt_loop_degrades_one_pair_not_the_batch() {
    panic_isolation_at(Stage::Smt);
}

#[test]
fn a_panic_during_the_search_degrades_one_pair_not_the_batch() {
    panic_isolation_at(Stage::Search);
}

/// One armed stall shot at `stage` plus a deadline shorter than the stall:
/// the stalled checkpoint itself must observe the expiry, so the verdict is
/// `Unknown(Timeout)` attributed to exactly that stage; disarmed re-proving
/// must reproduce the reference verdict from clean caches.
fn stall_times_out_at(stage: Stage, pair: (&str, &str)) {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    let limited = GraphQE {
        limits: ProveLimits {
            deadline: Some(Duration::from_millis(100)),
            ..ProveLimits::default()
        },
        ..fault_prover()
    };
    faults::arm(stage, FaultKind::Stall(Duration::from_millis(300)), 1);
    let verdict = limited.prove(pair.0, pair.1);
    faults::disarm();
    assert_eq!(
        verdict.failure_category(),
        Some(FailureCategory::Timeout { stage }),
        "stall@{stage} must surface as a timeout at {stage}, got {verdict}"
    );
    // Determinism: the tripped run never yields a wrong definite verdict,
    // and with limits off the original verdict is reproduced from clean
    // (unpoisoned) cache state.
    let reference = fault_prover().prove(pair.0, pair.1);
    assert!(
        !reference.is_unknown(),
        "clean re-prove after the trip must reach the definite verdict, got {reference}"
    );
}

#[test]
fn a_stall_past_the_deadline_times_out_in_normalization() {
    stall_times_out_at(Stage::Normalize, EQ_SIMPLE);
}

#[test]
fn a_stall_past_the_deadline_times_out_in_the_decision() {
    stall_times_out_at(Stage::Decide, EQ_SIMPLE);
}

#[test]
fn a_stall_past_the_deadline_times_out_in_the_smt_loop() {
    stall_times_out_at(Stage::Smt, EQ_SMT);
}

#[test]
fn a_stall_past_the_deadline_times_out_in_the_search() {
    stall_times_out_at(Stage::Search, NEQ_SEARCH);
}

#[test]
fn a_deadline_mid_search_never_flips_the_verdict_and_the_memo_stays_clean() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    // Memo ON here: the point is that the aborted search must not freeze its
    // partial outcome in the process-wide search memo. Unique texts keep the
    // memo entry under this test's control.
    let pair = ("MATCH (fi_memo:Person) RETURN fi_memo", "MATCH (fi_memo:Book) RETURN fi_memo");
    let limited = GraphQE {
        limits: ProveLimits {
            deadline: Some(Duration::from_millis(100)),
            ..ProveLimits::default()
        },
        search_threads: 1,
        ..GraphQE::new()
    };
    faults::arm(Stage::Search, FaultKind::Stall(Duration::from_millis(300)), 1);
    let tripped = limited.prove(pair.0, pair.1);
    faults::disarm();
    assert_eq!(
        tripped.failure_category(),
        Some(FailureCategory::Timeout { stage: Stage::Search }),
        "got {tripped}"
    );
    // Limits off: the full search runs, finds the witness, and only now may
    // the memo record an outcome for this pair.
    let clean = GraphQE { search_threads: 1, ..GraphQE::new() };
    assert!(clean.prove(pair.0, pair.1).is_not_equivalent());
    // A second clean prove replays the same certificate (memoized now).
    assert!(clean.prove(pair.0, pair.1).is_not_equivalent());
}

#[test]
fn forced_smt_unknowns_degrade_conservatively_and_leave_caches_clean() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    let prover = fault_prover();
    // Every SMT check reports Unknown: the implied-atom pruning that proves
    // this pair cannot fire, the decision degrades to NotProved, and the
    // search (which needs no SMT) exhausts its pool without a witness. The
    // verdict must be Unknown — soundly, never a wrong NOT_EQUIVALENT.
    faults::arm(Stage::Smt, FaultKind::SmtUnknown, u32::MAX);
    let degraded = prover.prove(EQ_SMT.0, EQ_SMT.1);
    faults::disarm();
    assert!(degraded.is_unknown(), "forced SMT unknowns must degrade to Unknown, got {degraded}");
    // Cache hygiene: nothing the degraded run computed may persist — on the
    // same thread, the clean re-prove must reach EQUIVALENT (a cached
    // degraded summand simplification would block the pruning again).
    let clean = prover.prove(EQ_SMT.0, EQ_SMT.1);
    assert!(clean.is_equivalent(), "degraded state leaked into a cache: {clean}");
}

#[test]
fn an_exhausted_smt_step_budget_reports_the_budget_and_skips_the_search() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    let limited = GraphQE {
        limits: ProveLimits { smt_step_budget: 1, ..ProveLimits::default() },
        ..fault_prover()
    };
    let verdict = limited.prove(EQ_SMT.0, EQ_SMT.1);
    assert_eq!(
        verdict.failure_category(),
        Some(FailureCategory::BudgetExhausted { stage: Stage::Smt, budget: 1 }),
        "got {verdict}"
    );
    // Clean re-prove from the same thread: the budgeted run's degraded SMT
    // answers were not memoized anywhere.
    assert!(fault_prover().prove(EQ_SMT.0, EQ_SMT.1).is_equivalent());
}

#[test]
fn an_exhausted_search_graph_budget_reports_the_budget_not_a_wrong_verdict() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    let limited = GraphQE {
        limits: ProveLimits { search_graph_budget: 1, ..ProveLimits::default() },
        ..fault_prover()
    };
    // One candidate graph (the empty seed graph) does not separate this
    // pair, so the budget trips before the separating graph is reached.
    let verdict = limited.prove(NEQ_SEARCH.0, NEQ_SEARCH.1);
    assert_eq!(
        verdict.failure_category(),
        Some(FailureCategory::BudgetExhausted { stage: Stage::Search, budget: 1 }),
        "got {verdict}"
    );
    assert!(fault_prover().prove(NEQ_SEARCH.0, NEQ_SEARCH.1).is_not_equivalent());
}

/// CI matrix entry point: when `GRAPHQE_FAULT=<kind>@<stage>` is set, arm
/// one shot of it and drive a batch through every stage. The batch must
/// complete, no pair may flip to a *wrong* definite verdict, and at most
/// one pair may differ from the fault-free reference — with the reason
/// matching the injected kind. Without the variable the test is a no-op, so
/// plain `cargo test` runs stay fault-free.
#[test]
fn armed_from_the_environment_the_batch_completes_with_the_right_reason() {
    let Ok(spec) = std::env::var("GRAPHQE_FAULT") else { return };
    let Some((stage, kind)) = faults::parse_spec(&spec) else {
        panic!("unparsable GRAPHQE_FAULT spec: {spec}")
    };
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    // Stall faults need a deadline to convert the delay into a trip; the
    // default stall is 50ms, so 25ms sits safely under it.
    let deadline = matches!(kind, FaultKind::Stall(_)).then(|| Duration::from_millis(25));
    let prover =
        GraphQE { limits: ProveLimits { deadline, ..ProveLimits::default() }, ..fault_prover() };
    let report = with_quiet_panics(|| {
        assert_eq!(faults::arm_from_env(), Some((stage, kind)), "arming from env must succeed");
        let report = prover.prove_batch_report(&BATCH, 1);
        faults::disarm();
        report
    });
    assert_eq!(report.outcomes.len(), BATCH.len(), "the batch must complete");
    let reference = fault_prover().prove_batch_report(&BATCH, 1);
    let mut divergent = 0;
    for (index, (outcome, expected)) in report.outcomes.iter().zip(&reference.outcomes).enumerate()
    {
        if fingerprint(&outcome.verdict) == fingerprint(&expected.verdict) {
            continue;
        }
        divergent += 1;
        // A divergent pair may only be Unknown with the injected reason
        // family — never a flipped definite verdict.
        let reason = outcome.verdict.failure_category();
        let reason_matches = match kind {
            FaultKind::Panic => reason == Some(FailureCategory::Panicked),
            FaultKind::Stall(_) => {
                matches!(reason, Some(FailureCategory::Timeout { .. }))
            }
            FaultKind::SmtUnknown => reason.is_some(),
        };
        assert!(
            reason_matches,
            "pair {index} diverged with the wrong reason under {spec}: {:?}",
            outcome.verdict
        );
    }
    assert!(divergent <= 1, "one armed shot may afflict at most one pair, got {divergent}");
}
