//! Scalar terms and atomic predicates of G-expressions.
//!
//! Terms denote values: graph entities bound by an unbounded summation,
//! columns of the output tuple `t`, property accesses `e.key`, constants and
//! applications of (uninterpreted) functions such as `src(e)`, `tgt(e)`,
//! `id(e)` or built-ins the prover does not interpret.
//!
//! Atoms are the boolean building blocks that appear inside the semiring
//! bracket operator `[·]` (which maps `true` to 1 and `false` to 0).

use std::fmt;

/// An entity/value variable bound by an unbounded summation `Σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A constant appearing in a G-expression term.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum GConst {
    /// An integer constant.
    Integer(i64),
    /// A floating point constant.
    Float(f64),
    /// A string constant.
    String(String),
    /// A boolean constant.
    Boolean(bool),
    /// The `NULL` constant.
    Null,
}

impl fmt::Display for GConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GConst::Integer(v) => write!(f, "{v}"),
            GConst::Float(v) => write!(f, "{v}"),
            GConst::String(s) => write!(f, "'{s}'"),
            GConst::Boolean(b) => write!(f, "{b}"),
            GConst::Null => write!(f, "null"),
        }
    }
}

/// The aggregate kinds that can appear as aggregate terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GAggKind {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
    /// `COLLECT`
    Collect,
}

impl GAggKind {
    /// The display name.
    pub fn name(&self) -> &'static str {
        match self {
            GAggKind::Count => "COUNT",
            GAggKind::Sum => "SUM",
            GAggKind::Min => "MIN",
            GAggKind::Max => "MAX",
            GAggKind::Avg => "AVG",
            GAggKind::Collect => "COLLECT",
        }
    }
}

/// A scalar term.
#[derive(Debug, Clone, PartialEq)]
pub enum GTerm {
    /// A summation-bound variable (graph entity or projected value).
    Var(VarId),
    /// Column `i` of the output tuple `t` (`t.col_i` in the paper).
    OutCol(usize),
    /// Column `i` of the output tuple, carrying a typing fact established by
    /// the static analyzer: the column is integer-valued and non-null, so
    /// the SMT encoding may give it an integer sort. Distinct from
    /// [`GTerm::OutCol`] on purpose — hinted and unhinted builds must never
    /// share hash-consed identities or solver caches.
    IntCol(usize),
    /// A property access `base.key`.
    Prop(Box<GTerm>, String),
    /// A constant.
    Const(GConst),
    /// An application of an (uninterpreted) function, e.g. `src(e)`, `tgt(e)`,
    /// `id(e)`, `size(x)`, a user-defined function, or the positional
    /// `order`/`limit`/`skip` markers used for sorting with truncation.
    App(String, Vec<GTerm>),
    /// An aggregate value: the aggregate of `arg` over the group described by
    /// the embedded G-expression (§IV-B "Aggregate"). The group expression and
    /// argument are compared structurally, which makes equal usage a
    /// sufficient condition for equality, exactly as in the paper.
    Agg {
        /// Which aggregate function.
        kind: GAggKind,
        /// Whether the aggregate deduplicates its input (`DISTINCT`).
        distinct: bool,
        /// The aggregated expression (a term over the group's variables).
        arg: Box<GTerm>,
        /// The group: a G-expression giving each group member's multiplicity.
        group: Box<super::expr::GExpr>,
    },
}

impl GTerm {
    /// An integer constant term.
    pub fn int(v: i64) -> GTerm {
        GTerm::Const(GConst::Integer(v))
    }

    /// A string constant term.
    pub fn string(s: impl Into<String>) -> GTerm {
        GTerm::Const(GConst::String(s.into()))
    }

    /// A property access term.
    pub fn prop(base: GTerm, key: impl Into<String>) -> GTerm {
        GTerm::Prop(Box::new(base), key.into())
    }

    /// A function application term.
    pub fn app(name: impl Into<String>, args: Vec<GTerm>) -> GTerm {
        GTerm::App(name.into(), args)
    }

    /// Collects every variable occurring in the term (including inside
    /// aggregate groups).
    pub fn variables(&self, out: &mut Vec<VarId>) {
        match self {
            GTerm::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            GTerm::OutCol(_) | GTerm::IntCol(_) | GTerm::Const(_) => {}
            GTerm::Prop(base, _) => base.variables(out),
            GTerm::App(_, args) => {
                for arg in args {
                    arg.variables(out);
                }
            }
            GTerm::Agg { arg, group, .. } => {
                arg.variables(out);
                group.free_variables(out);
            }
        }
    }

    /// Returns `true` if the term mentions the given variable.
    pub fn mentions(&self, var: VarId) -> bool {
        let mut vars = Vec::new();
        self.variables(&mut vars);
        vars.contains(&var)
    }

    /// Renames every variable occurrence with the given function (one pass).
    pub fn rename_vars(&self, f: &impl Fn(VarId) -> VarId) -> GTerm {
        match self {
            GTerm::Var(v) => GTerm::Var(f(*v)),
            GTerm::OutCol(_) | GTerm::IntCol(_) | GTerm::Const(_) => self.clone(),
            GTerm::Prop(base, key) => GTerm::Prop(Box::new(base.rename_vars(f)), key.clone()),
            GTerm::App(name, args) => {
                GTerm::App(name.clone(), args.iter().map(|a| a.rename_vars(f)).collect())
            }
            GTerm::Agg { kind, distinct, arg, group } => GTerm::Agg {
                kind: *kind,
                distinct: *distinct,
                arg: Box::new(arg.rename_vars(f)),
                group: Box::new(group.rename_all(f)),
            },
        }
    }

    /// Substitutes every occurrence of variable `var` by `replacement`.
    pub fn substitute(&self, var: VarId, replacement: &GTerm) -> GTerm {
        match self {
            GTerm::Var(v) if *v == var => replacement.clone(),
            GTerm::Var(_) | GTerm::OutCol(_) | GTerm::IntCol(_) | GTerm::Const(_) => self.clone(),
            GTerm::Prop(base, key) => {
                GTerm::Prop(Box::new(base.substitute(var, replacement)), key.clone())
            }
            GTerm::App(name, args) => GTerm::App(
                name.clone(),
                args.iter().map(|a| a.substitute(var, replacement)).collect(),
            ),
            GTerm::Agg { kind, distinct, arg, group } => GTerm::Agg {
                kind: *kind,
                distinct: *distinct,
                arg: Box::new(arg.substitute(var, replacement)),
                group: Box::new(group.substitute(var, replacement)),
            },
        }
    }
}

impl fmt::Display for GTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GTerm::Var(v) => write!(f, "{v}"),
            GTerm::OutCol(i) => write!(f, "t.col{}", i + 1),
            GTerm::IntCol(i) => write!(f, "t.col{}:int", i + 1),
            GTerm::Prop(base, key) => write!(f, "{base}.{key}"),
            GTerm::Const(c) => write!(f, "{c}"),
            GTerm::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            GTerm::Agg { kind, distinct, arg, group } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                write!(f, "{}({d}{arg} | {group})", kind.name())
            }
        }
    }
}

/// Comparison operators of atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The comparison with both sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The classical negation of the comparison (`=` ↔ `≠`, `<` ↔ `≥`, ...).
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Display symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }
}

/// An atomic predicate appearing inside the bracket operator `[·]`.
#[derive(Debug, Clone, PartialEq)]
pub enum GAtom {
    /// A comparison between two terms.
    Cmp(CmpOp, GTerm, GTerm),
    /// `IS NULL` (`negated == false`) or `IS NOT NULL` of a term.
    IsNull(GTerm, bool),
    /// An uninterpreted boolean predicate, e.g. `startsWith(x, 'A')`,
    /// `in(x, list)`, `unwind(row, list)`, `order(i, dir, key)`,
    /// `limit(n)`, `skip(n)`.
    Pred(String, Vec<GTerm>),
}

impl GAtom {
    /// An equality atom.
    pub fn eq(lhs: GTerm, rhs: GTerm) -> GAtom {
        GAtom::Cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Collects every variable of the atom.
    pub fn variables(&self, out: &mut Vec<VarId>) {
        match self {
            GAtom::Cmp(_, lhs, rhs) => {
                lhs.variables(out);
                rhs.variables(out);
            }
            GAtom::IsNull(term, _) => term.variables(out),
            GAtom::Pred(_, args) => {
                for arg in args {
                    arg.variables(out);
                }
            }
        }
    }

    /// Renames every variable occurrence with the given function (one pass).
    pub fn rename_vars(&self, f: &impl Fn(VarId) -> VarId) -> GAtom {
        match self {
            GAtom::Cmp(op, lhs, rhs) => GAtom::Cmp(*op, lhs.rename_vars(f), rhs.rename_vars(f)),
            GAtom::IsNull(term, negated) => GAtom::IsNull(term.rename_vars(f), *negated),
            GAtom::Pred(name, args) => {
                GAtom::Pred(name.clone(), args.iter().map(|a| a.rename_vars(f)).collect())
            }
        }
    }

    /// Substitutes a variable by a term throughout the atom.
    pub fn substitute(&self, var: VarId, replacement: &GTerm) -> GAtom {
        match self {
            GAtom::Cmp(op, lhs, rhs) => {
                GAtom::Cmp(*op, lhs.substitute(var, replacement), rhs.substitute(var, replacement))
            }
            GAtom::IsNull(term, negated) => {
                GAtom::IsNull(term.substitute(var, replacement), *negated)
            }
            GAtom::Pred(name, args) => GAtom::Pred(
                name.clone(),
                args.iter().map(|a| a.substitute(var, replacement)).collect(),
            ),
        }
    }

    /// Canonicalizes the atom: comparisons are oriented so the
    /// lexicographically smaller term is on the left (flipping the operator
    /// accordingly), which makes `[a = b]` and `[b = a]` identical.
    pub fn canonical(&self) -> GAtom {
        match self {
            GAtom::Cmp(op, lhs, rhs) => {
                let key_l = format!("{lhs}");
                let key_r = format!("{rhs}");
                if key_r < key_l {
                    GAtom::Cmp(op.flipped(), rhs.clone(), lhs.clone())
                } else {
                    self.clone()
                }
            }
            _ => self.clone(),
        }
    }
}

impl fmt::Display for GAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GAtom::Cmp(op, lhs, rhs) => write!(f, "[{lhs} {} {rhs}]", op.symbol()),
            GAtom::IsNull(term, false) => write!(f, "[isNull({term})]"),
            GAtom::IsNull(term, true) => write!(f, "[isNotNull({term})]"),
            GAtom::Pred(name, args) => {
                write!(f, "[{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_variables_and_substitution() {
        let term = GTerm::prop(GTerm::Var(VarId(1)), "age");
        let mut vars = Vec::new();
        term.variables(&mut vars);
        assert_eq!(vars, vec![VarId(1)]);
        let substituted = term.substitute(VarId(1), &GTerm::Var(VarId(7)));
        assert_eq!(substituted, GTerm::prop(GTerm::Var(VarId(7)), "age"));
        assert!(substituted.mentions(VarId(7)));
        assert!(!substituted.mentions(VarId(1)));
    }

    #[test]
    fn atom_canonicalization_orients_comparisons() {
        let a = GTerm::Var(VarId(0));
        let b = GTerm::prop(GTerm::Var(VarId(1)), "x");
        let atom1 = GAtom::Cmp(CmpOp::Lt, b.clone(), a.clone()).canonical();
        let atom2 = GAtom::Cmp(CmpOp::Gt, a.clone(), b.clone()).canonical();
        assert_eq!(atom1, atom2);
        let eq1 = GAtom::eq(b.clone(), a.clone()).canonical();
        let eq2 = GAtom::eq(a, b).canonical();
        assert_eq!(eq1, eq2);
    }

    #[test]
    fn cmp_flip_is_involutive() {
        for op in [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn display_is_reasonable() {
        let atom = GAtom::eq(GTerm::prop(GTerm::Var(VarId(0)), "age"), GTerm::int(59));
        assert_eq!(atom.to_string(), "[e0.age = 59]");
        assert_eq!(GTerm::OutCol(0).to_string(), "t.col1");
    }
}
