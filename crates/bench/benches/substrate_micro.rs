//! Micro-benchmarks of the substrates: parser, evaluator, SMT solver,
//! G-expression construction, and the two normalizers (tree vs. arena).

use cypher_parser::parse_query;
use graphqe_bench::microbench::bench;
use property_graph::{evaluate_query, PropertyGraph};
use smt::{Solver, Term};

fn main() {
    println!("substrates");
    let text = "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
                WHERE reader.name = 'Alice' RETURN writer.name";
    bench("parser/listing1", 20, || {
        std::hint::black_box(parse_query(text).unwrap());
    });

    let graph = PropertyGraph::paper_example();
    let query = parse_query(text).unwrap();
    bench("evaluator/listing1", 20, || {
        std::hint::black_box(evaluate_query(&graph, &query).unwrap());
    });

    let parsed = parse_query(text).unwrap();
    bench("gexpr/build_listing1", 20, || {
        std::hint::black_box(gexpr::build_query(&parsed).unwrap());
    });

    let built = gexpr::build_query(&parsed).unwrap();
    bench("gexpr/normalize_tree_listing1", 20, || {
        std::hint::black_box(gexpr::normalize_tree(&built.expr));
    });
    bench("gexpr/normalize_arena_listing1", 20, || {
        std::hint::black_box(gexpr::normalize(&built.expr));
    });

    bench("smt/lia_unsat", 20, || {
        let mut solver = Solver::new();
        let x = Term::int_var("x");
        solver.assert(Term::le(x.clone(), Term::int(3)));
        solver.assert(Term::ge(x, Term::int(5)));
        assert!(solver.check().is_unsat());
    });
}
