//! Repo-specific lint invariants, enforced as an ordinary test so CI runs
//! them with no extra tooling:
//!
//! 1. every crate root (libs, binaries, examples) carries
//!    `#![forbid(unsafe_code)]`, and no source file uses `unsafe` without an
//!    adjacent `// SAFETY:` justification (today there is none at all — the
//!    attribute makes that a compile error, this lint makes it a review
//!    gate even for code the compiler never sees, like cfg'd-out blocks);
//! 2. every stable failure-category code in the verdict taxonomy is
//!    documented in `SERVING.md`, so the serving docs can never silently
//!    fall behind a new category.

use std::fs;
use std::path::{Path, PathBuf};

use graphqe::FailureCategory;

/// The workspace root: integration tests run with the package root as cwd.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `.rs` file under the given directory, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|name| name == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn all_crate_roots_forbid_unsafe_code() {
    let root = repo_root();
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for dir in ["crates", "examples"] {
        let mut files = Vec::new();
        rust_files(&root.join(dir), &mut files);
        roots.extend(files.into_iter().filter(|path| {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let parent =
                path.parent().and_then(|p| p.file_name()).and_then(|n| n.to_str()).unwrap_or("");
            name == "lib.rs" || name == "main.rs" || parent == "bin" || parent == "examples"
        }));
    }
    assert!(roots.len() >= 15, "crate-root discovery broke: found {}", roots.len());
    let missing: Vec<_> = roots
        .iter()
        .filter(|path| {
            fs::read_to_string(path)
                .map(|text| !text.contains("#![forbid(unsafe_code)]"))
                .unwrap_or(true)
        })
        .collect();
    assert!(missing.is_empty(), "crate roots without #![forbid(unsafe_code)]: {missing:?}");
}

#[test]
fn unsafe_blocks_require_a_safety_comment() {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["src", "crates", "examples", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    assert!(files.len() > 30, "source discovery broke: found {} files", files.len());
    // Assembled at runtime so this file's own scan does not flag the lint
    // itself (the keyword never appears verbatim in its source).
    let keyword = ["un", "safe"].concat();
    let mut violations = Vec::new();
    for path in files {
        let Ok(text) = fs::read_to_string(&path) else { continue };
        let lines: Vec<&str> = text.lines().collect();
        for (index, line) in lines.iter().enumerate() {
            // A word-boundary scan over the non-comment part of each line:
            // cheap, dependency-free, and strict enough for a codebase whose
            // crate roots all forbid the keyword outright.
            let code = line.split("//").next().unwrap_or("");
            let uses_keyword = code
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|token| token == keyword);
            if !uses_keyword {
                continue;
            }
            let justified = lines[..index]
                .iter()
                .rev()
                .take(3)
                .any(|prev| prev.trim_start().starts_with("// SAFETY:"));
            if !justified {
                violations.push(format!("{}:{}", path.display(), index + 1));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "`{keyword}` without a preceding `// SAFETY:` comment at: {violations:?}"
    );
}

#[test]
fn serving_docs_cover_the_whole_failure_taxonomy() {
    let serving =
        fs::read_to_string(repo_root().join("SERVING.md")).expect("SERVING.md is readable");
    let codes = FailureCategory::all_codes();
    assert!(codes.len() >= 7, "taxonomy unexpectedly small: {codes:?}");
    let undocumented: Vec<_> =
        codes.into_iter().filter(|code| !serving.contains(&format!("`{code}`"))).collect();
    assert!(
        undocumented.is_empty(),
        "failure codes missing from SERVING.md: {undocumented:?} — document each \
         code in the failure-category table"
    );
}
