//! The shared stamp-based LRU map behind the prover's text-keyed caches.
//!
//! Extracted from PR 4's `SEARCH_MEMO` so its eviction machinery — a
//! monotonic access clock stamping entries on every hit and insert, a
//! capacity bound, and *batch* eviction (a quarter of the capacity at a
//! time, so a saturated cache pays the O(n) stamp scan once per batch
//! instead of once per insert) — is one implementation serving the search
//! memo, the stage-① parse cache and the per-thread query-plan cache.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

struct LruEntry<V> {
    value: V,
    stamp: u64,
}

/// A capacity-bounded map with least-recently-used batch eviction.
pub(crate) struct LruMap<K, V> {
    entries: HashMap<K, LruEntry<V>>,
    /// Monotonic access clock stamping entries on every hit and insert.
    clock: u64,
    /// Maximum entry count; inserts beyond it evict in LRU order.
    capacity: usize,
}

impl<K: Eq + Hash, V: Clone> LruMap<K, V> {
    /// An empty map bounded to `capacity` entries (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        LruMap { entries: HashMap::new(), clock: 0, capacity: capacity.max(1) }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, refreshing its recency stamp on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let stamp = self.tick();
        let entry = self.entries.get_mut(key)?;
        entry.stamp = stamp;
        Some(entry.value.clone())
    }

    /// Inserts `key`, evicting the least recently used entries first when
    /// the table is full. Returns how many entries the insert evicted.
    pub fn insert(&mut self, key: K, value: V) -> u64 {
        let mut evicted = 0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let to_evict = (self.capacity / 4).max(1);
            let mut stamps: Vec<u64> = self.entries.values().map(|entry| entry.stamp).collect();
            stamps.sort_unstable();
            let cutoff = stamps[(to_evict - 1).min(stamps.len() - 1)];
            let before = self.entries.len();
            self.entries.retain(|_, entry| entry.stamp > cutoff);
            evicted = (before - self.entries.len()) as u64;
        }
        let stamp = self.tick();
        self.entries.insert(key, LruEntry { value, stamp });
        evicted
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The current capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reconfigures the capacity (clamped to at least 1), evicting down to
    /// the new bound immediately in LRU order. Returns how many entries were
    /// evicted. A no-op when the capacity is unchanged.
    pub fn set_capacity(&mut self, capacity: usize) -> u64
    where
        K: Clone,
    {
        let capacity = capacity.max(1);
        if capacity == self.capacity {
            return 0;
        }
        self.capacity = capacity;
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| key.clone())
                .expect("non-empty map");
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry (capacity and clock are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_and_eviction_is_lru() {
        let mut map = LruMap::new(4);
        for i in 0..4 {
            assert_eq!(map.insert(i, i * 10), 0);
        }
        // Refresh 0 so it is the most recently used, then overflow: the
        // batch eviction (quarter capacity = 1) must drop the stalest key.
        assert_eq!(map.get(&0), Some(0));
        let evicted = map.insert(4, 40);
        assert_eq!(evicted, 1);
        assert!(map.len() <= 4);
        assert_eq!(map.get(&1), None, "the least recently used entry must go first");
        assert_eq!(map.get(&0), Some(0), "the refreshed entry must survive");
    }

    #[test]
    fn shrinking_capacity_evicts_down_immediately() {
        let mut map = LruMap::new(8);
        for i in 0..6 {
            map.insert(i, i);
        }
        let evicted = map.set_capacity(2);
        assert_eq!(evicted, 4);
        assert_eq!(map.len(), 2);
        // Clamped to at least one entry; unchanged capacity is a no-op.
        assert_eq!(map.set_capacity(0), 1);
        assert_eq!(map.capacity(), 1);
        assert_eq!(map.set_capacity(1), 0);
    }

    #[test]
    fn replacing_an_existing_key_does_not_evict() {
        let mut map = LruMap::new(2);
        map.insert("a".to_string(), 1);
        map.insert("b".to_string(), 2);
        assert_eq!(map.insert("a".to_string(), 3), 0);
        assert_eq!(map.len(), 2);
        // Borrowed-key lookups work (`&str` against `String` keys).
        assert_eq!(map.get("a"), Some(3));
    }
}
