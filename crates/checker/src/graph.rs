//! A minimal property graph, just enough to re-evaluate a counterexample.
//!
//! Node and relationship ids are dense indices assigned in insertion order,
//! matching the serialized certificate graph, so candidate enumeration in the
//! evaluator (ascending ids) reproduces the prover's deterministic order.

use crate::value::{NodeId, RelId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Data stored on a node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeData {
    /// Labels, kept sorted (the `labels()` function exposes this order).
    pub labels: BTreeSet<String>,
    /// Properties keyed by name.
    pub properties: BTreeMap<String, Value>,
}

/// Data stored on a relationship.
#[derive(Debug, Clone, PartialEq)]
pub struct RelData {
    /// The relationship type.
    pub label: String,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Properties keyed by name.
    pub properties: BTreeMap<String, Value>,
}

/// An entity that can carry properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityId {
    /// A node.
    Node(NodeId),
    /// A relationship.
    Relationship(RelId),
}

/// The checker's property graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    nodes: Vec<NodeData>,
    relationships: Vec<RelData>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// All node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All relationship ids in ascending order.
    pub fn relationship_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relationships.len() as u32).map(RelId)
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.nodes.get(id.0 as usize)
    }

    /// Looks up a relationship.
    pub fn relationship(&self, id: RelId) -> Option<&RelData> {
        self.relationships.get(id.0 as usize)
    }

    /// Whether the node exists and carries `label`.
    pub fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        self.node(id).is_some_and(|n| n.labels.contains(label))
    }

    /// Reads a property; absent entities or keys yield `NULL`.
    pub fn property(&self, entity: EntityId, key: &str) -> Value {
        let props = match entity {
            EntityId::Node(id) => self.node(id).map(|n| &n.properties),
            EntityId::Relationship(id) => self.relationship(id).map(|r| &r.properties),
        };
        props.and_then(|p| p.get(key)).cloned().unwrap_or(Value::Null)
    }

    /// Appends a node; returns its id.
    pub fn add_node(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        id
    }

    /// Appends a relationship; returns its id. Endpoints must exist.
    pub fn add_relationship(&mut self, data: RelData) -> Result<RelId, String> {
        if self.node(data.source).is_none() || self.node(data.target).is_none() {
            return Err(format!(
                "relationship endpoint out of range: {} -> {}",
                data.source.0, data.target.0
            ));
        }
        let id = RelId(self.relationships.len() as u32);
        self.relationships.push(data);
        Ok(id)
    }
}
