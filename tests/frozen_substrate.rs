//! PR 8 acceptance tests for the frozen shared substrate: cross-thread
//! frozen plans, the shared normalize/build cache, and hash-consed SMT
//! formula keys must change *where* work happens, never *what* comes out.
//!
//! 1. **Differential**: a thawed [`FrozenPlan`] evaluates row-identically to
//!    a freshly lowered plan, and bag-identically to the clause-walking
//!    interpreter, on every dataset query and a pool of random graphs.
//! 2. **Concurrent smoke**: two batch workers prove the full CyEqSet and
//!    CyNeqSet corpora through the shared caches with the verdict totals
//!    pinned to the single-threaded expectations (138/0/10 and 0/121/27).
//! 3. **Compile-enforced sharing**: the shared artifacts are `Send + Sync`
//!    by construction, asserted at compile time.

use std::sync::Arc;

use graphqe::{normalize_cache_stats, parse_check_cached, GraphQE, NormalizedStages};
use property_graph::{
    evaluate_query_interpreted, Evaluator, FrozenPlan, GraphGenerator, PropertyGraph, QueryPlan,
};

// The substrate's whole premise, enforced at compile time: the artifacts the
// process-wide caches hand out must cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenPlan>();
    assert_send_sync::<Arc<FrozenPlan>>();
    assert_send_sync::<NormalizedStages>();
    assert_send_sync::<Arc<NormalizedStages>>();
};

/// Every dataset query (sampled) evaluated three ways on every graph of a
/// small pool: thawed frozen plan vs. freshly lowered plan must be
/// row-identical (same evaluation code path, so even row order agrees), and
/// both must be bag-equal to the interpreter (whose row order is its own).
#[test]
fn frozen_plans_evaluate_identically_to_fresh_plans_and_the_interpreter() {
    let mut graphs = vec![PropertyGraph::paper_example()];
    graphs.extend(GraphGenerator::new(7).generate_many(8));
    let mut queries: Vec<String> = Vec::new();
    for pair in cyeqset::cyeqset().into_iter().step_by(4) {
        queries.push(pair.left);
        queries.push(pair.right);
    }
    for pair in cyeqset::cyneqset().into_iter().step_by(4) {
        queries.push(pair.left);
        queries.push(pair.right);
    }
    let mut checked = 0usize;
    for text in &queries {
        let Ok(query) = cypher_parser::parse_query(text) else { continue };
        let frozen = FrozenPlan::new(&query);
        let thawed = frozen.thaw();
        let fresh = QueryPlan::new(frozen.query());
        for graph in &graphs {
            // Some dataset queries use features the evaluator rejects; a
            // rejection must be consistent across all three paths.
            let via_thaw = Evaluator::new().evaluate_planned(graph, frozen.query(), &thawed);
            let via_fresh = Evaluator::new().evaluate_planned(graph, frozen.query(), &fresh);
            let interpreted = evaluate_query_interpreted(graph, frozen.query());
            match (via_thaw, via_fresh, interpreted) {
                (Ok(thawed_rows), Ok(fresh_rows), Ok(interpreted_rows)) => {
                    assert_eq!(
                        thawed_rows, fresh_rows,
                        "thawed plan diverged from a fresh plan for {text} on {graph}"
                    );
                    assert!(
                        thawed_rows.bag_equal(&interpreted_rows),
                        "planned evaluation diverged from the interpreter for {text} on {graph}"
                    );
                    checked += 1;
                }
                (Err(_), Err(_), Err(_)) => {}
                (thawed_result, fresh_result, interpreted_result) => panic!(
                    "inconsistent evaluability for {text} on {graph}: thawed={:?} fresh={:?} \
                     interpreted={:?}",
                    thawed_result.is_ok(),
                    fresh_result.is_ok(),
                    interpreted_result.is_ok()
                ),
            }
        }
    }
    assert!(checked > 100, "the differential sweep barely ran: {checked} evaluations");
}

/// The shared normalize/build cache serves the same memoized entry to
/// concurrent provers, and the memoized build equals a fresh one.
#[test]
fn normalized_stages_are_shared_and_consistent_across_threads() {
    let query =
        parse_check_cached("MATCH (fs_shared)-[r:R]->(m:Label) RETURN fs_shared.p").unwrap();
    let baseline = graphqe::normalized_stages(&query).expect("normalization must succeed");
    let expected_build = baseline.build().expect("build must succeed");
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let query = Arc::clone(&query);
            let expected = expected_build.clone();
            std::thread::spawn(move || {
                let stages = graphqe::normalized_stages(&query).unwrap();
                assert_eq!(stages.build().unwrap(), expected);
                stages
            })
        })
        .collect();
    for handle in handles {
        let stages = handle.join().unwrap();
        assert!(
            Arc::ptr_eq(&stages, &baseline),
            "threads must receive the same shared cache entry"
        );
    }
    assert_eq!(gexpr::build_query(baseline.normalized()).unwrap(), expected_build);
}

/// Two batch workers drive the full corpora through every shared cache at
/// once; the verdict totals must stay pinned to the sequential expectations.
/// (The per-dataset totals are the same EXPECTED_VERDICTS the benchmark
/// gates on: CyEqSet 138/0/10, CyNeqSet 0/121/27.)
#[test]
fn two_workers_prove_the_full_corpus_with_pinned_verdicts() {
    let prover = GraphQE::new();
    let (_, normalize_misses_before) = normalize_cache_stats();
    type Corpus = (&'static str, Vec<cyeqset::QueryPair>, (usize, usize, usize));
    let corpora: [Corpus; 2] = [
        ("cyeqset", cyeqset::cyeqset(), (138, 0, 10)),
        ("cyneqset", cyeqset::cyneqset(), (0, 121, 27)),
    ];
    for (name, pairs, expected) in corpora {
        let inputs: Vec<(String, String)> =
            pairs.into_iter().map(|pair| (pair.left, pair.right)).collect();
        let verdicts = prover.prove_batch_with_threads(&inputs, 2);
        let mut counts = (0usize, 0usize, 0usize);
        for verdict in &verdicts {
            if verdict.is_equivalent() {
                counts.0 += 1;
            } else if verdict.is_not_equivalent() {
                counts.1 += 1;
            } else {
                counts.2 += 1;
            }
        }
        assert_eq!(
            counts, expected,
            "{name} (equivalent, not_equivalent, unknown) drifted under 2 workers"
        );
    }
    // The run flowed through the shared substrate, not around it.
    let (_, normalize_misses_after) = normalize_cache_stats();
    assert!(
        normalize_misses_after > normalize_misses_before,
        "the corpus run must populate the shared normalize cache"
    );
}
