//! # graphqe-analyzer
//!
//! Stage ⓪ of the GraphQE pipeline: a flow-sensitive static analyzer for the
//! supported Cypher fragment, run after parsing and semantic checking but
//! before normalization and proving.
//!
//! The analyzer walks the clause sequence of each query, tracking a typed
//! scope per clause (`MATCH` binds entities, `OPTIONAL MATCH` binds nullable
//! entities, `UNWIND` binds list elements, `WITH`/`RETURN` re-scope), and
//! produces
//!
//! * a [`TypeSig`] per output column — name, inferred [`Type`] lattice
//!   element, and nullability — combined into an [`Analysis`];
//! * coded, spanned [`Diagnostic`]s (shared with `cypher-parser`) for
//!   *definitely* ill-typed constructs (`UNWIND` over a non-list, `WHERE` on
//!   a non-boolean, arithmetic over entities, non-integer `LIMIT`/`SKIP`);
//! * helper predicates consumed by the prover: [`signatures_discriminate`]
//!   (the signature-discrimination fast path) and [`int_hint_columns`]
//!   (typing facts handed to the SMT encoding).
//!
//! Inference is deliberately conservative: a claim is only made when it
//! holds for **every** evaluation of the query under the reference
//! evaluator's semantics (e.g. integer arithmetic is typed `Integer` but
//! *nullable*, because the evaluator degrades overflow and division by zero
//! to `NULL`). Anything uncertain is `Any`/nullable, which can never
//! discriminate and never produces a typing hint — the analyzer may make
//! verdicts faster or reject genuinely ill-typed inputs, never flip one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use cypher_parser::ast::{
    Aggregate, BinaryOp, Clause, Expr, Literal, Projection, Query, SingleQuery, UnaryOp,
};
use cypher_parser::{Diagnostic, Span};

/// The type lattice of the analyzer. `Any` is the top element: it carries no
/// information and is compatible with every other type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// Unknown / mixed (top of the lattice).
    Any,
    /// A graph node.
    Node,
    /// A graph relationship.
    Relationship,
    /// A path (alternating node/relationship trace).
    Path,
    /// A 64-bit integer.
    Integer,
    /// A 64-bit float.
    Float,
    /// A string.
    String,
    /// A boolean.
    Boolean,
    /// A list.
    List,
    /// A map.
    Map,
}

impl Type {
    /// Least upper bound: equal types join to themselves, everything else
    /// joins to `Any`.
    pub fn join(self, other: Type) -> Type {
        if self == other {
            self
        } else {
            Type::Any
        }
    }

    /// Whether a value of type `self` can ever compare equal to a value of
    /// type `other`. `Any` is compatible with everything; `Integer` and
    /// `Float` are mutually compatible (the evaluator's value equality
    /// compares numbers across the two representations); otherwise only
    /// equal types are compatible.
    pub fn compatible(self, other: Type) -> bool {
        self == Type::Any
            || other == Type::Any
            || self == other
            || matches!((self, other), (Type::Integer, Type::Float) | (Type::Float, Type::Integer))
    }

    /// `true` for graph entities (nodes, relationships, paths).
    pub fn is_entity(self) -> bool {
        matches!(self, Type::Node | Type::Relationship | Type::Path)
    }

    /// `true` for `Integer` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, Type::Integer | Type::Float)
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Type::Any => "Any",
            Type::Node => "Node",
            Type::Relationship => "Relationship",
            Type::Path => "Path",
            Type::Integer => "Integer",
            Type::Float => "Float",
            Type::String => "String",
            Type::Boolean => "Boolean",
            Type::List => "List",
            Type::Map => "Map",
        };
        f.write_str(name)
    }
}

/// The inferred signature of one output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeSig {
    /// The column name (alias or textual form of the projected expression).
    pub name: String,
    /// The inferred type lattice element.
    pub ty: Type,
    /// Whether the column can evaluate to `NULL` on some graph.
    pub nullable: bool,
}

/// The result of analyzing one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Per-column output signature, in column order. `None` when the
    /// signature is not statically determined (`RETURN *`, or `UNION` parts
    /// with differing arity — the latter is reported by the G-expression
    /// builder, not here).
    pub signature: Option<Vec<TypeSig>>,
}

/// A typed binding: the inferred type plus nullability of one variable.
type Binding = (Type, bool);

/// The typed scope visible at one point of the clause sequence.
#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: BTreeMap<String, Binding>,
}

impl Scope {
    fn get(&self, name: &str) -> Binding {
        self.bindings.get(name).copied().unwrap_or((Type::Any, true))
    }

    fn set(&mut self, name: &str, binding: Binding) {
        self.bindings.insert(name.to_string(), binding);
    }
}

/// Analyzes a query: infers the output signature and reports definite type
/// errors. Diagnostics carry clause-level spans (no source text available).
pub fn analyze(query: &Query) -> Result<Analysis, Diagnostic> {
    analyze_inner(query, None)
}

/// Analyzes a query, narrowing diagnostic spans using the original text.
pub fn analyze_with_source(query: &Query, source: &str) -> Result<Analysis, Diagnostic> {
    analyze_inner(query, Some(source))
}

fn analyze_inner(query: &Query, _source: Option<&str>) -> Result<Analysis, Diagnostic> {
    let Some((first, rest)) = query.parts.split_first() else {
        return Ok(Analysis { signature: None });
    };
    let mut signature = analyze_single(first, &Scope::default())?;
    for part in rest {
        let part_sig = analyze_single(part, &Scope::default())?;
        signature = match (signature, part_sig) {
            (Some(acc), Some(sig)) if acc.len() == sig.len() => Some(
                acc.iter()
                    .zip(sig.iter())
                    .map(|(a, b)| TypeSig {
                        name: a.name.clone(),
                        ty: a.ty.join(b.ty),
                        nullable: a.nullable || b.nullable,
                    })
                    .collect(),
            ),
            // `RETURN *` in any part, or a UNION arity mismatch (the builder
            // reports the latter as its own error): no static signature.
            _ => None,
        };
    }
    Ok(Analysis { signature })
}

fn analyze_single(query: &SingleQuery, outer: &Scope) -> Result<Option<Vec<TypeSig>>, Diagnostic> {
    let mut scope = outer.clone();
    let mut signature = None;
    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                // A non-optional MATCH re-binding a variable filters out the
                // NULL case; an OPTIONAL MATCH over an already non-null
                // binding joins on it and keeps it non-null.
                let bind = |scope: &mut Scope, var: &str, ty: Type| {
                    let nullable = m.optional && scope.bindings.get(var).is_none_or(|(_, n)| *n);
                    scope.set(var, (ty, nullable));
                };
                for pattern in &m.patterns {
                    if let Some(path_var) = &pattern.variable {
                        bind(&mut scope, path_var, Type::Path);
                    }
                    for node in pattern.nodes() {
                        if let Some(var) = &node.variable {
                            bind(&mut scope, var, Type::Node);
                        }
                    }
                    for rel in pattern.relationships() {
                        if let Some(var) = &rel.variable {
                            bind(&mut scope, var, Type::Relationship);
                        }
                    }
                }
                if let Some(predicate) = &m.where_clause {
                    check_predicate(predicate, &scope, m.span)?;
                }
            }
            Clause::Unwind(u) => {
                let element = unwind_element_type(&u.expr, &scope, u.span)?;
                scope.set(&u.alias, element);
            }
            Clause::With(w) => {
                check_projection_bounds(&w.projection, &scope)?;
                scope = projected_scope(&w.projection, &scope, w.span)?;
                if let Some(predicate) = &w.where_clause {
                    check_predicate(predicate, &scope, w.span)?;
                }
            }
            Clause::Return(p) => {
                check_projection_bounds(p, &scope)?;
                signature = match p.explicit_items() {
                    None => None, // RETURN *: no static signature.
                    Some(items) => {
                        let mut sig = Vec::new();
                        for item in items {
                            let (ty, nullable) = type_of(&item.expr, &scope, p.span)?;
                            sig.push(TypeSig { name: item.output_name(), ty, nullable });
                        }
                        Some(sig)
                    }
                };
            }
        }
    }
    Ok(signature)
}

/// The element type bound by `UNWIND <expr> AS x`. Rejects expressions that
/// are definitely not lists.
fn unwind_element_type(expr: &Expr, scope: &Scope, span: Span) -> Result<Binding, Diagnostic> {
    if let Expr::List(items) = expr {
        let mut ty = None;
        let mut nullable = false;
        for item in items {
            // A NULL element contributes nullability but does not destroy
            // the element type claim of the remaining elements.
            if matches!(item, Expr::Literal(Literal::Null)) {
                nullable = true;
                continue;
            }
            let (item_ty, item_nullable) = type_of(item, scope, span)?;
            nullable |= item_nullable;
            ty = Some(match ty {
                None => item_ty,
                Some(acc) => Type::join(acc, item_ty),
            });
        }
        return Ok((ty.unwrap_or(Type::Any), nullable));
    }
    let (ty, _) = type_of(expr, scope, span)?;
    match ty {
        Type::List | Type::Any => Ok((Type::Any, true)),
        other => Err(Diagnostic::new(
            "type_mismatch",
            span,
            format!("UNWIND requires a list, but the expression has type {other}"),
        )),
    }
}

/// Checks `ORDER BY` keys for type errors and `SKIP`/`LIMIT` for
/// integer-ness.
fn check_projection_bounds(projection: &Projection, scope: &Scope) -> Result<(), Diagnostic> {
    for order in &projection.order_by {
        type_of(&order.expr, scope, projection.span)?;
    }
    for (what, expr) in [("SKIP", projection.skip.as_ref()), ("LIMIT", projection.limit.as_ref())] {
        if let Some(expr) = expr {
            let (ty, _) = type_of(expr, scope, projection.span)?;
            if !matches!(ty, Type::Integer | Type::Any) {
                return Err(Diagnostic::new(
                    "type_mismatch",
                    projection.span,
                    format!("{what} requires an integer, but the expression has type {ty}"),
                ));
            }
        }
    }
    Ok(())
}

/// The scope visible after a `WITH` projection.
fn projected_scope(
    projection: &Projection,
    current: &Scope,
    span: Span,
) -> Result<Scope, Diagnostic> {
    match projection.explicit_items() {
        None => Ok(current.clone()), // WITH *
        Some(items) => {
            let mut scope = Scope::default();
            for item in items {
                let binding = type_of(&item.expr, current, span)?;
                let name = item.output_name();
                scope.set(&name, binding);
            }
            Ok(scope)
        }
    }
}

/// Checks a `WHERE` predicate: definitely non-boolean expressions are
/// rejected (three-valued `NULL` predicates are fine — they drop the row).
fn check_predicate(expr: &Expr, scope: &Scope, span: Span) -> Result<(), Diagnostic> {
    let (ty, _) = type_of(expr, scope, span)?;
    if !matches!(ty, Type::Boolean | Type::Any) {
        return Err(Diagnostic::new(
            "type_mismatch",
            span,
            format!("WHERE requires a boolean predicate, but the expression has type {ty}"),
        ));
    }
    Ok(())
}

/// Flow-insensitive expression typing under a typed scope. Returns the
/// inferred type and nullability; reports *definite* type errors.
fn type_of(expr: &Expr, scope: &Scope, span: Span) -> Result<Binding, Diagnostic> {
    Ok(match expr {
        Expr::Literal(Literal::Integer(_)) => (Type::Integer, false),
        Expr::Literal(Literal::Float(_)) => (Type::Float, false),
        Expr::Literal(Literal::String(_)) => (Type::String, false),
        Expr::Literal(Literal::Boolean(_)) => (Type::Boolean, false),
        Expr::Literal(Literal::Null) => (Type::Any, true),
        Expr::Variable(name) => scope.get(name),
        Expr::Parameter(_) => (Type::Any, true),
        // Property values are untyped (schema-less graphs) and absent
        // properties are NULL.
        Expr::Property(base, _) => {
            type_of(base, scope, span)?;
            (Type::Any, true)
        }
        Expr::Unary(op, inner) => {
            let (ty, nullable) = type_of(inner, scope, span)?;
            match op {
                UnaryOp::Pos => (ty, nullable),
                UnaryOp::Neg => {
                    reject_non_numeric("unary minus", ty, span)?;
                    match ty {
                        // Negation of i64::MIN overflows to NULL.
                        Type::Integer => (Type::Integer, true),
                        Type::Float => (Type::Float, nullable),
                        _ => (Type::Any, true),
                    }
                }
                UnaryOp::Not => {
                    if !matches!(ty, Type::Boolean | Type::Any) {
                        return Err(Diagnostic::new(
                            "type_mismatch",
                            span,
                            format!("NOT requires a boolean operand, found {ty}"),
                        ));
                    }
                    (Type::Boolean, if ty == Type::Boolean { nullable } else { true })
                }
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let left = type_of(lhs, scope, span)?;
            let right = type_of(rhs, scope, span)?;
            binary_type(*op, left, right, span)?
        }
        Expr::IsNull { expr, .. } => {
            type_of(expr, scope, span)?;
            (Type::Boolean, false)
        }
        Expr::List(items) => {
            for item in items {
                type_of(item, scope, span)?;
            }
            (Type::List, false)
        }
        Expr::Map(entries) => {
            for (_, value) in entries {
                type_of(value, scope, span)?;
            }
            (Type::Map, false)
        }
        Expr::FunctionCall { name, args } => {
            let mut arg_types = Vec::new();
            for arg in args {
                arg_types.push(type_of(arg, scope, span)?);
            }
            function_type(name, &arg_types)
        }
        Expr::AggregateCall { func, arg, .. } => {
            let arg_type = type_of(arg, scope, span)?;
            aggregate_type(*func, arg_type)
        }
        Expr::CountStar { .. } => (Type::Integer, false),
        Expr::Exists(query) => {
            for part in &query.parts {
                analyze_single(part, scope)?;
            }
            (Type::Boolean, false)
        }
        Expr::Case { branches, otherwise } => {
            let mut ty = None;
            let mut nullable = otherwise.is_none();
            for (cond, value) in branches {
                check_predicate(cond, scope, span)?;
                let (value_ty, value_nullable) = type_of(value, scope, span)?;
                nullable |= value_nullable;
                ty = Some(match ty {
                    None => value_ty,
                    Some(acc) => Type::join(acc, value_ty),
                });
            }
            if let Some(e) = otherwise {
                let (value_ty, value_nullable) = type_of(e, scope, span)?;
                nullable |= value_nullable;
                ty = Some(match ty {
                    None => value_ty,
                    Some(acc) => Type::join(acc, value_ty),
                });
            }
            (ty.unwrap_or(Type::Any), nullable)
        }
    })
}

fn reject_non_numeric(what: &str, ty: Type, span: Span) -> Result<(), Diagnostic> {
    if ty.is_entity() || matches!(ty, Type::Boolean | Type::Map) {
        return Err(Diagnostic::new(
            "type_mismatch",
            span,
            format!("{what} is not defined for values of type {ty}"),
        ));
    }
    Ok(())
}

fn binary_type(
    op: BinaryOp,
    (lt, ln): Binding,
    (rt, rn): Binding,
    span: Span,
) -> Result<Binding, Diagnostic> {
    let nullable = ln || rn;
    Ok(match op {
        BinaryOp::Add => {
            reject_non_numeric_operand("+", lt, rt, span, /*strings_and_lists_ok=*/ true)?;
            match (lt, rt) {
                // Integer addition can overflow to NULL.
                (Type::Integer, Type::Integer) => (Type::Integer, true),
                (Type::String, Type::String) => (Type::String, nullable),
                (Type::List, Type::List) => (Type::List, nullable),
                (a, b) if a.is_numeric() && b.is_numeric() => (Type::Float, nullable),
                _ => (Type::Any, true),
            }
        }
        BinaryOp::Sub | BinaryOp::Mul => {
            reject_non_numeric_operand(op_name(op), lt, rt, span, false)?;
            match (lt, rt) {
                (Type::Integer, Type::Integer) => (Type::Integer, true),
                (a, b) if a.is_numeric() && b.is_numeric() => (Type::Float, nullable),
                _ => (Type::Any, true),
            }
        }
        BinaryOp::Div | BinaryOp::Mod => {
            reject_non_numeric_operand(op_name(op), lt, rt, span, false)?;
            match (lt, rt) {
                // Integer division/modulo by zero degrade to NULL.
                (Type::Integer, Type::Integer) => (Type::Integer, true),
                (a, b) if a.is_numeric() && b.is_numeric() => (Type::Float, nullable),
                _ => (Type::Any, true),
            }
        }
        BinaryOp::Pow => {
            reject_non_numeric_operand("^", lt, rt, span, false)?;
            if lt.is_numeric() && rt.is_numeric() {
                (Type::Float, nullable)
            } else {
                (Type::Float, true)
            }
        }
        BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
            for ty in [lt, rt] {
                if !matches!(ty, Type::Boolean | Type::Any) {
                    return Err(Diagnostic::new(
                        "type_mismatch",
                        span,
                        format!("{} requires boolean operands, found {ty}", op_name(op)),
                    ));
                }
            }
            // Three-valued logic: NULL operands can produce NULL.
            (Type::Boolean, nullable)
        }
        // Comparisons are total across types in the evaluator (values have a
        // total order), so they never raise a static error; NULL operands
        // yield NULL.
        BinaryOp::Eq
        | BinaryOp::Neq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge => (Type::Boolean, nullable),
        BinaryOp::In | BinaryOp::StartsWith | BinaryOp::EndsWith | BinaryOp::Contains => {
            (Type::Boolean, true)
        }
    })
}

fn op_name(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
        BinaryOp::Pow => "^",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Xor => "XOR",
        _ => "comparison",
    }
}

fn reject_non_numeric_operand(
    what: &str,
    lt: Type,
    rt: Type,
    span: Span,
    strings_and_lists_ok: bool,
) -> Result<(), Diagnostic> {
    for ty in [lt, rt] {
        let bad = ty.is_entity()
            || matches!(ty, Type::Boolean | Type::Map)
            || (!strings_and_lists_ok && matches!(ty, Type::String | Type::List));
        if bad {
            return Err(Diagnostic::new(
                "type_mismatch",
                span,
                format!("operator {what} is not defined for values of type {ty}"),
            ));
        }
    }
    Ok(())
}

/// Result types of the built-in scalar functions, matching the reference
/// evaluator: a claim tighter than `Any`/nullable is only made when the
/// evaluator guarantees it for the given argument types.
fn function_type(name: &str, args: &[Binding]) -> Binding {
    use cypher_parser::BuiltinFunction as F;
    let arg = |i: usize| args.get(i).copied().unwrap_or((Type::Any, true));
    let Some(function) = F::from_name(name) else { return (Type::Any, true) };
    match function {
        F::Id => match arg(0) {
            (Type::Node | Type::Relationship, false) => (Type::Integer, false),
            _ => (Type::Any, true),
        },
        F::Labels => match arg(0) {
            (Type::Node, false) => (Type::List, false),
            _ => (Type::Any, true),
        },
        F::Type => match arg(0) {
            (Type::Relationship, false) => (Type::String, false),
            _ => (Type::Any, true),
        },
        F::Size => match arg(0) {
            (Type::List | Type::String, false) => (Type::Integer, false),
            _ => (Type::Any, true),
        },
        F::Length => match arg(0) {
            (Type::Path | Type::List | Type::String, false) => (Type::Integer, false),
            _ => (Type::Any, true),
        },
        F::Head | F::Last | F::Index => (Type::Any, true),
        F::Abs => match arg(0) {
            (Type::Integer, false) => (Type::Integer, false),
            (Type::Float, false) => (Type::Float, false),
            _ => (Type::Any, true),
        },
        F::ToUpper | F::ToLower => match arg(0) {
            (Type::String, false) => (Type::String, false),
            _ => (Type::Any, true),
        },
        F::Coalesce => {
            let mut ty = None;
            let mut nullable = true;
            for (arg_ty, arg_nullable) in args {
                ty = Some(match ty {
                    None => *arg_ty,
                    Some(acc) => Type::join(acc, *arg_ty),
                });
                if !arg_nullable {
                    nullable = false;
                    break;
                }
            }
            (ty.unwrap_or(Type::Any), nullable)
        }
        F::Exists => (Type::Boolean, false),
        F::StartNode | F::EndNode => match arg(0) {
            (Type::Relationship, false) => (Type::Node, false),
            _ => (Type::Any, true),
        },
    }
}

/// Result types of aggregates, matching the reference evaluator: `COUNT` is
/// always a non-null integer, `COLLECT` a non-null list; `SUM` over an
/// integer argument stays integer but can overflow to NULL; `MIN`/`MAX` of
/// an empty group and `AVG` of an empty group are NULL.
fn aggregate_type(func: Aggregate, (arg_ty, _): Binding) -> Binding {
    match func {
        Aggregate::Count => (Type::Integer, false),
        Aggregate::Collect => (Type::List, false),
        Aggregate::Sum => match arg_ty {
            Type::Integer => (Type::Integer, true),
            _ => (Type::Any, true),
        },
        Aggregate::Min | Aggregate::Max => match arg_ty {
            Type::Any => (Type::Any, true),
            ty => (ty, true),
        },
        Aggregate::Avg => (Type::Float, true),
    }
}

// ---------------------------------------------------------------------------
// Prover-facing helpers
// ---------------------------------------------------------------------------

/// Whether two column signatures can *never* belong to equivalent queries
/// that return at least one row: the arities differ, or no bijection between
/// the columns pairs compatible signatures (the prover admits column
/// permutations, so a positional check would be too strong).
///
/// This is a necessary condition for non-equivalence, not a sufficient one —
/// two queries that both return the empty bag on every graph are equivalent
/// regardless of their signatures. The prover therefore only uses a
/// discriminating signature to *prioritize* the counterexample search; the
/// NOT_EQUIVALENT verdict still requires a concrete witness.
pub fn signatures_discriminate(left: &[TypeSig], right: &[TypeSig]) -> bool {
    if left.len() != right.len() {
        return true;
    }
    !compatible_bijection_exists(left, right)
}

/// Whether a column of signature `a` can ever hold the same value as a
/// column of signature `b`: compatible types, or both nullable (two NULLs
/// compare equal).
pub fn columns_compatible(a: &TypeSig, b: &TypeSig) -> bool {
    a.ty.compatible(b.ty) || (a.nullable && b.nullable)
}

fn compatible_bijection_exists(left: &[TypeSig], right: &[TypeSig]) -> bool {
    fn recurse(left: &[TypeSig], right: &[TypeSig], used: &mut [bool], position: usize) -> bool {
        if position == left.len() {
            return true;
        }
        for candidate in 0..right.len() {
            if !used[candidate] && columns_compatible(&left[position], &right[candidate]) {
                used[candidate] = true;
                if recurse(left, right, used, position + 1) {
                    return true;
                }
                used[candidate] = false;
            }
        }
        false
    }
    let mut used = vec![false; right.len()];
    recurse(left, right, &mut used, 0)
}

/// The columns that are provably integer-valued and non-null on **both**
/// sides under the identity alignment — the typing facts the prover feeds
/// into SMT term construction (integer-sorted output variables).
pub fn int_hint_columns(left: &[TypeSig], right: &[TypeSig]) -> Vec<usize> {
    if left.len() != right.len() {
        return Vec::new();
    }
    (0..left.len())
        .filter(|&i| {
            left[i].ty == Type::Integer
                && !left[i].nullable
                && right[i].ty == Type::Integer
                && !right[i].nullable
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn sig(text: &str) -> Vec<TypeSig> {
        analyze(&parse_query(text).expect("syntax"))
            .expect("analysis")
            .signature
            .expect("signature")
    }

    fn err(text: &str) -> Diagnostic {
        analyze(&parse_query(text).expect("syntax")).expect_err("expected a type error")
    }

    #[test]
    fn match_binds_entities_non_null() {
        let s = sig("MATCH (a)-[r]->(b) RETURN a, r, b");
        assert_eq!(s.len(), 3);
        assert_eq!((s[0].ty, s[0].nullable), (Type::Node, false));
        assert_eq!((s[1].ty, s[1].nullable), (Type::Relationship, false));
        assert_eq!(s[0].name, "a");
    }

    #[test]
    fn optional_match_binds_nullable_entities() {
        let s = sig("MATCH (a) OPTIONAL MATCH (a)-[r]->(b) RETURN a, b");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Node, false));
        assert_eq!((s[1].ty, s[1].nullable), (Type::Node, true));
    }

    #[test]
    fn rematch_after_optional_filters_null() {
        let s = sig("MATCH (a) OPTIONAL MATCH (a)-[r]->(b) MATCH (b) RETURN b");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Node, false));
    }

    #[test]
    fn unwind_integer_literals_are_non_null_integers() {
        let s = sig("UNWIND [1, 2, 3] AS x RETURN x");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, false));
        let s = sig("UNWIND [1, null] AS x RETURN x");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, true));
        let s = sig("UNWIND [1, 'a'] AS x RETURN x");
        assert_eq!(s[0].ty, Type::Any);
    }

    #[test]
    fn unwind_over_definite_scalar_is_rejected() {
        let d = err("UNWIND 1 AS x RETURN x");
        assert_eq!(d.code, "type_mismatch");
        assert!(d.message.contains("UNWIND requires a list"), "{}", d.message);
    }

    #[test]
    fn where_on_definite_non_boolean_is_rejected() {
        let d = err("MATCH (n) WHERE 1 RETURN n");
        assert_eq!(d.code, "type_mismatch");
        assert!(d.message.contains("WHERE requires a boolean"), "{}", d.message);
        // NULL-able predicates (three-valued logic) are fine.
        assert!(analyze(&parse_query("MATCH (n) WHERE n.age > 1 RETURN n").unwrap()).is_ok());
    }

    #[test]
    fn arithmetic_over_entities_is_rejected() {
        let d = err("MATCH (n) RETURN n + 1");
        assert_eq!(d.code, "type_mismatch");
        let d = err("MATCH (n)-[r]->(m) RETURN r * 2");
        assert_eq!(d.code, "type_mismatch");
    }

    #[test]
    fn non_integer_limit_is_rejected() {
        let d = err("MATCH (n) RETURN n LIMIT 'five'");
        assert_eq!(d.code, "type_mismatch");
        assert!(analyze(&parse_query("MATCH (n) RETURN n LIMIT 5").unwrap()).is_ok());
    }

    #[test]
    fn with_rescopes_types() {
        let s = sig("MATCH (n) WITH n.age AS age, 1 AS one RETURN age, one");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Any, true));
        assert_eq!((s[1].ty, s[1].nullable), (Type::Integer, false));
    }

    #[test]
    fn aggregates_are_typed() {
        let s = sig("MATCH (n) RETURN COUNT(*), COUNT(n), COLLECT(n.age), AVG(n.age)");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, false));
        assert_eq!((s[1].ty, s[1].nullable), (Type::Integer, false));
        assert_eq!((s[2].ty, s[2].nullable), (Type::List, false));
        assert_eq!((s[3].ty, s[3].nullable), (Type::Float, true));
    }

    #[test]
    fn integer_arithmetic_is_nullable_by_overflow() {
        // The evaluator degrades overflow and division by zero to NULL, so
        // arithmetic results must never be claimed non-null.
        let s = sig("UNWIND [1, 2] AS x RETURN x + 1, x / 0");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, true));
        assert_eq!((s[1].ty, s[1].nullable), (Type::Integer, true));
    }

    #[test]
    fn functions_are_typed_from_argument_types() {
        let s = sig("MATCH (a)-[r]->(b) RETURN id(a), type(r), labels(a), size('xy')");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, false));
        assert_eq!((s[1].ty, s[1].nullable), (Type::String, false));
        assert_eq!((s[2].ty, s[2].nullable), (Type::List, false));
        assert_eq!((s[3].ty, s[3].nullable), (Type::Integer, false));
        // A nullable argument degrades the claim.
        let s = sig("MATCH (a) OPTIONAL MATCH (a)-[r]->(b) RETURN id(b)");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Any, true));
    }

    #[test]
    fn return_star_has_no_signature() {
        let analysis = analyze(&parse_query("MATCH (n) RETURN *").unwrap()).unwrap();
        assert_eq!(analysis.signature, None);
    }

    #[test]
    fn union_joins_column_signatures() {
        let s = sig("MATCH (n) RETURN n.age AS v UNION ALL UNWIND [1] AS x RETURN x AS v");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Any, true));
        let s = sig("UNWIND [1] AS x RETURN x UNION ALL UNWIND [2] AS y RETURN y");
        assert_eq!((s[0].ty, s[0].nullable), (Type::Integer, false));
    }

    #[test]
    fn union_arity_mismatch_yields_no_signature() {
        let analysis = analyze(
            &parse_query("MATCH (n) RETURN n UNION ALL MATCH (n) RETURN n, n.age").unwrap(),
        )
        .unwrap();
        assert_eq!(analysis.signature, None);
    }

    #[test]
    fn discrimination_requires_incompatible_bijection() {
        let int = |name: &str| TypeSig { name: name.into(), ty: Type::Integer, nullable: false };
        let string = |name: &str| TypeSig { name: name.into(), ty: Type::String, nullable: false };
        let any = |name: &str| TypeSig { name: name.into(), ty: Type::Any, nullable: true };

        // Arity mismatch discriminates.
        assert!(signatures_discriminate(&[int("a")], &[int("a"), int("b")]));
        // Disjoint non-null types discriminate.
        assert!(signatures_discriminate(&[int("a")], &[string("b")]));
        // Any never discriminates.
        assert!(!signatures_discriminate(&[int("a")], &[any("b")]));
        // Column order does not matter (the prover permutes columns).
        assert!(!signatures_discriminate(&[int("a"), string("b")], &[string("x"), int("y")]));
        // ... but a genuinely unmatchable column still discriminates.
        assert!(signatures_discriminate(&[int("a"), string("b")], &[string("x"), string("y")]));
        // Two nullable columns are always compatible (NULL = NULL).
        let nullable_int = TypeSig { name: "a".into(), ty: Type::Integer, nullable: true };
        let nullable_str = TypeSig { name: "b".into(), ty: Type::String, nullable: true };
        assert!(!signatures_discriminate(
            std::slice::from_ref(&nullable_int),
            std::slice::from_ref(&nullable_str)
        ));
    }

    #[test]
    fn int_hint_columns_require_both_sides_non_null_integer() {
        let left = sig("UNWIND [1, 2] AS x RETURN x, x + 1");
        let right = sig("UNWIND [2, 1] AS y RETURN y, y + 1");
        // Column 0 is Integer & non-null on both sides; column 1 is Integer
        // but nullable (overflow), so it gets no hint.
        assert_eq!(int_hint_columns(&left, &right), vec![0]);
    }

    #[test]
    fn equivalent_rewrites_never_discriminate() {
        // A conservative sanity check mirroring the corpus-wide test in the
        // core crate: syntactic rewrites that preserve semantics must never
        // produce discriminating signatures.
        let pairs = [
            ("MATCH (n) RETURN n.age", "MATCH (m) RETURN m.age"),
            ("UNWIND [1, 2] AS x RETURN x", "UNWIND [2, 1] AS y RETURN y"),
            ("MATCH (n) RETURN n.a, COUNT(*)", "MATCH (n) RETURN COUNT(*) AS c, n.a"),
        ];
        for (q1, q2) in pairs {
            let s1 = sig(q1);
            let s2 = sig(q2);
            assert!(!signatures_discriminate(&s1, &s2), "{q1} vs {q2}");
        }
    }
}
