//! # smt
//!
//! A from-scratch SMT solver used as the decision substrate of GraphQE-rs
//! (substituting for Z3, which the paper uses; see DESIGN.md for the
//! substitution rationale).
//!
//! The solver decides quantifier-free formulas over **EUF** (equality with
//! uninterpreted functions) and **LIA** (linear integer arithmetic) — exactly
//! the fragment the LIA\*-based decision procedure of the paper produces
//! after eliminating unbounded summations. The architecture is the classic
//! lazy DPLL(T) loop:
//!
//! * [`sat`] — a CDCL SAT solver (watched literals, 1UIP learning,
//!   non-chronological backjumping);
//! * [`cnf`] — Tseitin transformation with theory-atom abstraction;
//! * [`euf`] — congruence closure;
//! * [`lia`] — Fourier–Motzkin based consistency with integer case splits;
//! * [`solver`] — the combination loop and the public [`Solver`] API.
//!
//! `Unsat` answers are sound; `Sat` answers may over-approximate (see the
//! module docs of [`solver`]), which can only make the equivalence prover
//! less complete, never unsound.
//!
//! ```
//! use smt::{Solver, Term};
//!
//! let mut solver = Solver::new();
//! let x = Term::int_var("x");
//! solver.assert(Term::le(x.clone(), Term::int(3)));
//! solver.assert(Term::ge(x, Term::int(5)));
//! assert!(solver.check().is_unsat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod euf;
pub mod lia;
pub mod sat;
pub mod solver;
pub mod term;

pub use euf::{CongruenceClosure, TheoryResult};
pub use lia::{LiaProblem, LinearConstraint};
pub use sat::{Lit, SatOutcome, SatSolver};
pub use solver::{
    check_formula, check_formula_cached, clear_formula_cache, formula_cache_len,
    formula_cache_stats, is_valid, is_valid_cached, reset_formula_cache_stats, Model, SmtResult,
    Solver,
};
pub use term::{Sort, SortTag, Term};
