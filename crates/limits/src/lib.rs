//! # limits
//!
//! Cooperative resource budgets, deadlines and cancellation for the prover
//! pipeline — the failure-domain substrate under `graphqe`'s `ProveLimits`.
//!
//! The design is a cheap shared [`RunToken`] (a deadline `Instant`, a cancel
//! `AtomicBool`, and per-resource step counters) installed as a thread-local
//! **ambient token** for the duration of one proof. Long-running loops across
//! the workspace — the normalizer's rule fixpoint, `liastar::decide`'s
//! summand processing, the SMT solver's CDCL refinement loop, the
//! counterexample search's per-graph loop — call the free functions
//! [`checkpoint`], [`smt_step`] and [`search_step`] cooperatively. With no
//! token installed (the default), every call is a thread-local probe that
//! returns `Ok(())`; with a token, the call charges the budget, checks the
//! deadline, and returns the first [`Trip`] once any limit is exceeded.
//!
//! A trip is **sticky**: the first recorded trip wins (later stages report
//! the original cause, not a cascade), and recording it raises the token's
//! cancel flag so every other loop sharing the token — including parallel
//! search workers — unwinds at its next checkpoint. [`cancelled`] is the
//! cheap relaxed-load probe the cache layers use to keep results computed on
//! a tripped path out of the process- and thread-wide memo caches.
//!
//! The [`faults`] module is the test-only (env- or explicitly-armed)
//! fault-injection harness: it can force a panic or an artificial stall at
//! any stage's checkpoint, or force the SMT solver to report `Unknown`.
//! Disarmed (the default), its cost is one relaxed atomic load per
//! checkpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pipeline stage a trip or an injected fault is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Stage ② — rule-based normalization (`cypher-normalizer`).
    Normalize,
    /// Stage ④ — the LIA★ decision procedure (`liastar`).
    Decide,
    /// The SMT solver's CDCL(T) refinement loop (`smt`).
    Smt,
    /// The counterexample search over concrete graphs (`graphqe`).
    Search,
}

impl Stage {
    /// All stages, in pipeline order (for test matrices).
    pub const ALL: [Stage; 4] = [Stage::Normalize, Stage::Decide, Stage::Smt, Stage::Search];

    /// Parses the lowercase stage name used by the `GRAPHQE_FAULT` syntax.
    pub fn parse(name: &str) -> Option<Stage> {
        match name {
            "normalize" => Some(Stage::Normalize),
            "decide" => Some(Stage::Decide),
            "smt" => Some(Stage::Smt),
            "search" => Some(Stage::Search),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Normalize => "normalize",
            Stage::Decide => "decide",
            Stage::Smt => "smt",
            Stage::Search => "search",
        })
    }
}

/// Why a run was cut short. The first trip recorded on a [`RunToken`] wins;
/// every later checkpoint reports the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The deadline passed; `stage` is where the expiry was detected.
    Timeout {
        /// The stage whose checkpoint observed the expired deadline.
        stage: Stage,
    },
    /// A step budget ran out at `stage`.
    BudgetExhausted {
        /// The stage whose counter crossed its budget.
        stage: Stage,
        /// The configured budget that was exceeded.
        budget: u64,
    },
    /// The token was cancelled externally via [`RunToken::cancel`].
    Cancelled,
}

impl fmt::Display for Trip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trip::Timeout { stage } => write!(f, "deadline exceeded during {stage}"),
            Trip::BudgetExhausted { stage, budget } => {
                write!(f, "{stage} budget of {budget} steps exhausted")
            }
            Trip::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// The shared cancellation/budget token of one proof run.
///
/// Cheap by construction: checking costs a relaxed atomic load, charging a
/// budget one `fetch_add`. With a deadline set, the clock is only probed on
/// every `PROBE_INTERVAL`-th check (`Instant::now()` is the expensive part
/// of a checkpoint; the worst-case detection slack of a few checkpoints is
/// noise against millisecond-scale deadlines). The token is shared via `Arc`
/// between the installing thread and any workers it spawns (see
/// [`current_token`] / [`with_token`]).
#[derive(Debug, Default)]
pub struct RunToken {
    deadline: Option<Instant>,
    /// Maximum SMT CDCL(T) refinement iterations, summed across all solver
    /// calls under this token. `0` = unlimited.
    smt_step_budget: u64,
    /// Maximum candidate graphs the counterexample search may evaluate,
    /// summed across all workers. `0` = unlimited.
    search_graph_budget: u64,
    cancelled: AtomicBool,
    smt_steps: AtomicU64,
    search_graphs: AtomicU64,
    /// Deadline checks since the token was created; the clock is probed when
    /// this hits a multiple of [`PROBE_INTERVAL`].
    checks: AtomicU64,
    trip: Mutex<Option<Trip>>,
}

/// How many deadline checks share one `Instant::now()` probe. The very first
/// check always probes (the counter starts at zero), and an injected stall
/// forces a probe regardless of the counter.
const PROBE_INTERVAL: u64 = 16;

impl RunToken {
    /// A token with no deadline and no budgets: it trips only on
    /// [`RunToken::cancel`].
    pub fn unlimited() -> RunToken {
        RunToken::default()
    }

    /// A token with the given deadline and step budgets (`0` = unlimited).
    pub fn new(deadline: Option<Instant>, smt_step_budget: u64, search_graph_budget: u64) -> Self {
        RunToken { deadline, smt_step_budget, search_graph_budget, ..RunToken::default() }
    }

    /// Requests cooperative cancellation (idempotent; an earlier trip wins).
    pub fn cancel(&self) {
        self.record_trip(Trip::Cancelled);
    }

    /// `true` once any trip was recorded. Relaxed load — this is the cheap
    /// probe the cache layers use for insert hygiene.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The first trip recorded on this token, if any.
    pub fn trip(&self) -> Option<Trip> {
        if !self.is_cancelled() {
            return None;
        }
        *self.trip.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records `trip` unless one is already recorded, raises the cancel
    /// flag, and returns the winning (first) trip.
    pub fn record_trip(&self, trip: Trip) -> Trip {
        let mut slot = self.trip.lock().unwrap_or_else(|e| e.into_inner());
        let winner = *slot.get_or_insert(trip);
        // Release so the winning trip is visible to threads that observe the
        // flag before probing the mutex.
        self.cancelled.store(true, Ordering::Release);
        winner
    }

    /// Deadline/cancellation check attributed to `stage` (clock probe
    /// subsampled — see `PROBE_INTERVAL`).
    pub fn check(&self, stage: Stage) -> Result<(), Trip> {
        self.check_forced(stage, false)
    }

    /// [`RunToken::check`] with `force_probe` bypassing the clock-probe
    /// subsampling — used after an injected stall, whose checkpoint must
    /// observe the expiry itself for exact stage attribution.
    fn check_forced(&self, stage: Stage, force_probe: bool) -> Result<(), Trip> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.trip().unwrap_or(Trip::Cancelled));
        }
        if let Some(deadline) = self.deadline {
            let probe = force_probe
                || self.checks.fetch_add(1, Ordering::Relaxed).is_multiple_of(PROBE_INTERVAL);
            if probe && Instant::now() >= deadline {
                return Err(self.record_trip(Trip::Timeout { stage }));
            }
        }
        Ok(())
    }

    /// Charges one SMT refinement iteration, then checks deadline/budget.
    pub fn tick_smt(&self) -> Result<(), Trip> {
        self.tick_smt_forced(false)
    }

    fn tick_smt_forced(&self, force_probe: bool) -> Result<(), Trip> {
        let steps = self.smt_steps.fetch_add(1, Ordering::Relaxed) + 1;
        if self.smt_step_budget != 0 && steps > self.smt_step_budget {
            return Err(self.record_trip(Trip::BudgetExhausted {
                stage: Stage::Smt,
                budget: self.smt_step_budget,
            }));
        }
        self.check_forced(Stage::Smt, force_probe)
    }

    /// Charges one candidate graph of the counterexample search, then checks
    /// deadline/budget.
    pub fn tick_search(&self) -> Result<(), Trip> {
        self.tick_search_forced(false)
    }

    fn tick_search_forced(&self, force_probe: bool) -> Result<(), Trip> {
        let graphs = self.search_graphs.fetch_add(1, Ordering::Relaxed) + 1;
        if self.search_graph_budget != 0 && graphs > self.search_graph_budget {
            return Err(self.record_trip(Trip::BudgetExhausted {
                stage: Stage::Search,
                budget: self.search_graph_budget,
            }));
        }
        self.check_forced(Stage::Search, force_probe)
    }

    /// SMT iterations charged so far (test/report observability).
    pub fn smt_steps(&self) -> u64 {
        self.smt_steps.load(Ordering::Relaxed)
    }

    /// Search graphs charged so far (test/report observability).
    pub fn search_graphs(&self) -> u64 {
        self.search_graphs.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// The ambient (thread-local) token
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: RefCell<Option<Arc<RunToken>>> = const { RefCell::new(None) };
}

/// Installs `token` as the calling thread's ambient token for the duration
/// of `f`. Panic-safe: the previous token (usually `None`) is restored even
/// if `f` unwinds, so a caught panic cannot leak a stale token into the next
/// proof on the same thread.
pub fn with_token<R>(token: Arc<RunToken>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<RunToken>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = AMBIENT.with(|slot| slot.borrow_mut().replace(token));
    let _restore = Restore(previous);
    f()
}

/// Runs `f` with **no** ambient token (restoring the current one after),
/// so infallible entry points can guarantee their cooperative checkpoints
/// never trip.
pub fn without_token<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<RunToken>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = AMBIENT.with(|slot| slot.borrow_mut().take());
    let _restore = Restore(previous);
    f()
}

/// The calling thread's ambient token, if one is installed. Workers spawned
/// mid-proof (the parallel counterexample search) capture this and re-install
/// it via [`with_token`] so the whole proof shares one deadline and one set
/// of budget counters.
pub fn current_token() -> Option<Arc<RunToken>> {
    AMBIENT.with(|slot| slot.borrow().clone())
}

fn with_ambient(f: impl FnOnce(&RunToken) -> Result<(), Trip>) -> Result<(), Trip> {
    AMBIENT.with(|slot| match slot.borrow().as_deref() {
        Some(token) => f(token),
        None => Ok(()),
    })
}

/// Cooperative deadline/cancellation checkpoint for `stage`, against the
/// ambient token. Also the injection point of armed [`faults`] for `stage`.
/// `Ok(())` when no token is installed.
pub fn checkpoint(stage: Stage) -> Result<(), Trip> {
    let stalled = faults::trigger(stage);
    with_ambient(|token| token.check_forced(stage, stalled))
}

/// Charges one SMT CDCL(T) iteration against the ambient token (and triggers
/// armed faults for [`Stage::Smt`]). `Ok(())` when no token is installed.
pub fn smt_step() -> Result<(), Trip> {
    let stalled = faults::trigger(Stage::Smt);
    with_ambient(|token| token.tick_smt_forced(stalled))
}

/// Charges one counterexample-search candidate graph against the ambient
/// token (and triggers armed faults for [`Stage::Search`]). `Ok(())` when no
/// token is installed.
pub fn search_step() -> Result<(), Trip> {
    let stalled = faults::trigger(Stage::Search);
    with_ambient(|token| token.tick_search_forced(stalled))
}

/// `true` once the ambient token (if any) has tripped. The cache layers call
/// this before inserting: results computed on a tripped path must never be
/// memoized.
pub fn cancelled() -> bool {
    AMBIENT.with(|slot| slot.borrow().as_deref().is_some_and(RunToken::is_cancelled))
}

/// The ambient token's recorded trip, if any.
pub fn trip() -> Option<Trip> {
    AMBIENT.with(|slot| slot.borrow().as_deref().and_then(RunToken::trip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Fault/ambient state is global per thread or process; tests that touch
    /// it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn no_token_means_no_trips() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(checkpoint(Stage::Decide).is_ok());
        assert!(smt_step().is_ok());
        assert!(search_step().is_ok());
        assert!(!cancelled());
        assert_eq!(trip(), None);
    }

    #[test]
    fn deadline_trips_and_sticks() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::new(Some(Instant::now() - Duration::from_millis(1)), 0, 0));
        with_token(token.clone(), || {
            let first = checkpoint(Stage::Normalize);
            assert_eq!(first, Err(Trip::Timeout { stage: Stage::Normalize }));
            // A later stage reports the original trip, not a new one.
            let later = checkpoint(Stage::Search);
            assert_eq!(later, Err(Trip::Timeout { stage: Stage::Normalize }));
            assert!(cancelled());
        });
        assert_eq!(token.trip(), Some(Trip::Timeout { stage: Stage::Normalize }));
        // Outside the scope the ambient token is gone.
        assert!(!cancelled());
        assert!(checkpoint(Stage::Normalize).is_ok());
    }

    #[test]
    fn budgets_trip_at_the_configured_step() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::new(None, 3, 2));
        with_token(token.clone(), || {
            assert!(smt_step().is_ok());
            assert!(smt_step().is_ok());
            assert!(smt_step().is_ok());
            assert_eq!(smt_step(), Err(Trip::BudgetExhausted { stage: Stage::Smt, budget: 3 }));
        });
        assert_eq!(token.smt_steps(), 4);

        let token = Arc::new(RunToken::new(None, 0, 2));
        with_token(token.clone(), || {
            assert!(search_step().is_ok());
            assert!(search_step().is_ok());
            assert_eq!(
                search_step(),
                Err(Trip::BudgetExhausted { stage: Stage::Search, budget: 2 })
            );
            // The SMT budget is independent (0 = unlimited).
            assert!(matches!(smt_step(), Err(Trip::BudgetExhausted { stage: Stage::Search, .. })));
        });
    }

    #[test]
    fn an_expired_deadline_is_detected_within_one_probe_interval() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::new(Some(Instant::now() + Duration::from_millis(1)), 0, 0));
        // Consume the always-probing first check while the deadline is live.
        assert!(token.check(Stage::Decide).is_ok());
        std::thread::sleep(Duration::from_millis(2));
        // The clock probe is subsampled, but the expiry must surface within
        // the next PROBE_INTERVAL checks.
        let tripped = (0..PROBE_INTERVAL).any(|_| token.check(Stage::Decide).is_err());
        assert!(tripped, "expired deadline went undetected for a whole probe interval");
        assert_eq!(token.trip(), Some(Trip::Timeout { stage: Stage::Decide }));
    }

    #[test]
    fn external_cancel_is_observed_by_checkpoints() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::unlimited());
        token.cancel();
        with_token(token, || {
            assert_eq!(checkpoint(Stage::Decide), Err(Trip::Cancelled));
            assert_eq!(trip(), Some(Trip::Cancelled));
        });
    }

    #[test]
    fn with_token_restores_the_previous_token_even_on_panic() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Arc::new(RunToken::unlimited());
        with_token(outer.clone(), || {
            let inner = Arc::new(RunToken::unlimited());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_token(inner, || panic!("boom"))
            }));
            assert!(result.is_err());
            // The outer token is back in place after the unwind.
            assert!(Arc::ptr_eq(&current_token().unwrap(), &outer));
        });
        assert!(current_token().is_none());
    }

    #[test]
    fn without_token_suspends_the_ambient_token() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::unlimited());
        token.cancel();
        with_token(token.clone(), || {
            assert!(checkpoint(Stage::Decide).is_err());
            without_token(|| {
                assert!(checkpoint(Stage::Decide).is_ok());
                assert!(current_token().is_none());
            });
            assert!(checkpoint(Stage::Decide).is_err());
        });
    }

    #[test]
    fn fault_parsing_and_shot_countdown() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(faults::parse_spec("panic@decide").is_some());
        assert!(faults::parse_spec("stall@search").is_some());
        assert!(faults::parse_spec("smt-unknown@smt").is_some());
        assert!(faults::parse_spec("panic@nowhere").is_none());
        assert!(faults::parse_spec("frobnicate@smt").is_none());
        // Shot-count suffix: kept by the `_with_shots` parser, tolerated (and
        // discarded) by the plain one, rejected when non-positive or garbage.
        assert_eq!(
            faults::parse_spec_with_shots("panic@search*3"),
            Some((Stage::Search, faults::FaultKind::Panic, 3))
        );
        assert_eq!(
            faults::parse_spec_with_shots("stall@decide"),
            Some((Stage::Decide, faults::FaultKind::Stall(faults::DEFAULT_STALL), 1))
        );
        assert_eq!(
            faults::parse_spec("panic@search*3"),
            Some((Stage::Search, faults::FaultKind::Panic))
        );
        assert!(faults::parse_spec_with_shots("panic@search*0").is_none());
        assert!(faults::parse_spec_with_shots("panic@search*many").is_none());

        faults::arm(Stage::Smt, faults::FaultKind::SmtUnknown, 2);
        assert!(faults::forced_smt_unknown());
        assert!(faults::forced_smt_unknown());
        // Shots exhausted: disarmed.
        assert!(!faults::forced_smt_unknown());

        // A panic fault actually panics at its stage's checkpoint and only
        // there.
        faults::arm(Stage::Decide, faults::FaultKind::Panic, 1);
        assert!(checkpoint(Stage::Normalize).is_ok());
        let panicked = std::panic::catch_unwind(|| checkpoint(Stage::Decide));
        assert!(panicked.is_err());
        // One shot: the next checkpoint is clean.
        assert!(checkpoint(Stage::Decide).is_ok());
        faults::disarm();
    }

    #[test]
    fn stall_fault_delays_until_the_deadline_expires() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = Arc::new(RunToken::new(Some(Instant::now() + Duration::from_millis(5)), 0, 0));
        faults::arm(Stage::Search, faults::FaultKind::Stall(Duration::from_millis(20)), 1);
        with_token(token, || {
            // The stall sleeps past the deadline, so the very same call
            // observes the expiry and attributes it to the stalled stage.
            assert_eq!(search_step(), Err(Trip::Timeout { stage: Stage::Search }));
        });
        faults::disarm();
    }
}
