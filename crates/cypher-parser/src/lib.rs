//! # cypher-parser
//!
//! A hand-written lexer, parser, pretty-printer and semantic checker for the
//! Cypher fragment used by GraphQE-rs (the Rust reproduction of *"Proving
//! Cypher Query Equivalence"*, ICDE 2025).
//!
//! The supported fragment follows Fig. 4 of the paper: `MATCH` /
//! `OPTIONAL MATCH` graph patterns (nodes, directed / undirected /
//! variable-length relationships, labels, property maps), `WHERE` predicates,
//! `WITH` / `RETURN` projections with `DISTINCT`, `ORDER BY`, `SKIP` and
//! `LIMIT`, `UNWIND`, `UNION [ALL]`, aggregates (`COUNT`, `SUM`, `MIN`,
//! `MAX`, `AVG`, `COLLECT`), scalar functions and `EXISTS { ... }`
//! subqueries.
//!
//! ## Quick start
//!
//! ```
//! use cypher_parser::parse_query;
//!
//! let query = parse_query(
//!     "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
//!      WHERE reader.name = 'Alice' RETURN writer.name",
//! )
//! .unwrap();
//! assert!(query.is_single());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod semantic;
pub mod token;

use std::fmt;

pub use ast::*;
pub use functions::BuiltinFunction;
pub use semantic::{check_semantics, check_semantics_with_source, Diagnostic, SemanticError};

/// A byte range into the original query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at position 0 (used for synthesized tokens).
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Merges two spans into the smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while lexing or parsing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Which phase produced the error.
    pub kind: ParseErrorKind,
    /// Human readable message.
    pub message: String,
    /// Source location of the error.
    pub span: Span,
}

/// The phase that produced a [`ParseError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Error while tokenizing the input.
    Lexical,
    /// Error while parsing the token stream.
    Syntax,
}

impl ParseError {
    /// Creates a lexical error.
    pub fn lexical(message: impl Into<String>, span: Span) -> Self {
        ParseError { kind: ParseErrorKind::Lexical, message: message.into(), span }
    }

    /// Creates a syntax error.
    pub fn syntax(message: impl Into<String>, span: Span) -> Self {
        ParseError { kind: ParseErrorKind::Syntax, message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.kind {
            ParseErrorKind::Lexical => "lexical error",
            ParseErrorKind::Syntax => "syntax error",
        };
        write!(f, "{phase} at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a Cypher query string into an AST.
///
/// This performs stage ① *syntax checking* of the GraphQE pipeline; use
/// [`check_semantics`] for the accompanying semantic checks.
pub fn parse_query(input: &str) -> Result<ast::Query, ParseError> {
    let tokens = lexer::tokenize(input)?;
    parser::Parser::new(tokens).parse_query()
}

/// Parses a Cypher expression in isolation (useful in tests and tools).
pub fn parse_expression(input: &str) -> Result<ast::Expr, ParseError> {
    let tokens = lexer::tokenize(input)?;
    parser::Parser::new(tokens).parse_standalone_expression()
}

/// Parses and semantically checks a query in one call, mirroring stage ① of
/// the GraphQE workflow (Fig. 3 in the paper).
pub fn parse_and_check(input: &str) -> Result<ast::Query, CheckError> {
    let query = parse_query(input).map_err(CheckError::Parse)?;
    check_semantics_with_source(&query, input).map_err(CheckError::Semantic)?;
    Ok(query)
}

/// A combined parse-or-semantic error (stage ① failure).
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The query violates the Cypher grammar.
    Parse(ParseError),
    /// The query is grammatical but semantically invalid.
    Semantic(Diagnostic),
}

impl CheckError {
    /// The structured diagnostic view of this error: a stable code, a span
    /// into the query text, the message and an optional note. Parse errors
    /// are folded into the same shape (`code` = `"syntax"` / `"lexical"`).
    pub fn diagnostic(&self) -> Diagnostic {
        match self {
            CheckError::Parse(e) => Diagnostic::new(
                match e.kind {
                    ParseErrorKind::Lexical => "lexical",
                    ParseErrorKind::Syntax => "syntax",
                },
                e.span,
                e.message.clone(),
            ),
            CheckError::Semantic(d) => d.clone(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "{e}"),
            CheckError::Semantic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_query_accepts_the_paper_listing_1() {
        let q = parse_query(
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
             WHERE reader.name = 'Alice' RETURN writer.name",
        )
        .unwrap();
        assert!(q.is_single());
        assert_eq!(q.parts[0].clauses.len(), 2);
    }

    #[test]
    fn parse_and_check_rejects_undefined_variables() {
        let err = parse_and_check("MATCH (n) WHERE m.age = 1 RETURN n").unwrap_err();
        assert!(matches!(err, CheckError::Semantic(_)));
    }

    #[test]
    fn parse_and_check_rejects_syntax_errors() {
        let err = parse_and_check("MATCH (n RETURN n").unwrap_err();
        assert!(matches!(err, CheckError::Parse(_)));
    }

    #[test]
    fn span_merge_covers_both() {
        let merged = Span::new(3, 5).merge(Span::new(10, 12));
        assert_eq!(merged, Span::new(3, 12));
    }
}
