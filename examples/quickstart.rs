//! Quickstart: prove two Cypher queries equivalent and reject a mutated one.
//!
//! Run with `cargo run --example quickstart`.

#![forbid(unsafe_code)]

use graphqe::GraphQE;

fn main() {
    let prover = GraphQE::new();

    // The rewrite of Listing 1 of the paper: reversing the path direction
    // does not change the result.
    let original = "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
                    WHERE reader.name = 'Alice' RETURN writer.name";
    let rewritten = "MATCH (writer)-[:WRITE]->(book:Book)<-[:READ]-(reader:Person) \
                     WHERE reader.name = 'Alice' RETURN writer.name";
    println!("Q1: {original}");
    println!("Q2: {rewritten}");
    println!("=> {}\n", prover.prove(original, rewritten));

    // A faulty rewrite (wrong relationship label) is rejected with a
    // counterexample graph.
    let faulty = "MATCH (reader:Person)-[:WRITE]->(book:Book)<-[:READ]-(writer) \
                  WHERE reader.name = 'Alice' RETURN writer.name";
    println!("Q3 (faulty): {faulty}");
    println!("=> {}", prover.prove(original, faulty));
}
