//! # cypher-normalizer
//!
//! Rule-based Cypher query normalization (stage ② of the GraphQE workflow,
//! §V / Table II of the paper). Each rule rewrites the AST into an equivalent
//! query that uses only features the G-expression builder models directly:
//!
//! | # | Rule |
//! |---|------|
//! | ① | eliminate undirected relationship patterns (union of both directions) |
//! | ② | rewrite bounded variable-length paths into a union over the lengths |
//! | ③ | expand `RETURN *` / `WITH *` into an explicit, alphabetically sorted item list |
//! | ④ | eliminate redundant `WITH` clauses by inlining their aliases |
//! | ⑤ | standardize variable names (`n1`, `r1`, ... in order of appearance) |
//! | ⑥ | simplify `id(a) = id(b)` equalities into variable unification |
//!
//! The driver applies one rule per round, in the dependency order the paper
//! describes (② before ⑤, ③ before ⑤, ⑤ before ⑥), until no rule fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;

use cypher_parser::ast::Query;

/// Which rules fired during normalization (useful for ablation benchmarks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizationReport {
    /// Rule ①: undirected relationships eliminated.
    pub undirected_eliminated: usize,
    /// Rule ②: bounded variable-length paths expanded.
    pub var_length_expanded: usize,
    /// Rule ③: `RETURN *` / `WITH *` expansions.
    pub star_expanded: usize,
    /// Rule ④: redundant `WITH` clauses inlined.
    pub with_inlined: usize,
    /// Rule ⑤: whether variables were renamed to the standard scheme.
    pub variables_standardized: bool,
    /// Rule ⑥: `id(x) = id(y)` equalities simplified.
    pub id_equalities_simplified: usize,
}

/// Normalizes a query by applying the Table II rules to a fixpoint.
pub fn normalize_query(query: &Query) -> Query {
    normalize_query_with_report(query).0
}

/// One recorded rule application of the normalization fixpoint.
///
/// Rule names and positions use the same stable identifiers as the
/// independent checker crate, which replays derivations step for step; the
/// two sides must agree exactly for a certificate to validate.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationStep {
    /// Stable rule identifier (`"undirected"`, `"var_length"`, `"return_star"`,
    /// `"redundant_with"`, `"standardize"`, `"id_equality"`).
    pub rule: &'static str,
    /// Index of the first union part changed by the step.
    pub part: usize,
    /// Index of the first clause changed inside that part.
    pub clause: usize,
    /// The query after the step.
    pub after: Query,
}

/// The position `(part, clause)` of the first difference between two queries.
///
/// This definition must stay in lock-step with the checker crate's copy
/// (`graphqe-checker`'s `rules::diff_position`): both sides compute positions
/// the same way so a replayed trace compares verbatim.
fn diff_position(before: &Query, after: &Query) -> (usize, usize) {
    for (i, (b, a)) in before.parts.iter().zip(after.parts.iter()).enumerate() {
        if b != a {
            for (j, (bc, ac)) in b.clauses.iter().zip(a.clauses.iter()).enumerate() {
                if bc != ac {
                    return (i, j);
                }
            }
            return (i, b.clauses.len().min(a.clauses.len()));
        }
    }
    if before.parts.len() != after.parts.len() {
        return (before.parts.len().min(after.parts.len()), 0);
    }
    (0, 0)
}

/// [`normalize_query`] recording every rule application (rule ⑤ only when it
/// changed something) for certificate emission.
///
/// The driver is the same one-rule-per-round fixpoint as
/// [`try_normalize_query_with_report`] — same rule order, same 64-round bound
/// — so the recorded derivation always reproduces the pipeline's normalized
/// query. Infallible by design: certificate emission runs off the hot path
/// and suspends cooperative limits itself when needed.
pub fn normalize_query_with_derivation(query: &Query) -> (Query, Vec<DerivationStep>) {
    let mut trace = Vec::new();
    let mut current = query.clone();
    let mut record = |rule: &'static str, before: &Query, after: Query| {
        let (part, clause) = diff_position(before, &after);
        trace.push(DerivationStep { rule, part, clause, after: after.clone() });
        after
    };
    for _ in 0..64 {
        if let Some(next) = rules::rule2_var_length::apply(&current) {
            current = record("var_length", &current, next);
            continue;
        }
        if let Some(next) = rules::rule1_undirected::apply(&current) {
            current = record("undirected", &current, next);
            continue;
        }
        if let Some(next) = rules::rule3_return_star::apply(&current) {
            current = record("return_star", &current, next);
            continue;
        }
        if let Some(next) = rules::rule4_redundant_with::apply(&current) {
            current = record("redundant_with", &current, next);
            continue;
        }
        if let Some(next) = rules::rule6_id_equality::apply(&current) {
            current = record("id_equality", &current, next);
            continue;
        }
        break;
    }
    // Rule ⑤ last: pure renaming, applied once, recorded only when it fired.
    let (renamed, changed) = rules::rule5_standardize::apply(&current);
    if changed {
        current = record("standardize", &current, renamed);
    }
    (current, trace)
}

/// [`normalize_query`] with a report of which rules fired.
///
/// Infallible: cooperative limit checkpoints are suspended for the duration
/// (this entry point predates deadlines and its callers — benches, tests,
/// differential oracles — expect a result unconditionally). Deadline-aware
/// callers use [`try_normalize_query_with_report`].
pub fn normalize_query_with_report(query: &Query) -> (Query, NormalizationReport) {
    limits::without_token(|| try_normalize_query_with_report(query))
        .expect("normalization cannot trip without an ambient RunToken")
}

/// [`normalize_query_with_report`] with a cooperative deadline checkpoint per
/// fixpoint round: under an ambient [`limits::RunToken`] whose deadline has
/// passed (or that was cancelled), normalization unwinds with the trip
/// instead of completing the fixpoint.
pub fn try_normalize_query_with_report(
    query: &Query,
) -> Result<(Query, NormalizationReport), limits::Trip> {
    let mut report = NormalizationReport::default();
    let mut current = query.clone();
    // One rule per round, bounded to guarantee termination even in the
    // presence of a rule interplay bug.
    for _ in 0..64 {
        limits::checkpoint(limits::Stage::Normalize)?;
        if let Some(next) = rules::rule2_var_length::apply(&current) {
            report.var_length_expanded += 1;
            current = next;
            continue;
        }
        if let Some(next) = rules::rule1_undirected::apply(&current) {
            report.undirected_eliminated += 1;
            current = next;
            continue;
        }
        if let Some(next) = rules::rule3_return_star::apply(&current) {
            report.star_expanded += 1;
            current = next;
            continue;
        }
        if let Some(next) = rules::rule4_redundant_with::apply(&current) {
            report.with_inlined += 1;
            current = next;
            continue;
        }
        if let Some(next) = rules::rule6_id_equality::apply(&current) {
            report.id_equalities_simplified += 1;
            current = next;
            continue;
        }
        break;
    }
    // Rule ⑤ last: pure renaming, applied once.
    let (renamed, changed) = rules::rule5_standardize::apply(&current);
    report.variables_standardized = changed;
    Ok((renamed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::{parse_query, pretty::query_to_string};

    fn normalize_text(text: &str) -> String {
        query_to_string(&normalize_query(&parse_query(text).unwrap()))
    }

    #[test]
    fn table_2_rule_1_undirected() {
        let normalized = normalize_text("MATCH (n1)-[]-(n2) RETURN n1.name");
        assert!(normalized.contains("UNION ALL"), "{normalized}");
        assert!(
            normalized.contains("-->") || normalized.contains("]->") || normalized.contains(")-["),
            "{normalized}"
        );
    }

    #[test]
    fn table_2_rule_2_var_length() {
        let normalized = normalize_text("MATCH (n1)-[*1..2]->(n2) RETURN n1");
        assert!(normalized.contains("UNION ALL"), "{normalized}");
        // The two-hop branch contains two relationship patterns.
        assert!(
            normalized.matches("]->(").count() >= 2 || normalized.matches("-->").count() >= 1,
            "{normalized}"
        );
        // Unbounded paths are left untouched (modeled with UNBOUNDED instead).
        let unbounded = normalize_text("MATCH (n1)-[*]->(n2) RETURN n1");
        assert!(!unbounded.contains("UNION"), "{unbounded}");
    }

    #[test]
    fn table_2_rule_3_return_star() {
        let normalized = normalize_text("MATCH (x)-[z]->()-[y]->() RETURN *");
        assert!(!normalized.contains('*'), "{normalized}");
        // Alphabetical order of the projected variables (x, y, z renamed by
        // rule ⑤ but still three items).
        assert!(normalized.matches(", ").count() >= 2, "{normalized}");
    }

    #[test]
    fn table_2_rule_4_redundant_with() {
        let normalized = normalize_text("MATCH (x) WITH x.name AS name RETURN name");
        assert!(!normalized.contains("WITH"), "{normalized}");
        assert!(normalized.contains(".name"), "{normalized}");
        // A WITH with DISTINCT / ORDER BY / aggregates is kept.
        let kept = normalize_text("MATCH (x) WITH DISTINCT x.name AS name RETURN name");
        assert!(kept.contains("WITH"), "{kept}");
    }

    #[test]
    fn table_2_rule_5_standardize() {
        let normalized = normalize_text("MATCH (person)-[]->(book) RETURN person");
        assert!(normalized.contains("(n1)"), "{normalized}");
        assert!(normalized.contains("(n2)"), "{normalized}");
        assert!(!normalized.contains("person"), "{normalized}");
    }

    #[test]
    fn table_2_rule_6_id_equality() {
        let normalized = normalize_text("MATCH (n1), (n2) WHERE id(n1) = id(n2) RETURN n2");
        assert!(!normalized.contains("id("), "{normalized}");
        // Only one node pattern remains.
        assert_eq!(normalized, "MATCH (n1) RETURN n1");
    }

    #[test]
    fn normalization_report_tracks_rules() {
        let query = parse_query("MATCH (a)-[*1..2]->(b) RETURN *").unwrap();
        let (_, report) = normalize_query_with_report(&query);
        assert!(report.var_length_expanded >= 1);
        assert!(report.star_expanded >= 1);
        assert!(report.variables_standardized);
    }

    #[test]
    fn expired_deadline_trips_normalization_but_not_the_infallible_entry() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let query = parse_query("MATCH (n1)-[]-(n2) RETURN n1.name").unwrap();
        let token =
            Arc::new(limits::RunToken::new(Some(Instant::now() - Duration::from_millis(1)), 0, 0));
        limits::with_token(token, || {
            let tripped = try_normalize_query_with_report(&query);
            assert!(matches!(
                tripped,
                Err(limits::Trip::Timeout { stage: limits::Stage::Normalize })
            ));
            // The infallible entry point suspends the ambient token and
            // completes even mid-deadline (bench baselines depend on it).
            let (normalized, _) = normalize_query_with_report(&query);
            assert_eq!(normalized, normalize_query(&query));
        });
    }

    #[test]
    fn normalization_is_idempotent() {
        for text in [
            "MATCH (n1)-[]-(n2) RETURN n1.name",
            "MATCH (n1)-[*1..2]->(n2) RETURN n1",
            "MATCH (x)-[z]->()-[y]->() RETURN *",
            "MATCH (x) WITH x.name AS name RETURN name",
            "MATCH (a)-[r:KNOWS]->(b) WHERE a.age > 1 RETURN b.name ORDER BY b.name LIMIT 3",
        ] {
            let once = normalize_query(&parse_query(text).unwrap());
            let twice = normalize_query(&once);
            assert_eq!(once, twice, "normalization not idempotent for {text}");
        }
    }

    #[test]
    fn derivation_reproduces_the_pipeline_fixpoint() {
        for text in [
            "MATCH (n1)-[]-(n2) RETURN n1.name",
            "MATCH (n1)-[*1..2]->(n2) RETURN n1",
            "MATCH (x)-[z]->()-[y]->() RETURN *",
            "MATCH (x) WITH x.name AS name RETURN name",
            "MATCH (a), (b) WHERE id(a) = id(b) RETURN b.name",
            "MATCH (n1) RETURN n1",
        ] {
            let query = parse_query(text).unwrap();
            let (derived, steps) = normalize_query_with_derivation(&query);
            assert_eq!(derived, normalize_query(&query), "derivation diverged for {text}");
            // The last recorded step (if any) is the normalized query.
            if let Some(last) = steps.last() {
                assert_eq!(last.after, derived, "trailing step mismatch for {text}");
            } else {
                assert_eq!(derived, query, "no steps but query changed for {text}");
            }
        }
    }

    #[test]
    fn preserves_results_on_the_paper_graph() {
        // The normalizer must be semantics-preserving: check against the
        // reference evaluator on the Fig. 1 graph.
        use property_graph::{evaluate_query, PropertyGraph};
        let graph = PropertyGraph::paper_example();
        for text in [
            "MATCH (n1)-[]-(n2) RETURN n1.name",
            "MATCH (n1)-[*1..2]->(n2) RETURN n1.name",
            "MATCH (x)-[z:READ]->(b) RETURN *",
            "MATCH (x) WITH x.name AS name RETURN name",
            "MATCH (a), (b) WHERE id(a) = id(b) RETURN b.name",
            "MATCH (a:Person)-[r]->(b) WHERE a.age > 26 RETURN a.name, b.title",
        ] {
            let original = parse_query(text).unwrap();
            let normalized = normalize_query(&original);
            let before = evaluate_query(&graph, &original).unwrap();
            let after = evaluate_query(&graph, &normalized).unwrap();
            assert!(
                before.bag_equal(&after),
                "rule broke semantics for {text}:\nbefore={before}\nafter={after}"
            );
        }
    }
}
