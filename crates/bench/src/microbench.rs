//! A tiny self-contained micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so the Criterion
//! benches the crate originally shipped have been rewritten on top of this
//! module: plain `harness = false` binaries that time closures with
//! `std::time::Instant` and print a compact report. Statistical rigor is
//! deliberately modest (median over a fixed number of samples after one
//! warm-up); the reports exist to track relative movement between PRs, not
//! to publish absolute numbers.

use std::time::{Duration, Instant};

/// The timing summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Benchmark label.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Median sample duration.
    pub median: Duration,
    /// Mean sample duration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
}

impl Report {
    /// One-line rendering, aligned for terminal output.
    pub fn line(&self) -> String {
        format!(
            "{:<44} median {:>12.3?}  mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            self.name, self.median, self.mean, self.min, self.samples
        )
    }
}

/// Times `f` for `samples` iterations (after one untimed warm-up) and prints
/// the report.
pub fn bench(name: &str, samples: usize, mut f: impl FnMut()) -> Report {
    f(); // warm-up: fill caches, fault in lazily initialized state
    let samples = samples.max(1);
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        durations.push(start.elapsed());
    }
    durations.sort();
    let total: Duration = durations.iter().sum();
    let report = Report {
        name: name.to_string(),
        samples,
        median: durations[samples / 2],
        mean: total / samples as u32,
        min: durations[0],
    };
    println!("{}", report.line());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let report = bench("noop", 5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(report.samples, 5);
        assert!(report.min <= report.median);
        assert!(report.median <= Duration::from_secs(1));
    }
}
