//! Shared harness code for the benchmark / report binaries that regenerate
//! every table and figure of the paper's evaluation (§VII).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod json;
pub mod microbench;

use std::time::Duration;

use cyeqset::{cyeqset, cyneqset, Project, QueryPair, TABLE3_TARGETS};
use graphqe::{FailureCategory, GraphQE, Verdict};

/// The result of proving one pair.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// The pair that was proved.
    pub pair: QueryPair,
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock latency of the whole pipeline for this pair.
    pub latency: Duration,
}

/// Runs the prover over every pair of CyEqSet.
pub fn run_cyeqset(prover: &GraphQE) -> Vec<PairResult> {
    run_pairs(prover, cyeqset())
}

/// Runs the prover over every pair of CyNeqSet.
pub fn run_cyneqset(prover: &GraphQE) -> Vec<PairResult> {
    run_pairs(prover, cyneqset())
}

/// Proves a dataset through the parallel batch API (all available cores).
///
/// Note on latency semantics: each [`PairResult::latency`] is the wall-clock
/// of that pair *as observed by its worker*, so under the parallel default it
/// includes CPU contention from concurrently proved pairs. Reports that need
/// per-pair latencies comparable to sequential measurements (e.g. Fig. 5)
/// should call [`run_pairs_with_threads`] with `threads = 1`.
pub fn run_pairs(prover: &GraphQE, pairs: Vec<QueryPair>) -> Vec<PairResult> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    run_pairs_with_threads(prover, pairs, threads)
}

/// [`run_pairs`] with an explicit worker count (1 = the sequential baseline).
pub fn run_pairs_with_threads(
    prover: &GraphQE,
    pairs: Vec<QueryPair>,
    threads: usize,
) -> Vec<PairResult> {
    run_pairs_report(prover, pairs, threads).0
}

/// [`run_pairs_with_threads`] plus the aggregate cache report of the run.
pub fn run_pairs_report(
    prover: &GraphQE,
    pairs: Vec<QueryPair>,
    threads: usize,
) -> (Vec<PairResult>, graphqe::CacheStats) {
    let texts: Vec<(&str, &str)> =
        pairs.iter().map(|pair| (pair.left.as_str(), pair.right.as_str())).collect();
    let report = prover.prove_batch_report(&texts, threads);
    let results = pairs
        .into_iter()
        .zip(report.outcomes)
        .map(|(pair, outcome)| PairResult {
            pair,
            verdict: outcome.verdict,
            latency: outcome.latency,
        })
        .collect();
    (results, report.cache)
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Project name.
    pub project: Project,
    /// Total pairs of the project.
    pub pairs: usize,
    /// Pairs proved equivalent.
    pub proved: usize,
    /// The number the paper reports for this row.
    pub paper_proved: usize,
}

/// Aggregates per-project proved counts (Table III).
pub fn table3_rows(results: &[PairResult]) -> Vec<Table3Row> {
    TABLE3_TARGETS
        .iter()
        .map(|(project, total, paper_proved)| {
            let of_project: Vec<_> =
                results.iter().filter(|r| r.pair.project == *project).collect();
            Table3Row {
                project: *project,
                pairs: *total,
                proved: of_project.iter().filter(|r| r.verdict.is_equivalent()).count(),
                paper_proved: *paper_proved,
            }
        })
        .collect()
}

/// Renders Table III as text.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: proved query pairs by project (paper numbers in parentheses)\n");
    out.push_str(&format!("{:<22} {:>11} {:>18}\n", "Project", "Query pairs", "Proved"));
    let mut total_pairs = 0;
    let mut total_proved = 0;
    let mut total_paper = 0;
    for row in rows {
        out.push_str(&format!(
            "{:<22} {:>11} {:>12} ({:>3})\n",
            row.project.name(),
            row.pairs,
            row.proved,
            row.paper_proved
        ));
        total_pairs += row.pairs;
        total_proved += row.proved;
        total_paper += row.paper_proved;
    }
    out.push_str(&format!(
        "{:<22} {:>11} {:>12} ({:>3})\n",
        "Total", total_pairs, total_proved, total_paper
    ));
    out
}

/// The latency distribution statistics of Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyDistribution {
    /// Average latency in milliseconds.
    pub average_ms: f64,
    /// Pairs proved within 10 ms.
    pub under_10ms: usize,
    /// Pairs proved within 100 ms.
    pub under_100ms: usize,
    /// Pairs above 500 ms.
    pub over_500ms: usize,
    /// All latencies (ms), sorted ascending.
    pub sorted_ms: Vec<f64>,
}

/// Computes the latency distribution over all pairs (Fig. 5).
pub fn latency_distribution(results: &[PairResult]) -> LatencyDistribution {
    let mut sorted_ms: Vec<f64> =
        results.iter().map(|r| r.latency.as_secs_f64() * 1000.0).collect();
    sorted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let average_ms = if sorted_ms.is_empty() {
        0.0
    } else {
        sorted_ms.iter().sum::<f64>() / sorted_ms.len() as f64
    };
    LatencyDistribution {
        average_ms,
        under_10ms: sorted_ms.iter().filter(|v| **v <= 10.0).count(),
        under_100ms: sorted_ms.iter().filter(|v| **v <= 100.0).count(),
        over_500ms: sorted_ms.iter().filter(|v| **v > 500.0).count(),
        sorted_ms,
    }
}

/// Renders the Fig. 5 latency distribution as text (a cumulative histogram).
pub fn format_fig5(distribution: &LatencyDistribution, total: usize) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5: proving latency distribution\n");
    out.push_str(&format!(
        "average latency: {:.1} ms (paper: ~38 ms on an i5-11300)\n",
        distribution.average_ms
    ));
    for (label, count) in [
        ("<= 10 ms", distribution.under_10ms),
        ("<= 100 ms", distribution.under_100ms),
        ("> 500 ms", distribution.over_500ms),
    ] {
        let percent = 100.0 * count as f64 / total.max(1) as f64;
        out.push_str(&format!("{label:<10} {count:>4} pairs ({percent:>5.1}%)\n"));
    }
    // A coarse cumulative histogram over latency buckets.
    for bucket in [1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0] {
        let count = distribution.sorted_ms.iter().filter(|v| **v <= bucket).count();
        let bar = "#".repeat(count * 40 / total.max(1));
        out.push_str(&format!("<= {bucket:>6.0} ms | {bar} {count}\n"));
    }
    out
}

/// The failure analysis of §VII-B: unknown verdicts per category.
pub fn failure_breakdown(results: &[PairResult]) -> Vec<(FailureCategory, usize)> {
    let categories = [
        FailureCategory::SortingTruncation,
        FailureCategory::NestedAggregate,
        FailureCategory::UninterpretedFunction,
        FailureCategory::InvalidQuery,
        FailureCategory::Other,
    ];
    categories
        .into_iter()
        .map(|category| {
            let count = results
                .iter()
                .filter(|r| {
                    matches!(&r.verdict, Verdict::Unknown { category: c, .. } if *c == category)
                })
                .count();
            (category, count)
        })
        .filter(|(_, count)| *count > 0)
        .collect()
}

/// Renders the CyNeqSet rejection report.
pub fn format_neqset(results: &[PairResult]) -> String {
    let rejected = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
    let wrongly_proved = results.iter().filter(|r| r.verdict.is_equivalent()).count();
    let unknown = results.len() - rejected - wrongly_proved;
    format!(
        "CyNeqSet: {} pairs — {} rejected with a counterexample graph, {} unknown, \
         {} wrongly proved equivalent (paper: 148 rejected, 0 wrongly proved)\n",
        results.len(),
        rejected,
        unknown,
        wrongly_proved
    )
}

/// A small deterministic subset of CyEqSet used by the Criterion
/// micro-benchmarks (one pair per project).
pub fn representative_pairs() -> Vec<QueryPair> {
    let mut pairs = Vec::new();
    for project in Project::all() {
        if let Some(pair) = cyeqset().into_iter().find(|p| p.project == project) {
            pairs.push(pair);
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_formatting_contains_all_projects() {
        let rows = vec![
            Table3Row { project: Project::CalciteCypher, pairs: 80, proved: 73, paper_proved: 73 },
            Table3Row { project: Project::Ldbc, pairs: 13, proved: 13, paper_proved: 13 },
        ];
        let text = format_table3(&rows);
        assert!(text.contains("Calcite-Cypher"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn latency_distribution_statistics() {
        let results: Vec<PairResult> = Vec::new();
        let distribution = latency_distribution(&results);
        assert_eq!(distribution.average_ms, 0.0);
        assert_eq!(distribution.under_10ms, 0);
    }

    #[test]
    fn representative_pairs_cover_every_project() {
        let pairs = representative_pairs();
        assert_eq!(pairs.len(), 4);
    }
}
