//! Token kinds produced by the [`crate::lexer::Lexer`].
//!
//! Cypher keywords are case-insensitive; the lexer normalizes them into
//! dedicated [`TokenKind`] variants so the parser never has to compare
//! identifier text against keyword strings.

use std::fmt;

use crate::Span;

/// A single lexical token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte range in the original query text.
    pub span: Span,
}

impl Token {
    /// Creates a new token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // the keyword variants are self-describing
pub enum TokenKind {
    // ---- literals & names -------------------------------------------------
    /// An identifier such as a variable, label, property key or function name.
    Ident(String),
    /// A signless integer literal.
    Integer(i64),
    /// A signless floating point literal.
    Float(f64),
    /// A single- or double-quoted string literal (escapes already resolved).
    StringLit(String),
    /// A query parameter, e.g. `$param`.
    Parameter(String),

    // ---- keywords ---------------------------------------------------------
    Match,
    Optional,
    Where,
    Return,
    With,
    Unwind,
    As,
    Union,
    All,
    Distinct,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Skip,
    And,
    Or,
    Xor,
    Not,
    In,
    Is,
    Null,
    True,
    False,
    Exists,
    Starts,
    Ends,
    Contains,
    Case,
    When,
    Then,
    Else,
    End,
    Count,

    // ---- punctuation ------------------------------------------------------
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Returns `true` if this token can begin a clause (used for error recovery).
    pub fn is_clause_start(&self) -> bool {
        matches!(
            self,
            TokenKind::Match
                | TokenKind::Optional
                | TokenKind::Return
                | TokenKind::With
                | TokenKind::Unwind
                | TokenKind::Union
        )
    }

    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Integer(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::StringLit(s) => format!("string {s:?}"),
            TokenKind::Parameter(p) => format!("parameter `${p}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }

    /// Maps an identifier to a keyword token, if it is one.
    ///
    /// Cypher keywords are matched case-insensitively. `COUNT` is kept as a
    /// keyword because `COUNT(*)` needs special parsing.
    pub fn keyword_from_str(ident: &str) -> Option<TokenKind> {
        let upper = ident.to_ascii_uppercase();
        let kind = match upper.as_str() {
            "MATCH" => TokenKind::Match,
            "OPTIONAL" => TokenKind::Optional,
            "WHERE" => TokenKind::Where,
            "RETURN" => TokenKind::Return,
            "WITH" => TokenKind::With,
            "UNWIND" => TokenKind::Unwind,
            "AS" => TokenKind::As,
            "UNION" => TokenKind::Union,
            "ALL" => TokenKind::All,
            "DISTINCT" => TokenKind::Distinct,
            "ORDER" => TokenKind::Order,
            "BY" => TokenKind::By,
            "ASC" | "ASCENDING" => TokenKind::Asc,
            "DESC" | "DESCENDING" => TokenKind::Desc,
            "LIMIT" => TokenKind::Limit,
            "SKIP" => TokenKind::Skip,
            "AND" => TokenKind::And,
            "OR" => TokenKind::Or,
            "XOR" => TokenKind::Xor,
            "NOT" => TokenKind::Not,
            "IN" => TokenKind::In,
            "IS" => TokenKind::Is,
            "NULL" => TokenKind::Null,
            "TRUE" => TokenKind::True,
            "FALSE" => TokenKind::False,
            "EXISTS" => TokenKind::Exists,
            "STARTS" => TokenKind::Starts,
            "ENDS" => TokenKind::Ends,
            "CONTAINS" => TokenKind::Contains,
            "CASE" => TokenKind::Case,
            "WHEN" => TokenKind::When,
            "THEN" => TokenKind::Then,
            "ELSE" => TokenKind::Else,
            "END" => TokenKind::End,
            "COUNT" => TokenKind::Count,
            _ => return None,
        };
        Some(kind)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Integer(v) => return write!(f, "{v}"),
            TokenKind::Float(v) => return write!(f, "{v}"),
            TokenKind::StringLit(s) => return write!(f, "'{s}'"),
            TokenKind::Parameter(p) => return write!(f, "${p}"),
            TokenKind::Match => "MATCH",
            TokenKind::Optional => "OPTIONAL",
            TokenKind::Where => "WHERE",
            TokenKind::Return => "RETURN",
            TokenKind::With => "WITH",
            TokenKind::Unwind => "UNWIND",
            TokenKind::As => "AS",
            TokenKind::Union => "UNION",
            TokenKind::All => "ALL",
            TokenKind::Distinct => "DISTINCT",
            TokenKind::Order => "ORDER",
            TokenKind::By => "BY",
            TokenKind::Asc => "ASC",
            TokenKind::Desc => "DESC",
            TokenKind::Limit => "LIMIT",
            TokenKind::Skip => "SKIP",
            TokenKind::And => "AND",
            TokenKind::Or => "OR",
            TokenKind::Xor => "XOR",
            TokenKind::Not => "NOT",
            TokenKind::In => "IN",
            TokenKind::Is => "IS",
            TokenKind::Null => "NULL",
            TokenKind::True => "TRUE",
            TokenKind::False => "FALSE",
            TokenKind::Exists => "EXISTS",
            TokenKind::Starts => "STARTS",
            TokenKind::Ends => "ENDS",
            TokenKind::Contains => "CONTAINS",
            TokenKind::Case => "CASE",
            TokenKind::When => "WHEN",
            TokenKind::Then => "THEN",
            TokenKind::Else => "ELSE",
            TokenKind::End => "END",
            TokenKind::Count => "COUNT",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Semicolon => ";",
            TokenKind::Dot => ".",
            TokenKind::DotDot => "..",
            TokenKind::Pipe => "|",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Caret => "^",
            TokenKind::Eq => "=",
            TokenKind::Neq => "<>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(TokenKind::keyword_from_str("match"), Some(TokenKind::Match));
        assert_eq!(TokenKind::keyword_from_str("MaTcH"), Some(TokenKind::Match));
        assert_eq!(TokenKind::keyword_from_str("RETURN"), Some(TokenKind::Return));
        assert_eq!(TokenKind::keyword_from_str("ascending"), Some(TokenKind::Asc));
        assert_eq!(TokenKind::keyword_from_str("person"), None);
    }

    #[test]
    fn clause_start_detection() {
        assert!(TokenKind::Match.is_clause_start());
        assert!(TokenKind::Return.is_clause_start());
        assert!(!TokenKind::Where.is_clause_start());
        assert!(!TokenKind::Ident("x".into()).is_clause_start());
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::Neq.to_string(), "<>");
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Parameter("p".into()).to_string(), "$p");
    }

    #[test]
    fn describe_mentions_payload() {
        assert!(TokenKind::Ident("foo".into()).describe().contains("foo"));
        assert!(TokenKind::Integer(42).describe().contains("42"));
        assert!(TokenKind::Eof.describe().contains("end of input"));
    }
}
