//! Walkthrough of the paper's running example: the Fig. 1 property graph,
//! the Fig. 2 query, its G-expression, and the prover verdicts of §III/§IV.
//!
//! Run with `cargo run --example paper_walkthrough`.

#![forbid(unsafe_code)]

use cypher_parser::parse_query;
use gexpr::build_query;
use graphqe::GraphQE;
use property_graph::{evaluate_query, PropertyGraph};

fn main() {
    // The property graph of Fig. 1.
    let graph = PropertyGraph::paper_example();
    println!("{graph}");

    // Listing 1: who wrote the book Alice read?
    let listing1 = "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
                    WHERE reader.name = 'Alice' RETURN writer.name";
    let query = parse_query(listing1).expect("listing 1 parses");
    let result = evaluate_query(&graph, &query).expect("listing 1 evaluates");
    println!("Listing 1 result:\n{result}\n");

    // The G-expression of the §III-B overview example.
    let overview = parse_query("MATCH (n1)-[r]->(n2) WHERE n1.age = 59 RETURN n1").unwrap();
    let output = build_query(&overview).expect("overview example builds");
    println!("G-expression of the overview example:\n  g(t) = {}\n", output.expr);

    // Listing 2: equivalent queries with ORDER BY ... LIMIT inside a subquery,
    // proven with the divide-and-conquer strategy.
    let prover = GraphQE::new();
    let q1 = "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2";
    let q2 = "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2";
    println!("Listing 2 verdict: {}", prover.prove(q1, q2));
}
