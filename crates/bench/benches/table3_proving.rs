//! Benchmark backing Table III: end-to-end proving latency per project (one
//! representative pair each). Plain `std::time` harness — see
//! `graphqe_bench::microbench` for why Criterion is not used.

use graphqe::GraphQE;
use graphqe_bench::{microbench::bench, representative_pairs};

fn main() {
    let prover = GraphQE::new();
    println!("table3/prove_pair");
    for pair in representative_pairs() {
        bench(pair.project.name(), 10, || {
            std::hint::black_box(prover.prove(&pair.left, &pair.right));
        });
    }
}
