//! An independent, dependency-free proof-certificate checker for GraphQE-rs.
//!
//! The prover pipeline (normalizer → G-expression build → LIA* decision /
//! counterexample search) emits a [`cert::Certificate`] alongside every
//! EQUIVALENT or NOT_EQUIVALENT verdict. This crate re-validates those
//! certificates without depending on the prover: its only dependency is the
//! Cypher parser, and every algorithm it needs — the Table II normalization
//! rules, expression isomorphism matching, and a bag-semantics evaluator — is
//! re-implemented here from the paper rather than imported.
//!
//! What the checker *fully verifies*:
//!
//! - the normalization derivation of both queries, replayed rule-by-rule
//!   ([`rules::normalize_with_trace`]);
//! - the column permutation and its application to the right query;
//! - squash peeling, summand decomposition, and every recorded
//!   simplification (atom removals re-applied structurally);
//! - isomorphism bijections under one shared variable mapping, and
//!   isomorphism-class membership plus count arithmetic;
//! - counterexample result bags, re-computed from scratch by the checker's
//!   own evaluator ([`eval`]) on the embedded graph.
//!
//! What the checker *trusts* (recorded as `trusted_obligations` in the
//! [`validate::CheckSummary`]): the G-expression build of stage ③, the
//! prover's SMT facts (zero-pruned summands, implied-atom removals,
//! disjointness of split squashes), and the divide-and-conquer segmentation.
//!
//! The JSON wire format is defined in [`cert`]; the validation engine in
//! [`validate`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cert;
pub mod eval;
pub mod graph;
pub mod gx;
pub mod json;
pub mod rules;
pub mod sig;
pub mod validate;
pub mod value;

pub use cert::Certificate;
pub use validate::{check_certificate, CheckError, CheckSummary};
