//! Criterion benchmark backing the CyNeqSet experiment: cost of rejecting a
//! mutated pair via counterexample search.

use criterion::{criterion_group, criterion_main, Criterion};
use graphqe::GraphQE;

fn bench_rejection(c: &mut Criterion) {
    let prover = GraphQE::new();
    let mut group = c.benchmark_group("neqset/reject_pair");
    group.sample_size(10);
    group.bench_function("direction_flip", |b| {
        b.iter(|| {
            prover.prove(
                "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
                "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
            )
        })
    });
    group.bench_function("distinct_toggle", |b| {
        b.iter(|| {
            prover.prove(
                "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
                "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title",
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rejection);
criterion_main!(benches);
