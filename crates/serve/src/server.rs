//! The server: acceptor, bounded admission queue, worker pool, routing.
//!
//! ## Request lifecycle
//!
//! 1. The **acceptor** thread `accept()`s connections and `try_send`s each
//!    into a bounded [`std::sync::mpsc::sync_channel`]. A full queue is
//!    answered inline with `503 overloaded` and the connection is closed —
//!    admission control happens before any request bytes are read, so an
//!    overloaded server's backlog is bounded by `queue_capacity`, never by
//!    client behavior.
//! 2. A **worker** thread takes the connection and serves its keep-alive
//!    session: read request → route → respond, until the client closes,
//!    errs, or asks for `Connection: close`. Workers call
//!    [`graphqe::GraphQE::prove_batch_outcomes`] with `threads = 1`, so each
//!    worker's thread-local caches (SMT formula, summand, arena) stay warm
//!    across every request it ever serves — the entire point of running the
//!    prover as a service. The big artifacts — parsed queries, normalized
//!    forms and their G-expression builds, frozen counterexample plans —
//!    live in process-wide shared caches since PR 8, so one worker's work
//!    warms every other worker too and adding workers no longer multiplies
//!    cache memory or cold misses.
//! 3. Request handling is wrapped in `catch_unwind` (on top of the per-pair
//!    isolation inside the batch loop): a handler panic degrades to `500
//!    internal` on that connection and the worker lives on.
//!
//! ## Cache-epoch hygiene
//!
//! All cache clears go through the generation-guarded
//! [`graphqe::counterexample::clear_pool_cache_if_unchanged`]: a worker whose
//! arena budget trips, or an admin `clear-caches` request that names the
//! generation it observed, clears only if nobody else has cleared since.
//! Concurrent tenants therefore collapse racing clears into one, and a
//! stale admin request cannot wipe the warm state other requests are using
//! — it gets `409` and the current generation to retry with.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use graphqe::verdict::Verdict;
use graphqe::GraphQE;

use crate::http::{read_request, write_response, ReadError, Request};
use crate::json::{self, Json};
use crate::protocol::{error_body, outcome_json, ProveRequest};

/// Server configuration. `Default` is tuned for a loopback deployment on a
/// small box; SERVING.md's runbook section explains how to size each knob.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port `0` picks a free port (tests); the bound address
    /// is reported by [`Server::local_addr`].
    pub addr: String,
    /// Worker threads (`0` = all available cores). Workers share the
    /// process-wide parse/normalize/plan caches and keep only the small SMT
    /// and summand memos thread-local, so scaling workers adds concurrency
    /// without multiplying cache memory.
    pub workers: usize,
    /// Bound on connections accepted but not yet picked up by a worker.
    /// Connections beyond it are rejected with `503 overloaded`.
    pub queue_capacity: usize,
    /// Per-pair deadline applied when the client does not send one (`None` =
    /// no default deadline).
    pub default_deadline: Option<Duration>,
    /// Ceiling on client-supplied deadlines (`None` = unclamped).
    pub max_deadline: Option<Duration>,
    /// Maximum pairs per `/v1/prove` request.
    pub max_pairs: usize,
    /// Maximum request-body size in bytes (declared `Content-Length` above
    /// this is rejected with `413` before the body is read).
    pub max_body_bytes: usize,
    /// Socket read timeout: an idle keep-alive connection is reaped after
    /// this long, freeing its worker.
    pub read_timeout: Duration,
    /// The prover configuration every request starts from. Per-request
    /// limits (deadline, budgets) are overlaid on `prover.limits`.
    pub prover: GraphQE,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            default_deadline: Some(Duration::from_secs(30)),
            max_deadline: Some(Duration::from_secs(120)),
            max_pairs: 256,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            prover: GraphQE::new(),
        }
    }
}

/// Monotonic counters exposed by `/v1/stats`, all relaxed: they are
/// observability, not synchronization.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    pairs: AtomicU64,
    equivalent: AtomicU64,
    not_equivalent: AtomicU64,
    unknown: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_bad_request: AtomicU64,
    panics_recovered: AtomicU64,
    epoch_resets: AtomicU64,
}

struct Shared {
    config: ServeConfig,
    counters: Counters,
    queue_depth: AtomicUsize,
    shutdown: AtomicBool,
    started: Instant,
}

/// A running server. Dropping it without calling [`Server::shutdown`] leaks
/// the listener threads until process exit (fine for a `main` that never
/// returns; tests shut down explicitly).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads.
    pub fn spawn(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = match config.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let shared = Arc::new(Shared {
            config,
            counters: Counters::default(),
            queue_depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let (sender, receiver) = sync_channel::<TcpStream>(shared.config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("graphqe-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared, &receiver))?,
            );
        }

        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("graphqe-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(&acceptor_shared, &listener, sender))?;

        Ok(Server { shared, local_addr, acceptor: Some(acceptor), workers })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    /// In-flight requests finish; idle keep-alive connections are dropped at
    /// their next read timeout.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept()` with a throwaway connection; harmless if the
        // acceptor already exited.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor owned the only sender; once it is joined, workers see
        // the channel disconnect after draining what was queued.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(
    shared: &Shared,
    listener: &TcpListener,
    sender: std::sync::mpsc::SyncSender<TcpStream>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else { continue };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wakeup connection (or a late client) during shutdown.
            return;
        }
        match sender.try_send(stream) {
            Ok(()) => {
                shared.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(mut stream)) => {
                // Structured overload response, written inline from the
                // acceptor so a saturated worker pool cannot delay the
                // rejection.
                shared.counters.rejected_overload.fetch_add(1, Ordering::Relaxed);
                let body = error_body(
                    "overloaded",
                    "admission queue is full; retry with backoff",
                    vec![("retry_after_ms", json::num(100.0))],
                );
                let _ = write_response(&mut stream, 503, &body, false);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(shared: &Shared, receiver: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = receiver.lock().unwrap_or_else(|poison| poison.into_inner());
            guard.recv()
        };
        let Ok(stream) = stream else { return }; // acceptor gone, queue drained
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        serve_connection(shared, stream);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::BadRequest(message)) => {
                shared.counters.rejected_bad_request.fetch_add(1, Ordering::Relaxed);
                let body = error_body("bad_request", &message, vec![]);
                let _ = write_response(&mut write_half, 400, &body, false);
                return;
            }
            Err(ReadError::LengthRequired) => {
                shared.counters.rejected_bad_request.fetch_add(1, Ordering::Relaxed);
                let body = error_body(
                    "bad_request",
                    "a request body requires Content-Length (chunked encoding is unsupported)",
                    vec![],
                );
                let _ = write_response(&mut write_half, 411, &body, false);
                return;
            }
            Err(ReadError::PayloadTooLarge { declared, limit }) => {
                shared.counters.rejected_bad_request.fetch_add(1, Ordering::Relaxed);
                let body = error_body(
                    "bad_request",
                    &format!("request body of {declared} bytes exceeds the limit"),
                    vec![("limit", json::num(limit as f64))],
                );
                let _ = write_response(&mut write_half, 413, &body, false);
                return;
            }
        };
        let close_after = request.close;
        // Second layer of panic isolation: `prove_batch_outcomes` already
        // degrades a panicking *pair*; this guards the envelope (routing,
        // JSON building) so one poisoned connection cannot kill a worker.
        let handled = catch_unwind(AssertUnwindSafe(|| route(shared, &request)));
        let (status, body) = handled.unwrap_or_else(|_| {
            shared.counters.panics_recovered.fetch_add(1, Ordering::Relaxed);
            (500, error_body("internal", "the request handler panicked; see server logs", vec![]))
        });
        let keep_alive = !close_after && status < 500;
        if write_response(&mut write_half, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn route(shared: &Shared, request: &Request) -> (u16, String) {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/prove") => handle_prove(shared, &request.body),
        ("GET", "/v1/health") => handle_health(shared),
        ("GET", "/v1/stats") => handle_stats(shared),
        ("POST", "/v1/admin/clear-caches") => handle_clear_caches(&request.body),
        (_, "/v1/prove") | (_, "/v1/health") | (_, "/v1/stats") | (_, "/v1/admin/clear-caches") => {
            (405, error_body("method_not_allowed", "wrong method for this path", vec![]))
        }
        _ => (404, error_body("not_found", "unknown path", vec![])),
    }
}

fn handle_prove(shared: &Shared, body: &[u8]) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        shared.counters.rejected_bad_request.fetch_add(1, Ordering::Relaxed);
        return (400, error_body("bad_request", "request body is not UTF-8", vec![]));
    };
    let parsed = match ProveRequest::parse(text, shared.config.max_pairs) {
        Ok(parsed) => parsed,
        Err(message) => {
            shared.counters.rejected_bad_request.fetch_add(1, Ordering::Relaxed);
            return (400, error_body("bad_request", &message, vec![]));
        }
    };

    // Overlay the request's limits on the server's base prover. The clone is
    // shallow config (no caches live in `GraphQE` itself), so per-request
    // provers share every warm cache layer.
    let mut prover = shared.config.prover.clone();
    prover.limits.deadline =
        parsed.effective_deadline(shared.config.default_deadline, shared.config.max_deadline);
    if let Some(budget) = parsed.smt_step_budget {
        prover.limits.smt_step_budget = budget;
    }
    if let Some(budget) = parsed.search_graph_budget {
        prover.limits.search_graph_budget = budget;
    }

    let wall = Instant::now();
    // `threads = 1`: this worker thread runs all pairs itself, keeping its
    // thread-local caches warm; concurrency comes from the worker pool.
    let (mut outcomes, epoch_resets) = prover.prove_batch_outcomes(&parsed.pairs, 1);

    // Certificates are emitted (and checked) after the batch, so the prove
    // loop itself is identical with and without them. A definite verdict
    // whose certificate cannot be emitted or fails the independent checker
    // is downgraded here, before the tallies below — the response never
    // claims a definite verdict it cannot back with a valid artifact.
    let mut certificates: Vec<Option<String>> = vec![None; outcomes.len()];
    if parsed.certificates {
        for (index, outcome) in outcomes.iter_mut().enumerate() {
            let (left, right) = &parsed.pairs[index];
            let (verdict, certificate) =
                prover.certify_verdict(left, right, outcome.verdict.clone(), true);
            outcome.failure_reason = verdict.failure_category();
            outcome.verdict = verdict;
            certificates[index] = certificate.map(|cert| cert.to_json());
        }
    }
    let wall = wall.elapsed();

    let mut equivalent = 0u64;
    let mut not_equivalent = 0u64;
    let mut unknown = 0u64;
    for outcome in &outcomes {
        match &outcome.verdict {
            Verdict::Equivalent(_) => equivalent += 1,
            Verdict::NotEquivalent(_) => not_equivalent += 1,
            Verdict::Unknown { .. } => unknown += 1,
        }
    }
    let counters = &shared.counters;
    counters.pairs.fetch_add(outcomes.len() as u64, Ordering::Relaxed);
    counters.equivalent.fetch_add(equivalent, Ordering::Relaxed);
    counters.not_equivalent.fetch_add(not_equivalent, Ordering::Relaxed);
    counters.unknown.fetch_add(unknown, Ordering::Relaxed);
    counters.epoch_resets.fetch_add(epoch_resets, Ordering::Relaxed);

    let results = outcomes
        .iter()
        .zip(&certificates)
        .zip(&parsed.pairs)
        .map(|((outcome, certificate), (left, right))| {
            outcome_json(outcome, (left, right), certificate.as_deref())
        })
        .collect();
    let body = json::obj(vec![
        ("results", Json::Arr(results)),
        ("equivalent", json::num(equivalent as f64)),
        ("not_equivalent", json::num(not_equivalent as f64)),
        ("unknown", json::num(unknown as f64)),
        ("wall_us", json::num(wall.as_micros() as f64)),
        ("epoch_resets", json::num(epoch_resets as f64)),
    ]);
    (200, body.to_string())
}

fn handle_health(shared: &Shared) -> (u16, String) {
    let body = json::obj(vec![
        ("status", json::str("ok")),
        ("uptime_ms", json::num(shared.started.elapsed().as_millis() as f64)),
    ]);
    (200, body.to_string())
}

fn handle_stats(shared: &Shared) -> (u16, String) {
    let counters = &shared.counters;
    let load = |counter: &AtomicU64| json::num(counter.load(Ordering::Relaxed) as f64);
    let (parse_hits, parse_misses) = graphqe::parse_cache_stats();
    let (normalize_hits, normalize_misses) = graphqe::normalize_cache_stats();
    let (memo_hits, memo_misses) = graphqe::counterexample::search_memo_stats();
    let (plan_hits, plan_misses) = graphqe::counterexample::plan_cache_stats();
    let (smt_hits, smt_misses) = smt::formula_cache_stats();
    let (cert_emitted, cert_check_failures) = graphqe::certificate_counters();
    let liastar = liastar::cache_counters();
    let rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        json::num(if total == 0 { 0.0 } else { hits as f64 / total as f64 })
    };
    let body = json::obj(vec![
        ("requests", load(&counters.requests)),
        ("pairs", load(&counters.pairs)),
        ("equivalent", load(&counters.equivalent)),
        ("not_equivalent", load(&counters.not_equivalent)),
        ("unknown", load(&counters.unknown)),
        ("rejected_overload", load(&counters.rejected_overload)),
        ("rejected_bad_request", load(&counters.rejected_bad_request)),
        ("panics_recovered", load(&counters.panics_recovered)),
        ("epoch_resets", load(&counters.epoch_resets)),
        ("cert_emitted", json::num(cert_emitted as f64)),
        ("cert_check_failures", json::num(cert_check_failures as f64)),
        ("queue_depth", json::num(shared.queue_depth.load(Ordering::Relaxed) as f64)),
        ("queue_capacity", json::num(shared.config.queue_capacity as f64)),
        (
            "pool_cache_generation",
            json::num(graphqe::counterexample::pool_cache_generation() as f64),
        ),
        (
            "caches",
            json::obj(vec![
                ("parse_hit_rate", rate(parse_hits, parse_misses)),
                ("normalize_hit_rate", rate(normalize_hits, normalize_misses)),
                // Process-wide shared (frozen-plan) since PR 8: one rate for
                // all workers, not a per-thread average.
                ("plan_hit_rate", rate(plan_hits, plan_misses)),
                ("search_memo_hit_rate", rate(memo_hits, memo_misses)),
                ("smt_formula_hit_rate", rate(smt_hits, smt_misses)),
                ("summand_hit_rate", rate(liastar.summand_hits, liastar.summand_misses)),
                ("disjoint_hit_rate", rate(liastar.disjoint_hits, liastar.disjoint_misses)),
            ]),
        ),
    ]);
    (200, body.to_string())
}

/// `POST /v1/admin/clear-caches`: clears the process-wide pool/memo/plan
/// caches (and the parse and normalize caches). With
/// `{"expected_generation":N}` the clear is
/// generation-guarded: it happens only if no clear has landed since the
/// caller observed generation `N` (from `/v1/stats`), otherwise `409` — the
/// compare-and-clear that keeps one tenant's reset from wiping another's
/// freshly rebuilt state.
fn handle_clear_caches(body: &[u8]) -> (u16, String) {
    let expected = match std::str::from_utf8(body).ok().filter(|text| !text.trim().is_empty()) {
        None => None,
        Some(text) => match Json::parse(text) {
            Ok(doc) => match doc.get("expected_generation") {
                None | Some(Json::Null) => None,
                Some(value) => match value.as_u64() {
                    Some(generation) => Some(generation),
                    None => {
                        return (
                            400,
                            error_body(
                                "bad_request",
                                "\"expected_generation\" must be a non-negative integer",
                                vec![],
                            ),
                        )
                    }
                },
            },
            Err(e) => {
                return (400, error_body("bad_request", &format!("invalid JSON: {e}"), vec![]))
            }
        },
    };
    let cleared = match expected {
        Some(generation) => graphqe::counterexample::clear_pool_cache_if_unchanged(generation),
        None => {
            graphqe::counterexample::clear_pool_cache();
            true
        }
    };
    if cleared {
        graphqe::clear_parse_cache();
        graphqe::clear_normalize_cache();
    }
    let body = json::obj(vec![
        ("cleared", Json::Bool(cleared)),
        ("generation", json::num(graphqe::counterexample::pool_cache_generation() as f64)),
    ]);
    (if cleared { 200 } else { 409 }, body.to_string())
}
