//! # gexpr
//!
//! The U-semiring based **G-expression** algebraic representation of Cypher
//! queries — the central contribution of *"Proving Cypher Query
//! Equivalence"* (ICDE 2025).
//!
//! A G-expression `g(t)` models a Cypher query as a natural-number semiring
//! expression that returns the multiplicity of an arbitrary tuple `t` in the
//! query result over an *unspecified* property graph. The crate provides:
//!
//! * the algebra itself ([`GExpr`], [`GTerm`], [`GAtom`]) with the
//!   graph-native functions `Node`, `Rel`, `Lab`, `src`/`tgt` and
//!   `UNBOUNDED`;
//! * construction from parsed Cypher ASTs ([`build_query`]) covering the
//!   features of Fig. 4 and Table I of the paper;
//! * algebraic [`normalize()`]-ation into a sum-of-summations-of-products form
//!   on which the `liastar` crate decides equivalence.
//!
//! ```
//! use cypher_parser::parse_query;
//! use gexpr::build_query;
//!
//! let query = parse_query("MATCH (n1)-[r]->(n2) WHERE n1.age = 59 RETURN n1").unwrap();
//! let output = build_query(&query).unwrap();
//! assert_eq!(output.columns, 1);
//! println!("{}", output.expr); // Σ_{e0,e1,e2}(Node(e0) × Rel(e1) × ... × [e0.age = 59])
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod expr;
pub mod normalize;
pub mod term;

pub use arena::{
    peak_node_count, reset_peak_node_count, thread_store_epoch, thread_store_node_count,
    with_thread_store, GStore, NodeId, Sym, TermId,
};
pub use builder::{
    build_query, build_query_typed, BuildError, BuildOutput, Builder, ColumnKind,
    UnsupportedFeature,
};
pub use expr::GExpr;
pub use normalize::{is_zero_one, normalize, normalize_tree};
pub use term::{CmpOp, GAggKind, GAtom, GConst, GTerm, VarId};
