//! A bag-semantics reference evaluator for the supported Cypher fragment.
//!
//! The evaluator is the *oracle* of GraphQE-rs: it is used by property tests
//! to cross-check the prover (two queries proven equivalent must return the
//! same bag of rows on any graph) and by the counterexample search that
//! certifies non-equivalence.

use std::cmp::Ordering;
use std::fmt;

use cypher_parser::ast::{
    Aggregate, Clause, Expr, MatchClause, Projection, ProjectionItems, Query, SingleQuery,
    UnionKind, WithClause,
};

use crate::expr::{eval_expr, eval_predicate, EvalCtx, Row, RowKey};
use crate::graph::PropertyGraph;
use crate::matching::match_clause;
use crate::value::Value;

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Human readable message.
    pub message: String,
}

impl EvalError {
    /// Creates an evaluation error.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError { message: message.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// The tabular result of a query: named columns and rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names, in `RETURN` order.
    pub columns: Vec<String>,
    /// The result rows, in result order.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// An empty result with no columns.
    pub fn empty() -> Self {
        QueryResult { columns: Vec::new(), rows: Vec::new() }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows sorted by the total value order — the canonical bag
    /// representation used for bag-equality comparison.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    /// Bag equality per Definition 4 of the paper: the results contain the
    /// same tuples with the same multiplicities. Column *names* are ignored
    /// (two equivalent queries may label their columns differently), but the
    /// arity must agree.
    pub fn bag_equal(&self, other: &QueryResult) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.sorted_rows()
            .iter()
            .zip(other.sorted_rows().iter())
            .all(|(a, b)| cmp_rows(a, b) == Ordering::Equal)
    }

    /// Ordered equality: same tuples, multiplicities and order (used when the
    /// outermost clause has an `ORDER BY`).
    pub fn ordered_equal(&self, other: &QueryResult) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows.iter().zip(other.rows.iter()).all(|(a, b)| cmp_rows(a, b) == Ordering::Equal)
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// The evaluator configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluator {
    /// Upper bound on the number of hops explored for unbounded
    /// variable-length patterns (`-[*]->`). Defaults to the number of
    /// relationships in the graph, which is exhaustive because relationships
    /// may not repeat along a path.
    pub max_var_length: Option<u32>,
    /// Use the linear-scan candidate enumeration ([`crate::matching::scan`])
    /// instead of the adjacency index (see [`crate::expr::EvalCtx`]).
    pub scan_matching: bool,
}

impl Evaluator {
    /// Creates an evaluator with default settings.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Evaluates a query over a property graph.
    pub fn evaluate(&self, graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
        let ctx = EvalCtx {
            graph,
            max_var_length: self.max_var_length.unwrap_or(graph.relationship_count() as u32),
            scan_matching: self.scan_matching,
        };
        evaluate_union_query(ctx, query, vec![Row::new()], true)
    }
}

/// Convenience function: evaluates `query` on `graph` with default settings.
pub fn evaluate_query(graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
    Evaluator::new().evaluate(graph, query)
}

/// [`evaluate_query`] forced onto the linear-scan matching baseline — the
/// differential oracle for the indexed evaluator.
pub fn evaluate_query_scan(graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
    Evaluator { scan_matching: true, ..Evaluator::new() }.evaluate(graph, query)
}

/// Evaluates a (possibly `UNION`-combined) query starting from the given
/// rows. Used both at the top level and for `EXISTS { ... }` subqueries,
/// where `initial_rows` carries the outer bindings.
pub(crate) fn evaluate_single_query_on_rows(
    ctx: EvalCtx<'_>,
    query: &Query,
    initial_rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    evaluate_union_query(ctx, query, initial_rows, require_return)
}

fn evaluate_union_query(
    ctx: EvalCtx<'_>,
    query: &Query,
    initial_rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    let mut combined: Option<QueryResult> = None;
    for (index, part) in query.parts.iter().enumerate() {
        let result = evaluate_single(ctx, part, initial_rows.clone(), require_return)?;
        combined = Some(match combined {
            None => result,
            Some(acc) => {
                if acc.columns.len() != result.columns.len() {
                    return Err(EvalError::new(
                        "UNION requires sub-queries with the same number of columns",
                    ));
                }
                let mut rows = acc.rows;
                rows.extend(result.rows);
                let merged = QueryResult { columns: acc.columns, rows };
                match query.unions[index - 1] {
                    UnionKind::All => merged,
                    UnionKind::Distinct => dedupe_result(merged),
                }
            }
        });
    }
    Ok(combined.unwrap_or_else(QueryResult::empty))
}

fn dedupe_result(result: QueryResult) -> QueryResult {
    let mut seen: Vec<Vec<Value>> = Vec::new();
    let mut rows = Vec::new();
    for row in result.rows {
        if !seen.iter().any(|s| cmp_rows(s, &row) == Ordering::Equal) {
            seen.push(row.clone());
            rows.push(row);
        }
    }
    QueryResult { columns: result.columns, rows }
}

fn evaluate_single(
    ctx: EvalCtx<'_>,
    query: &SingleQuery,
    mut rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                rows = apply_match(ctx, m, rows)?;
            }
            Clause::Unwind(u) => {
                let mut next = Vec::new();
                for row in rows {
                    let value = eval_expr(ctx, &row, &u.expr)?;
                    match value {
                        Value::Null => {}
                        Value::List(items) => {
                            for item in items {
                                let mut extended = row.clone();
                                extended.insert(RowKey::from(u.alias.as_str()), item);
                                next.push(extended);
                            }
                        }
                        other => {
                            let mut extended = row.clone();
                            extended.insert(RowKey::from(u.alias.as_str()), other);
                            next.push(extended);
                        }
                    }
                }
                rows = next;
            }
            Clause::With(w) => {
                rows = apply_with(ctx, w, rows)?;
            }
            Clause::Return(p) => {
                let (columns, projected) = apply_projection(ctx, p, &rows)?;
                let result_rows =
                    projected.into_iter().map(|(values, _)| values).collect::<Vec<_>>();
                return Ok(QueryResult { columns, rows: result_rows });
            }
        }
    }
    if require_return {
        return Err(EvalError::new("query does not end with a RETURN clause"));
    }
    // Subquery (EXISTS) without RETURN: expose the surviving multiplicity.
    Ok(QueryResult { columns: Vec::new(), rows: rows.into_iter().map(|_| Vec::new()).collect() })
}

fn apply_match(
    ctx: EvalCtx<'_>,
    clause: &MatchClause,
    rows: Vec<Row>,
) -> Result<Vec<Row>, EvalError> {
    let mut next = Vec::new();
    for row in rows {
        let matches = match_clause(ctx, clause, &row)?;
        if matches.is_empty() && clause.optional {
            // OPTIONAL MATCH keeps the row, binding the pattern variables to
            // NULL (left outer join semantics).
            let mut extended = row.clone();
            for name in pattern_variables(clause) {
                extended.entry(RowKey::from(name.as_str())).or_insert(Value::Null);
            }
            next.push(extended);
        } else {
            next.extend(matches);
        }
    }
    Ok(next)
}

/// All variables introduced by the patterns of a `MATCH` clause.
fn pattern_variables(clause: &MatchClause) -> Vec<String> {
    let mut names = Vec::new();
    for pattern in &clause.patterns {
        if let Some(v) = &pattern.variable {
            names.push(v.clone());
        }
        for node in pattern.nodes() {
            if let Some(v) = &node.variable {
                names.push(v.clone());
            }
        }
        for rel in pattern.relationships() {
            if let Some(v) = &rel.variable {
                names.push(v.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn apply_with(
    ctx: EvalCtx<'_>,
    clause: &WithClause,
    rows: Vec<Row>,
) -> Result<Vec<Row>, EvalError> {
    let (columns, projected) = apply_projection(ctx, &clause.projection, &rows)?;
    let mut next = Vec::new();
    for (values, env) in projected {
        let mut row = Row::new();
        for (name, value) in columns.iter().zip(values) {
            row.insert(RowKey::from(name.as_str()), value);
        }
        if let Some(predicate) = &clause.where_clause {
            // The WHERE of a WITH sees both the projected names and (for
            // robustness) the pre-projection bindings.
            let mut combined = env.clone();
            combined.extend(row.clone());
            if !eval_predicate(ctx, &combined, predicate)? {
                continue;
            }
        }
        next.push(row);
    }
    Ok(next)
}

/// Applies a projection (shared by `WITH` and `RETURN`).
///
/// Returns the output column names and, for every output row, the projected
/// values together with the *environment* row used to produce it (the
/// pre-projection bindings merged with the projected ones) — the environment
/// is what `ORDER BY` and a `WITH ... WHERE` may refer to.
#[allow(clippy::type_complexity)]
fn apply_projection(
    ctx: EvalCtx<'_>,
    projection: &Projection,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<(Vec<Value>, Row)>), EvalError> {
    // Expand `*` into the sorted list of visible variables.
    let items: Vec<(String, Expr)> = match &projection.items {
        ProjectionItems::Star => {
            let mut names: Vec<String> = rows
                .iter()
                .flat_map(|r| r.keys().map(|k| k.to_string()))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            names.sort();
            names.into_iter().map(|n| (n.clone(), Expr::Variable(n))).collect()
        }
        ProjectionItems::Items(items) => {
            items.iter().map(|item| (item.output_name(), item.expr.clone())).collect()
        }
    };
    let columns: Vec<String> = items.iter().map(|(name, _)| name.clone()).collect();

    let has_aggregate = items.iter().any(|(_, expr)| expr.contains_aggregate());
    let mut produced: Vec<(Vec<Value>, Row)> = Vec::new();

    if has_aggregate {
        // Group rows by the values of the non-aggregate items.
        let grouping: Vec<&(String, Expr)> =
            items.iter().filter(|(_, e)| !e.contains_aggregate()).collect();
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        for row in rows {
            let key = grouping
                .iter()
                .map(|(_, e)| eval_expr(ctx, row, e))
                .collect::<Result<Vec<_>, _>>()?;
            match groups.iter_mut().find(|(k, _)| cmp_rows(k, &key) == Ordering::Equal) {
                Some((_, members)) => members.push(row.clone()),
                None => groups.push((key, vec![row.clone()])),
            }
        }
        // A global aggregate over zero rows still produces one row.
        if groups.is_empty() && grouping.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        for (_, members) in groups {
            let representative = members.first().cloned().unwrap_or_default();
            let mut values = Vec::new();
            for (_, expr) in &items {
                values.push(eval_with_aggregates(ctx, &members, &representative, expr)?);
            }
            let mut env = representative.clone();
            for (name, value) in columns.iter().zip(values.iter()) {
                env.insert(RowKey::from(name.as_str()), value.clone());
            }
            produced.push((values, env));
        }
    } else {
        for row in rows {
            let mut values = Vec::new();
            for (_, expr) in &items {
                values.push(eval_expr(ctx, row, expr)?);
            }
            let mut env = row.clone();
            for (name, value) in columns.iter().zip(values.iter()) {
                env.insert(RowKey::from(name.as_str()), value.clone());
            }
            produced.push((values, env));
        }
    }

    if projection.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        produced.retain(|(values, _)| {
            if seen.iter().any(|s| cmp_rows(s, values) == Ordering::Equal) {
                false
            } else {
                seen.push(values.clone());
                true
            }
        });
    }

    if !projection.order_by.is_empty() {
        let mut keyed: Vec<(Vec<(Value, bool)>, (Vec<Value>, Row))> = Vec::new();
        for entry in produced {
            let mut keys = Vec::new();
            for order in &projection.order_by {
                keys.push((eval_expr(ctx, &entry.1, &order.expr)?, order.ascending));
            }
            keyed.push((keys, entry));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for ((va, asc), (vb, _)) in a.iter().zip(b.iter()) {
                let ord = va.total_cmp(vb);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        produced = keyed.into_iter().map(|(_, entry)| entry).collect();
    }

    if let Some(skip) = &projection.skip {
        let n = constant_usize(ctx, skip, "SKIP")?;
        produced = produced.into_iter().skip(n).collect();
    }
    if let Some(limit) = &projection.limit {
        let n = constant_usize(ctx, limit, "LIMIT")?;
        produced.truncate(n);
    }
    Ok((columns, produced))
}

/// Evaluates an expression that may contain aggregate calls over a group of
/// rows. Non-aggregate sub-expressions are evaluated on the representative
/// row of the group.
fn eval_with_aggregates(
    ctx: EvalCtx<'_>,
    group: &[Row],
    representative: &Row,
    expr: &Expr,
) -> Result<Value, EvalError> {
    match expr {
        Expr::CountStar { distinct } => {
            if *distinct {
                let mut seen: Vec<Vec<Value>> = Vec::new();
                for row in group {
                    let values: Vec<Value> = row.values().cloned().collect();
                    if !seen.iter().any(|s| cmp_rows(s, &values) == Ordering::Equal) {
                        seen.push(values);
                    }
                }
                Ok(Value::Integer(seen.len() as i64))
            } else {
                Ok(Value::Integer(group.len() as i64))
            }
        }
        Expr::AggregateCall { func, distinct, arg } => {
            let mut values = Vec::new();
            for row in group {
                let value = eval_expr(ctx, row, arg)?;
                if !value.is_null() {
                    values.push(value);
                }
            }
            if *distinct {
                let mut unique: Vec<Value> = Vec::new();
                for value in values {
                    if !unique.iter().any(|u| u.total_cmp(&value) == Ordering::Equal) {
                        unique.push(value);
                    }
                }
                values = unique;
            }
            Ok(compute_aggregate(*func, values))
        }
        Expr::Binary(op, lhs, rhs) => {
            let left = eval_with_aggregates(ctx, group, representative, lhs)?;
            let right = eval_with_aggregates(ctx, group, representative, rhs)?;
            // Re-dispatch on literal values by delegating to the scalar path.
            let lit = Expr::Binary(
                *op,
                Box::new(value_to_placeholder("·agg_lhs")),
                Box::new(value_to_placeholder("·agg_rhs")),
            );
            let mut row = representative.clone();
            row.insert(RowKey::from("·agg_lhs"), left);
            row.insert(RowKey::from("·agg_rhs"), right);
            eval_expr(ctx, &row, &lit)
        }
        Expr::Unary(op, inner) => {
            let value = eval_with_aggregates(ctx, group, representative, inner)?;
            let mut row = representative.clone();
            row.insert(RowKey::from("·agg"), value);
            eval_expr(ctx, &row, &Expr::Unary(*op, Box::new(value_to_placeholder("·agg"))))
        }
        _ if !expr.contains_aggregate() => eval_expr(ctx, representative, expr),
        other => Err(EvalError::new(format!("unsupported aggregate expression shape: {other:?}"))),
    }
}

fn value_to_placeholder(name: &str) -> Expr {
    Expr::Variable(name.to_string())
}

fn compute_aggregate(func: Aggregate, values: Vec<Value>) -> Value {
    match func {
        Aggregate::Count => Value::Integer(values.len() as i64),
        Aggregate::Collect => Value::List(values),
        Aggregate::Sum => {
            if values.is_empty() {
                return Value::Integer(0);
            }
            let mut acc = Value::Integer(0);
            for value in values {
                acc = acc.add(&value);
            }
            acc
        }
        Aggregate::Min => values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null),
        Aggregate::Max => values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null),
        Aggregate::Avg => {
            if values.is_empty() {
                return Value::Null;
            }
            let count = values.len() as f64;
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            Value::Float(sum / count)
        }
    }
}

fn constant_usize(ctx: EvalCtx<'_>, expr: &Expr, what: &str) -> Result<usize, EvalError> {
    let value = eval_expr(ctx, &Row::new(), expr)?;
    match value.as_integer() {
        Some(v) if v >= 0 => Ok(v as usize),
        _ => Err(EvalError::new(format!("{what} requires a non-negative integer, got {value}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn run(graph: &PropertyGraph, text: &str) -> QueryResult {
        let query = parse_query(text).unwrap();
        evaluate_query(graph, &query).unwrap()
    }

    fn cell(result: &QueryResult, row: usize, col: usize) -> &Value {
        &result.rows[row][col]
    }

    #[test]
    fn evaluates_the_paper_listing_1() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
             WHERE reader.name = 'Alice' RETURN writer.name",
        );
        assert_eq!(result.columns, vec!["writer.name"]);
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_projection_aliases_and_order() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person) RETURN p.name AS name ORDER BY p.age DESC");
        assert_eq!(result.columns, vec!["name"]);
        assert_eq!(
            result.rows,
            vec![
                vec![Value::from("J. K. Rowling")],
                vec![Value::from("Alice")],
                vec![Value::from("Jack")],
            ]
        );
    }

    #[test]
    fn evaluates_skip_and_limit() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name SKIP 1 LIMIT 1");
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_distinct() {
        let graph = PropertyGraph::paper_example();
        let all = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN b.title");
        assert_eq!(all.len(), 2);
        let distinct = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN DISTINCT b.title");
        assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn evaluates_union_and_union_all() {
        let graph = PropertyGraph::paper_example();
        let all =
            run(&graph, "MATCH (p:Person) RETURN p.name UNION ALL MATCH (p:Person) RETURN p.name");
        assert_eq!(all.len(), 6);
        let distinct =
            run(&graph, "MATCH (p:Person) RETURN p.name UNION MATCH (p:Person) RETURN p.name");
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn evaluates_with_pipeline() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (p:Person) WITH p.name AS name WHERE name <> 'Jack' RETURN name ORDER BY name",
        );
        assert_eq!(
            result.rows,
            vec![vec![Value::from("Alice")], vec![Value::from("J. K. Rowling")]]
        );
    }

    #[test]
    fn evaluates_optional_match() {
        let graph = PropertyGraph::paper_example();
        // Only the book has no outgoing relationship; OPTIONAL MATCH keeps it
        // with r = NULL.
        let result = run(&graph, "MATCH (n) OPTIONAL MATCH (n)-[r]->(m) RETURN n, r");
        assert_eq!(result.len(), 4);
        let nulls = result.rows.iter().filter(|row| row[1].is_null()).count();
        assert_eq!(nulls, 1);
        // Plain MATCH drops the unmatched row.
        let inner = run(&graph, "MATCH (n) MATCH (n)-[r]->(m) RETURN n, r");
        assert_eq!(inner.len(), 3);
    }

    #[test]
    fn evaluates_optional_match_where_is_part_of_the_optional_pattern() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (n:Person) OPTIONAL MATCH (n)-[r:READ]->(b) WHERE b.language = 'French' \
             RETURN n.name, r",
        );
        // Nobody read a French book, so every person keeps a NULL r.
        assert_eq!(result.len(), 3);
        assert!(result.rows.iter().all(|row| row[1].is_null()));
    }

    #[test]
    fn evaluates_aggregates() {
        let graph = PropertyGraph::paper_example();
        let result =
            run(&graph, "MATCH (p:Person) RETURN COUNT(*), SUM(p.age), MIN(p.age), MAX(p.age)");
        assert_eq!(result.rows.len(), 1);
        assert_eq!(cell(&result, 0, 0), &Value::Integer(3));
        assert_eq!(cell(&result, 0, 1), &Value::Integer(112));
        assert_eq!(cell(&result, 0, 2), &Value::Integer(26));
        assert_eq!(cell(&result, 0, 3), &Value::Integer(59));
    }

    #[test]
    fn evaluates_grouped_aggregates() {
        let graph = PropertyGraph::paper_example();
        // Group readers by book title.
        let result = run(
            &graph,
            "MATCH (p:Person)-[:READ]->(b:Book) RETURN b.title, COUNT(*) ORDER BY b.title",
        );
        assert_eq!(result.rows, vec![vec![Value::from("Harry Potter"), Value::Integer(2)]]);
    }

    #[test]
    fn aggregate_over_empty_input() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (n:Missing) RETURN COUNT(n)");
        assert_eq!(result.rows, vec![vec![Value::Integer(0)]]);
        // With a grouping key there are no groups and hence no rows.
        let result = run(&graph, "MATCH (n:Missing) RETURN n.name, COUNT(n)");
        assert!(result.is_empty());
    }

    #[test]
    fn evaluates_collect_and_count_distinct() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN COLLECT(b.title)");
        assert_eq!(
            result.rows,
            vec![vec![Value::List(vec![Value::from("Harry Potter"), Value::from("Harry Potter")])]]
        );
        let result = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN COUNT(DISTINCT b.title)");
        assert_eq!(result.rows, vec![vec![Value::Integer(1)]]);
    }

    #[test]
    fn evaluates_unwind() {
        let graph = PropertyGraph::new();
        let result = run(&graph, "UNWIND [1, 2, 3] AS x RETURN x");
        assert_eq!(result.len(), 3);
        let result = run(
            &graph,
            "WITH [{c1: 0, c2: 1}, {c1: 2, c2: 3}] AS tmp UNWIND tmp AS row RETURN row.c1",
        );
        assert_eq!(result.rows, vec![vec![Value::Integer(0)], vec![Value::Integer(2)]]);
    }

    #[test]
    fn evaluates_exists_subquery() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (n:Person) WHERE EXISTS { MATCH (n)-[:WRITE]->(b) RETURN b } RETURN n.name",
        );
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_return_star() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person)-[r:WRITE]->(b) RETURN *");
        assert_eq!(result.columns, vec!["a", "b", "r"]);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn evaluates_cartesian_product_of_patterns() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person), (b:Book) RETURN a, b");
        assert_eq!(result.len(), 3);
        let result = run(&graph, "MATCH (a:Person) MATCH (b:Person) RETURN a, b");
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn bag_and_ordered_equality() {
        let graph = PropertyGraph::paper_example();
        let asc = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name");
        let desc = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name DESC");
        assert!(asc.bag_equal(&desc));
        assert!(!asc.ordered_equal(&desc));
        assert!(asc.ordered_equal(&asc));
        let fewer = run(&graph, "MATCH (p:Person) RETURN p.name LIMIT 2");
        assert!(!asc.bag_equal(&fewer));
    }

    #[test]
    fn with_star_keeps_all_bindings() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person)-[r]->(b) WITH * RETURN a, r, b");
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn errors_on_invalid_limit() {
        let graph = PropertyGraph::paper_example();
        let query = parse_query("MATCH (n) RETURN n LIMIT -1").unwrap();
        assert!(evaluate_query(&graph, &query).is_err());
    }

    #[test]
    fn union_arity_mismatch_is_an_error() {
        let graph = PropertyGraph::paper_example();
        let query = parse_query("MATCH (n) RETURN n UNION ALL MATCH (n) RETURN n, n.name").unwrap();
        assert!(evaluate_query(&graph, &query).is_err());
    }

    #[test]
    fn evaluates_with_order_limit_then_match_listing_2() {
        let graph = PropertyGraph::paper_example();
        // Q1 and Q2 of Listing 2 are equivalent: pick the node with the
        // smallest p1 (here: name), then follow an outgoing edge.
        let q1 = run(
            &graph,
            "MATCH (n1) WITH n1 ORDER BY n1.name LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
        );
        let q2 = run(
            &graph,
            "MATCH (n1) WITH n1 ORDER BY n1.name LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
        );
        assert!(q1.bag_equal(&q2));
    }
}
