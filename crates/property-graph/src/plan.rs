//! The query-plan layer: `MATCH` patterns and projections lowered once into
//! [`SymId`]-native compiled structures.
//!
//! The name-resolving matcher in [`crate::matching`] calls
//! `row.get(symbols, name)` (a hash probe plus a scan) and `symbols.intern`
//! for every candidate it tests — per candidate, per graph, per search. This
//! module lowers each clause **once per query run** into compiled structures
//! whose variables are pre-interned [`SymId`]s, so the hot matching loop
//! performs integer-keyed row operations only:
//!
//! * [`CompiledMatch`] — path patterns with pre-interned variable ids,
//!   the `WHERE` predicate, and the pre-computed `OPTIONAL MATCH` null-fill
//!   variable set;
//! * [`CompiledProjection`] — pre-computed output column names (no
//!   per-application pretty-printing) and pre-interned output ids;
//! * [`PlanCache`] — the per-run lowering memo, keyed by AST node address
//!   (stable while the [`Query`] is alive), shared through
//!   [`crate::expr::EvalCtx::plans`];
//! * [`QueryPlan`] — a query's symbol table plus plan cache as one owned
//!   value, so callers (notably the counterexample search's cross-search
//!   plan cache) can keep plans alongside an owned query.
//!
//! The compiled matcher below mirrors the interpreted matcher's recursion
//! and candidate enumeration **exactly** — identical rows in identical
//! order, on both the adjacency-indexed and linear-scan enumeration paths —
//! and the interpreted matcher survives unchanged as the differential
//! oracle behind `Evaluator::interpret_patterns`, the same pattern as
//! `scan_matching` (PR 3) and `map_rows` (PR 4).

use std::cell::RefCell;
use std::sync::Arc;

use cypher_parser::ast::{
    Expr, MatchClause, NodePattern, PathPattern, Projection, ProjectionItems, Query, RelDirection,
    RelationshipPattern, VarLength,
};

use crate::eval::EvalError;
use crate::expr::{eval_const_expr, eval_expr, EvalCtx, Row, SymId, SymbolTable};
use crate::fxhash::FxHashMap;
use crate::graph::{EntityId, NodeId, RelId};
use crate::value::Value;

// ---------------------------------------------------------------------------
// Compiled structures
// ---------------------------------------------------------------------------

/// A `MATCH` clause lowered to [`SymId`]-native patterns.
#[derive(Debug)]
pub struct CompiledMatch {
    /// `true` for `OPTIONAL MATCH`.
    pub optional: bool,
    /// The compiled comma-separated path patterns.
    pub patterns: Vec<CompiledPathPattern>,
    /// The clause's `WHERE` predicate (evaluated through the shared
    /// expression evaluator — property-map and predicate expressions still
    /// resolve variables by name, they are not on the per-candidate path).
    pub where_clause: Option<Expr>,
    /// Every variable the clause's patterns introduce, pre-interned and in
    /// the same (name-sorted, deduplicated) order the interpreted
    /// `OPTIONAL MATCH` null-fill uses.
    pub optional_syms: Vec<SymId>,
}

/// One path pattern with pre-interned variables.
#[derive(Debug)]
pub struct CompiledPathPattern {
    /// The path variable, if the pattern is named.
    pub variable: Option<SymId>,
    /// The left-most node pattern.
    pub start: CompiledNodePattern,
    /// The chain of relationship/node segments.
    pub segments: Vec<CompiledSegment>,
}

/// One `-[...]-(...)` step of a compiled path pattern.
#[derive(Debug)]
pub struct CompiledSegment {
    /// The relationship pattern of this step.
    pub relationship: CompiledRelPattern,
    /// The node pattern this step ends at.
    pub node: CompiledNodePattern,
}

/// A required property value in a compiled pattern: constant expressions
/// (literals and unary `+`/`-` over them — the overwhelmingly common case in
/// property maps) pre-evaluate to a [`Value`] at lowering time; anything
/// row-dependent stays a dynamic [`Expr`].
#[derive(Debug)]
pub enum PropValue {
    /// The expression was row-independent; this is its value.
    Const(Value),
    /// The expression depends on the row/graph; evaluated per candidate.
    Dynamic(Expr),
}

fn lower_properties(properties: &[(String, Expr)]) -> Vec<(String, PropValue)> {
    properties
        .iter()
        .map(|(key, expr)| {
            let value = match eval_const_expr(expr) {
                Some(value) => PropValue::Const(value),
                None => PropValue::Dynamic(expr.clone()),
            };
            (key.clone(), value)
        })
        .collect()
}

/// The compiled counterpart of [`crate::matching`]'s `properties_match`:
/// constant expectations skip expression evaluation entirely.
fn compiled_properties_match(
    ctx: EvalCtx<'_>,
    row: &Row,
    entity: EntityId,
    properties: &[(String, PropValue)],
) -> Result<bool, EvalError> {
    for (key, expected) in properties {
        let actual = ctx.graph.property(entity, key);
        let matches = match expected {
            PropValue::Const(value) => actual.cypher_eq(value),
            PropValue::Dynamic(expr) => actual.cypher_eq(&eval_expr(ctx, row, expr)?),
        };
        if matches != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// A node pattern with its variable pre-interned. Labels stay as names
/// (label ids are per-graph — the adjacency index resolves them per graph);
/// property expressions are cloned out of the AST once at lowering time,
/// with constant values pre-evaluated (see [`PropValue`]).
#[derive(Debug)]
pub struct CompiledNodePattern {
    /// The pre-interned node variable, if given.
    pub variable: Option<SymId>,
    /// Labels required on the node (conjunctive).
    pub labels: Vec<String>,
    /// Required property values.
    pub properties: Vec<(String, PropValue)>,
}

/// A relationship pattern with its variable pre-interned.
#[derive(Debug)]
pub struct CompiledRelPattern {
    /// The pre-interned relationship variable, if given.
    pub variable: Option<SymId>,
    /// Alternative labels (`:A|B`).
    pub labels: Vec<String>,
    /// Required property values.
    pub properties: Vec<(String, PropValue)>,
    /// Direction of the relationship.
    pub direction: RelDirection,
    /// Variable-length specifier, if the pattern is `*`-quantified.
    pub length: Option<VarLength>,
}

impl CompiledRelPattern {
    /// Returns `true` if this is a variable-length pattern.
    pub fn is_var_length(&self) -> bool {
        self.length.is_some()
    }
}

/// A `WITH`/`RETURN` projection with explicit items lowered once: output
/// column names are computed at lowering time (the interpreted path
/// pretty-prints un-aliased expressions on **every** application) and output
/// ids are pre-interned so per-row environment binding skips name hashing.
/// `RETURN *` stays dynamic — its column set depends on the rows.
#[derive(Debug)]
pub struct CompiledProjection {
    /// Output column names, in item order.
    pub columns: Vec<String>,
    /// The pre-interned ids of `columns`, position by position.
    pub syms: Vec<SymId>,
    /// The projected expressions, cloned out of the AST once.
    pub exprs: Vec<Expr>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

fn lower_node(symbols: &SymbolTable, pattern: &NodePattern) -> CompiledNodePattern {
    CompiledNodePattern {
        variable: pattern.variable.as_deref().map(|name| symbols.intern(name)),
        labels: pattern.labels.clone(),
        properties: lower_properties(&pattern.properties),
    }
}

fn lower_rel(symbols: &SymbolTable, pattern: &RelationshipPattern) -> CompiledRelPattern {
    CompiledRelPattern {
        variable: pattern.variable.as_deref().map(|name| symbols.intern(name)),
        labels: pattern.labels.clone(),
        properties: lower_properties(&pattern.properties),
        direction: pattern.direction,
        length: pattern.length,
    }
}

fn lower_path(symbols: &SymbolTable, pattern: &PathPattern) -> CompiledPathPattern {
    CompiledPathPattern {
        variable: pattern.variable.as_deref().map(|name| symbols.intern(name)),
        start: lower_node(symbols, &pattern.start),
        segments: pattern
            .segments
            .iter()
            .map(|segment| CompiledSegment {
                relationship: lower_rel(symbols, &segment.relationship),
                node: lower_node(symbols, &segment.node),
            })
            .collect(),
    }
}

/// Lowers a `MATCH` clause. Public so tests can lower without a cache.
pub fn lower_match(symbols: &SymbolTable, clause: &MatchClause) -> CompiledMatch {
    // The null-fill set mirrors `eval::pattern_variables`: sorted by name,
    // deduplicated, then interned.
    let mut names = Vec::new();
    for pattern in &clause.patterns {
        if let Some(v) = &pattern.variable {
            names.push(v.clone());
        }
        for node in pattern.nodes() {
            if let Some(v) = &node.variable {
                names.push(v.clone());
            }
        }
        for rel in pattern.relationships() {
            if let Some(v) = &rel.variable {
                names.push(v.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    CompiledMatch {
        optional: clause.optional,
        patterns: clause.patterns.iter().map(|p| lower_path(symbols, p)).collect(),
        where_clause: clause.where_clause.clone(),
        optional_syms: names.iter().map(|name| symbols.intern(name)).collect(),
    }
}

/// Lowers a projection's explicit items. Callers must not pass `RETURN *`
/// projections (those stay dynamic).
pub fn lower_projection(symbols: &SymbolTable, projection: &Projection) -> CompiledProjection {
    let ProjectionItems::Items(items) = &projection.items else {
        unreachable!("star projections are not lowered");
    };
    let columns: Vec<String> = items.iter().map(|item| item.output_name()).collect();
    let syms = columns.iter().map(|name| symbols.intern(name)).collect();
    CompiledProjection {
        syms,
        exprs: items.iter().map(|item| item.expr.clone()).collect(),
        columns,
    }
}

// ---------------------------------------------------------------------------
// The per-run plan cache and the owned query plan
// ---------------------------------------------------------------------------

/// The per-run lowering memo: each `MATCH` clause and explicit projection of
/// the query is lowered at most once, keyed by its AST node address.
///
/// Address keys are sound because the cache never outlives the query: a
/// [`crate::eval::PreparedQuery`] borrows the query for the cache's whole
/// lifetime, and [`QueryPlan`] users keep query and plan together (the AST
/// nodes live in heap-allocated clause vectors, so moving the `Query` value
/// itself does not move them).
#[derive(Debug, Default)]
pub struct PlanCache {
    matches: RefCell<FxHashMap<usize, Arc<CompiledMatch>>>,
    projections: RefCell<FxHashMap<usize, Arc<CompiledProjection>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The compiled plan of `clause`, lowering on first use.
    pub fn match_plan(&self, symbols: &SymbolTable, clause: &MatchClause) -> Arc<CompiledMatch> {
        let key = clause as *const MatchClause as usize;
        if let Some(hit) = self.matches.borrow().get(&key) {
            return Arc::clone(hit);
        }
        let lowered = Arc::new(lower_match(symbols, clause));
        self.matches.borrow_mut().insert(key, Arc::clone(&lowered));
        lowered
    }

    /// The compiled plan of `projection` (explicit items only), lowering on
    /// first use.
    pub fn projection_plan(
        &self,
        symbols: &SymbolTable,
        projection: &Projection,
    ) -> Arc<CompiledProjection> {
        let key = projection as *const Projection as usize;
        if let Some(hit) = self.projections.borrow().get(&key) {
            return Arc::clone(hit);
        }
        let lowered = Arc::new(lower_projection(symbols, projection));
        self.projections.borrow_mut().insert(key, Arc::clone(&lowered));
        lowered
    }

    /// Pre-seeds the compiled plan of the `MATCH` clause at AST address
    /// `key`, so a later [`PlanCache::match_plan`] probe hits without
    /// lowering. Used by [`crate::frozen::FrozenPlan::thaw`] to share plans
    /// lowered once across threads.
    pub fn seed_match(&self, key: usize, plan: Arc<CompiledMatch>) {
        self.matches.borrow_mut().insert(key, plan);
    }

    /// [`PlanCache::seed_match`] for projections.
    pub fn seed_projection(&self, key: usize, plan: Arc<CompiledProjection>) {
        self.projections.borrow_mut().insert(key, plan);
    }

    /// Number of lowered plans (matches + projections), for tests.
    pub fn len(&self) -> usize {
        self.matches.borrow().len() + self.projections.borrow().len()
    }

    /// Returns `true` if nothing has been lowered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A query's plan-time state as one owned value: the interned symbol table
/// plus the lowered-plan cache. [`crate::eval::PreparedQuery`] pairs one of
/// these with a borrowed query; callers that need to *own* the query too
/// (the counterexample search's per-query-text plan cache) keep a
/// `(Query, QueryPlan)` pair and evaluate through
/// [`crate::eval::Evaluator::evaluate_planned`].
///
/// A plan is tied to the exact query instance it was built from (plans key
/// on AST node addresses); evaluating a different query under it is safe but
/// wasteful — the addresses miss and everything re-lowers.
#[derive(Debug)]
pub struct QueryPlan {
    symbols: SymbolTable,
    plans: PlanCache,
}

impl QueryPlan {
    /// Plans `query`: interns every name it can bind or reference (the
    /// plan-time AST walk). Lowering itself stays lazy — each clause lowers
    /// on its first application.
    pub fn new(query: &Query) -> Self {
        QueryPlan { symbols: SymbolTable::for_query(query), plans: PlanCache::new() }
    }

    /// An empty plan (on-demand interning; used by one-shot evaluation,
    /// where the plan-time walk does not pay for itself).
    pub fn empty() -> Self {
        QueryPlan { symbols: SymbolTable::new(), plans: PlanCache::new() }
    }

    /// Assembles a plan from an already-built symbol table and a (typically
    /// pre-seeded) plan cache — the thaw path of
    /// [`crate::frozen::FrozenPlan`].
    pub fn from_parts(symbols: SymbolTable, plans: PlanCache) -> Self {
        QueryPlan { symbols, plans }
    }

    /// The plan's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The plan's lowering cache.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }
}

// ---------------------------------------------------------------------------
// The compiled matcher
// ---------------------------------------------------------------------------
//
// Mirrors `crate::matching` step for step; every name-keyed row operation is
// replaced by its `SymId`-keyed counterpart. Comments explaining the shared
// semantics (injectivity, ordering, self-loop handling) live on the
// interpreted implementation.

type OnComplete<'a> =
    &'a mut dyn FnMut(EvalCtx<'_>, Row, &mut Vec<RelId>, &[Value]) -> Result<(), EvalError>;

/// Finds all extensions of `base` satisfying the compiled clause's patterns
/// and `WHERE` predicate — the compiled counterpart of
/// [`crate::matching::match_clause`].
pub fn match_compiled_clause(
    ctx: EvalCtx<'_>,
    compiled: &CompiledMatch,
    base: &Row,
) -> Result<Vec<Row>, EvalError> {
    let mut results = Vec::new();
    let mut used = Vec::new();
    match_pattern_list(ctx, &compiled.patterns, 0, base.clone(), &mut used, &mut results)?;
    match &compiled.where_clause {
        None => Ok(results),
        Some(predicate) => {
            let mut kept = Vec::new();
            for row in results {
                if crate::expr::eval_predicate(ctx, &row, predicate)? {
                    kept.push(row);
                }
            }
            Ok(kept)
        }
    }
}

fn match_pattern_list(
    ctx: EvalCtx<'_>,
    patterns: &[CompiledPathPattern],
    index: usize,
    row: Row,
    used: &mut Vec<RelId>,
    results: &mut Vec<Row>,
) -> Result<(), EvalError> {
    if index == patterns.len() {
        results.push(row);
        return Ok(());
    }
    let pattern = &patterns[index];
    let candidates = candidate_nodes(ctx, &row, &pattern.start)?;
    for node in candidates {
        let mut next_row = row.clone();
        bind_node(ctx.symbols, &mut next_row, &pattern.start, node);
        let mut trace = vec![Value::Node(node)];
        let used_before = used.len();
        match_segments(
            ctx,
            pattern,
            0,
            node,
            next_row,
            used,
            &mut trace,
            &mut |ctx, row, used, trace| {
                let mut row = row;
                if let Some(path_sym) = pattern.variable {
                    row.insert_sym(ctx.symbols, path_sym, Value::Path(trace.to_vec()));
                }
                match_pattern_list(ctx, patterns, index + 1, row, used, results)
            },
        )?;
        used.truncate(used_before);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn match_segments(
    ctx: EvalCtx<'_>,
    pattern: &CompiledPathPattern,
    segment_index: usize,
    current: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), EvalError> {
    if segment_index == pattern.segments.len() {
        return on_complete(ctx, row, used, trace);
    }
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;

    if rel_pattern.is_var_length() {
        match_var_length(ctx, pattern, segment_index, current, row, used, trace, on_complete)
    } else {
        let candidates = candidate_relationships(ctx, &row, rel_pattern, current)?;
        for (rel, next_node) in candidates {
            if violates_injectivity(ctx.symbols, &row, rel_pattern, rel, used) {
                continue;
            }
            if !node_matches(ctx, &row, next_node, &segment.node)?
                || !node_binding_consistent(ctx.symbols, &row, &segment.node, next_node)
            {
                continue;
            }
            let mut next_row = row.clone();
            if let Some(sym) = rel_pattern.variable {
                next_row.insert_sym(ctx.symbols, sym, Value::Relationship(rel));
            }
            bind_node(ctx.symbols, &mut next_row, &segment.node, next_node);
            used.push(rel);
            trace.push(Value::Relationship(rel));
            trace.push(Value::Node(next_node));
            match_segments(
                ctx,
                pattern,
                segment_index + 1,
                next_node,
                next_row,
                used,
                trace,
                on_complete,
            )?;
            trace.pop();
            trace.pop();
            used.pop();
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn match_var_length(
    ctx: EvalCtx<'_>,
    pattern: &CompiledPathPattern,
    segment_index: usize,
    start: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), EvalError> {
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;
    let length = rel_pattern.length.expect("var-length pattern");
    let min = length.effective_min();
    let max = length.max.unwrap_or(ctx.max_var_length).max(min);

    struct Frame {
        node: NodeId,
        rels: Vec<RelId>,
    }
    let mut stack = vec![Frame { node: start, rels: Vec::new() }];
    while let Some(frame) = stack.pop() {
        let hops = frame.rels.len() as u32;
        if hops >= min {
            let end = frame.node;
            if node_matches(ctx, &row, end, &segment.node)?
                && node_binding_consistent(ctx.symbols, &row, &segment.node, end)
            {
                let mut next_row = row.clone();
                if let Some(sym) = rel_pattern.variable {
                    next_row.insert_sym(
                        ctx.symbols,
                        sym,
                        Value::List(frame.rels.iter().map(|r| Value::Relationship(*r)).collect()),
                    );
                }
                bind_node(ctx.symbols, &mut next_row, &segment.node, end);
                let used_before = used.len();
                let trace_before = trace.len();
                for rel in &frame.rels {
                    used.push(*rel);
                    trace.push(Value::Relationship(*rel));
                }
                trace.push(Value::Node(end));
                match_segments(
                    ctx,
                    pattern,
                    segment_index + 1,
                    end,
                    next_row,
                    used,
                    trace,
                    on_complete,
                )?;
                trace.truncate(trace_before);
                used.truncate(used_before);
            }
        }
        if hops >= max {
            continue;
        }
        let extensions = candidate_relationships(ctx, &row, rel_pattern, frame.node)?;
        for (rel, next) in extensions {
            if frame.rels.contains(&rel) || used.contains(&rel) {
                continue;
            }
            let mut rels = frame.rels.clone();
            rels.push(rel);
            stack.push(Frame { node: next, rels });
        }
    }
    Ok(())
}

fn candidate_relationships(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &CompiledRelPattern,
    from: NodeId,
) -> Result<Vec<(RelId, NodeId)>, EvalError> {
    if ctx.scan_matching {
        return scan_candidate_relationships(ctx, row, pattern, from);
    }
    let index = ctx.graph.adjacency();

    enum TypeFilter {
        Any,
        One(u32),
        AnyOf(Vec<u32>),
    }
    let type_filter = match pattern.labels.as_slice() {
        [] => TypeFilter::Any,
        [label] => match index.rel_type_id(label) {
            None => return Ok(Vec::new()),
            Some(id) => TypeFilter::One(id),
        },
        labels => {
            let resolved: Vec<u32> =
                labels.iter().filter_map(|label| index.rel_type_id(label)).collect();
            if resolved.is_empty() {
                return Ok(Vec::new());
            }
            TypeFilter::AnyOf(resolved)
        }
    };
    let bound = pattern.variable.and_then(|sym| match row.get_sym(ctx.symbols, sym) {
        Some(Value::Relationship(bound)) => Some(*bound),
        _ => None,
    });

    let mut out = Vec::new();
    let mut push = |entry: &crate::index::AdjEntry| -> Result<(), EvalError> {
        let type_ok = match &type_filter {
            TypeFilter::Any => true,
            TypeFilter::One(id) => entry.type_id == *id,
            TypeFilter::AnyOf(ids) => ids.contains(&entry.type_id),
        };
        if !type_ok {
            return Ok(());
        }
        if let Some(bound) = bound {
            if bound != entry.rel {
                return Ok(());
            }
        }
        if pattern.properties.iter().any(|(key, _)| !index.rel_has_key(entry.rel, key)) {
            return Ok(());
        }
        if compiled_properties_match(
            ctx,
            row,
            EntityId::Relationship(entry.rel),
            &pattern.properties,
        )? {
            out.push((entry.rel, entry.neighbour));
        }
        Ok(())
    };
    match pattern.direction {
        RelDirection::Outgoing => {
            for entry in index.outgoing(from) {
                push(entry)?;
            }
        }
        RelDirection::Incoming => {
            for entry in index.incoming(from) {
                push(entry)?;
            }
        }
        RelDirection::Undirected => {
            let outgoing = index.outgoing(from);
            let incoming = index.incoming(from);
            let (mut i, mut j) = (0, 0);
            while i < outgoing.len() || j < incoming.len() {
                let take_out = match (outgoing.get(i), incoming.get(j)) {
                    (Some(o), Some(n)) => {
                        if o.rel == n.rel {
                            j += 1;
                            true
                        } else {
                            o.rel < n.rel
                        }
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_out {
                    push(&outgoing[i])?;
                    i += 1;
                } else {
                    push(&incoming[j])?;
                    j += 1;
                }
            }
        }
    }
    Ok(out)
}

fn scan_candidate_relationships(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &CompiledRelPattern,
    from: NodeId,
) -> Result<Vec<(RelId, NodeId)>, EvalError> {
    let mut out = Vec::new();
    for rel_id in ctx.graph.relationship_ids() {
        let rel = ctx.graph.relationship(rel_id);
        let neighbour = match pattern.direction {
            RelDirection::Outgoing => {
                if rel.source != from {
                    continue;
                }
                rel.target
            }
            RelDirection::Incoming => {
                if rel.target != from {
                    continue;
                }
                rel.source
            }
            RelDirection::Undirected => {
                if rel.source == from {
                    rel.target
                } else if rel.target == from {
                    rel.source
                } else {
                    continue;
                }
            }
        };
        if !pattern.labels.is_empty() && !pattern.labels.contains(&rel.label) {
            continue;
        }
        if !compiled_properties_match(
            ctx,
            row,
            EntityId::Relationship(rel_id),
            &pattern.properties,
        )? {
            continue;
        }
        if let Some(sym) = pattern.variable {
            if let Some(Value::Relationship(bound)) = row.get_sym(ctx.symbols, sym) {
                if *bound != rel_id {
                    continue;
                }
            }
        }
        out.push((rel_id, neighbour));
    }
    Ok(out)
}

fn violates_injectivity(
    symbols: &SymbolTable,
    row: &Row,
    pattern: &CompiledRelPattern,
    rel: RelId,
    used: &[RelId],
) -> bool {
    if !used.contains(&rel) {
        return false;
    }
    match pattern.variable {
        Some(sym) => {
            !matches!(row.get_sym(symbols, sym), Some(Value::Relationship(bound)) if *bound == rel)
        }
        None => true,
    }
}

fn candidate_nodes(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &CompiledNodePattern,
) -> Result<Vec<NodeId>, EvalError> {
    if ctx.scan_matching {
        return scan_candidate_nodes(ctx, row, pattern);
    }
    if let Some(sym) = pattern.variable {
        match row.get_sym(ctx.symbols, sym) {
            Some(Value::Node(id)) => {
                return if node_matches(ctx, row, *id, pattern)? {
                    Ok(vec![*id])
                } else {
                    Ok(vec![])
                };
            }
            Some(_) => return Ok(vec![]),
            None => {}
        }
    }
    let index = ctx.graph.adjacency();
    if pattern.properties.is_empty() {
        match pattern.labels.as_slice() {
            [] => return Ok(ctx.graph.node_ids().collect()),
            [label] => {
                return Ok(match index.nodes_with_label(label) {
                    None => Vec::new(),
                    Some(set) => set.iter().map(NodeId).collect(),
                })
            }
            _ => {}
        }
    }
    let Some(mut candidates) = index.label_candidates(&pattern.labels) else {
        return Ok(Vec::new());
    };
    for (key, _) in &pattern.properties {
        let Some(with_key) = index.nodes_with_key(key) else {
            return Ok(Vec::new());
        };
        candidates.intersect_with(with_key);
    }
    let mut out = Vec::new();
    for id in candidates.iter() {
        let id = NodeId(id);
        if compiled_properties_match(ctx, row, EntityId::Node(id), &pattern.properties)? {
            out.push(id);
        }
    }
    Ok(out)
}

fn scan_candidate_nodes(
    ctx: EvalCtx<'_>,
    row: &Row,
    pattern: &CompiledNodePattern,
) -> Result<Vec<NodeId>, EvalError> {
    if let Some(sym) = pattern.variable {
        match row.get_sym(ctx.symbols, sym) {
            Some(Value::Node(id)) => {
                return if node_matches(ctx, row, *id, pattern)? {
                    Ok(vec![*id])
                } else {
                    Ok(vec![])
                };
            }
            Some(_) => return Ok(vec![]),
            None => {}
        }
    }
    let mut out = Vec::new();
    for id in ctx.graph.node_ids() {
        if node_matches(ctx, row, id, pattern)? {
            out.push(id);
        }
    }
    Ok(out)
}

fn node_matches(
    ctx: EvalCtx<'_>,
    row: &Row,
    id: NodeId,
    pattern: &CompiledNodePattern,
) -> Result<bool, EvalError> {
    let node = ctx.graph.node(id);
    if !pattern.labels.iter().all(|label| node.labels.contains(label)) {
        return Ok(false);
    }
    compiled_properties_match(ctx, row, EntityId::Node(id), &pattern.properties)
}

fn node_binding_consistent(
    symbols: &SymbolTable,
    row: &Row,
    pattern: &CompiledNodePattern,
    id: NodeId,
) -> bool {
    match pattern.variable {
        Some(sym) => match row.get_sym(symbols, sym) {
            Some(Value::Node(bound)) => *bound == id,
            Some(_) => false,
            None => true,
        },
        None => true,
    }
}

fn bind_node(symbols: &SymbolTable, row: &mut Row, pattern: &CompiledNodePattern, id: NodeId) {
    if let Some(sym) = pattern.variable {
        row.insert_sym(symbols, sym, Value::Node(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use cypher_parser::ast::Clause;
    use cypher_parser::parse_query;

    fn match_clause_of(text: &str) -> MatchClause {
        let query = parse_query(text).unwrap();
        match &query.parts[0].clauses[0] {
            Clause::Match(m) => m.clone(),
            _ => panic!("expected MATCH"),
        }
    }

    #[test]
    fn lowering_interns_every_pattern_variable() {
        let clause = match_clause_of("MATCH p = (a:Person)-[r:READ]->(b) WHERE a.age > 1 RETURN a");
        let symbols = SymbolTable::new();
        let compiled = lower_match(&symbols, &clause);
        for name in ["p", "a", "r", "b"] {
            assert!(symbols.lookup(name).is_some(), "{name} not interned by lowering");
        }
        assert_eq!(compiled.patterns.len(), 1);
        assert!(compiled.where_clause.is_some());
        // The null-fill set is name-sorted: a, b, p, r.
        let names: Vec<_> =
            compiled.optional_syms.iter().map(|sym| symbols.name(*sym).to_string()).collect();
        assert_eq!(names, vec!["a", "b", "p", "r"]);
    }

    #[test]
    fn plan_cache_lowers_each_clause_once() {
        let query = parse_query("MATCH (a)-[r]->(b) MATCH (b)-[s]->(c) RETURN a, c").unwrap();
        let symbols = SymbolTable::new();
        let cache = PlanCache::new();
        let Clause::Match(m1) = &query.parts[0].clauses[0] else { panic!() };
        let Clause::Match(m2) = &query.parts[0].clauses[1] else { panic!() };
        let first = cache.match_plan(&symbols, m1);
        let again = cache.match_plan(&symbols, m1);
        assert!(Arc::ptr_eq(&first, &again), "re-lowered an already-cached clause");
        let other = cache.match_plan(&symbols, m2);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn compiled_clause_matches_like_the_interpreter() {
        let graph = PropertyGraph::paper_example();
        for text in [
            "MATCH (n:Person) RETURN n",
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) RETURN writer",
            "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1",
            "MATCH (n:Person) WHERE n.age > 26 RETURN n",
            "MATCH p = (a:Person)-[:WRITE]->(b) RETURN p",
        ] {
            let clause = match_clause_of(text);
            let symbols = SymbolTable::new();
            let ctx = EvalCtx::new(&graph, &symbols);
            let interpreted = crate::matching::match_clause(ctx, &clause, &Row::new()).unwrap();
            let compiled = lower_match(&symbols, &clause);
            let through_plan = match_compiled_clause(ctx, &compiled, &Row::new()).unwrap();
            assert_eq!(interpreted, through_plan, "compiled matcher diverged on {text}");
        }
    }

    #[test]
    fn projection_lowering_precomputes_columns_and_ids() {
        let query = parse_query("MATCH (n) RETURN n.name AS name, n.age").unwrap();
        let Some(Clause::Return(projection)) = query.parts[0].clauses.last() else { panic!() };
        let symbols = SymbolTable::new();
        let compiled = lower_projection(&symbols, projection);
        assert_eq!(compiled.columns, vec!["name", "n.age"]);
        assert_eq!(compiled.syms.len(), 2);
        assert_eq!(symbols.lookup("name"), Some(compiled.syms[0]));
        assert_eq!(symbols.lookup("n.age"), Some(compiled.syms[1]));
        assert_eq!(compiled.exprs.len(), 2);
    }
}
