//! Use the prover the way the paper motivates it (§I): detecting faulty
//! query rewrites such as the ones a graph-database optimizer might apply.
//! Each candidate rewrite is checked; wrong ones are rejected together with
//! a counterexample graph.
//!
//! Run with `cargo run --example optimizer_bug_detection`.

#![forbid(unsafe_code)]

use graphqe::{GraphQE, Verdict};

fn main() {
    let prover = GraphQE::new();
    let original = "MATCH (u:User)-[f:FOLLOWS]->(v:User) WHERE v.verified = true \
                    RETURN u.name";
    // Candidate rewrites an optimizer might propose.
    let candidates = [
        // Correct: push the property test into the pattern.
        (
            "predicate pushdown",
            "MATCH (u:User)-[f:FOLLOWS]->(v:User {verified: true}) RETURN u.name",
        ),
        // Correct: reverse the pattern direction.
        (
            "pattern reversal",
            "MATCH (v:User)<-[f:FOLLOWS]-(u:User) WHERE v.verified = true RETURN u.name",
        ),
        // Bug: the filter now applies to the follower instead of the followee.
        (
            "wrong filter target",
            "MATCH (u:User)-[f:FOLLOWS]->(v:User) WHERE u.verified = true RETURN u.name",
        ),
        // Bug: deduplication changes bag semantics.
        (
            "spurious DISTINCT",
            "MATCH (u:User)-[f:FOLLOWS]->(v:User) WHERE v.verified = true RETURN DISTINCT u.name",
        ),
    ];

    println!("original: {original}\n");
    for (name, candidate) in candidates {
        match prover.prove(original, candidate) {
            Verdict::Equivalent(stats) => {
                println!("[ok]  {name}: equivalent (proved in {:?})", stats.latency)
            }
            Verdict::NotEquivalent(example) => println!(
                "[BUG] {name}: rejected — differs on a {}-node graph ({} vs {} rows)",
                example.graph.node_count(),
                example.left_rows,
                example.right_rows
            ),
            Verdict::Unknown { category, reason } => {
                println!("[??]  {name}: unknown ({category}): {reason}")
            }
        }
    }
}
