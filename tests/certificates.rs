//! Certificate acceptance tests: tampered artifacts are rejected with
//! structured reasons, and the full 296-pair corpus certifies green.
//!
//! The tamper matrix works on *real emitted* certificates, not hand-built
//! ones: each test scans the dataset for a certificate whose evidence has the
//! shape it needs, confirms the untampered artifact validates, applies one
//! minimal mutation, and asserts the checker's structured rejection code.

use cyeqset::{cyeqset, cyneqset};
use graphqe::GraphQE;
use graphqe_checker::cert::{Certificate, Evidence, Matching, Proof, SummandsProof};
use graphqe_checker::value::Value;
use graphqe_checker::{check_certificate, CheckError};

/// Emits the certificate for a pair, or `None` when the verdict is unknown.
fn emit(prover: &GraphQE, left: &str, right: &str) -> Option<Certificate> {
    let verdict = prover.prove(left, right);
    if verdict.is_unknown() {
        return None;
    }
    Some(prover.certificate_for(left, right, &verdict).expect("definite verdict emits"))
}

/// Every certificate the EQ corpus produces, in dataset order.
fn corpus_eq_certificates(prover: &GraphQE) -> impl Iterator<Item = Certificate> + '_ {
    cyeqset().into_iter().filter_map(move |pair| emit(prover, &pair.left, &pair.right))
}

/// The first summands proof inside an equivalence certificate, if any.
fn summands_proof_mut(cert: &mut Certificate) -> Option<&mut SummandsProof> {
    fn walk(proof: &mut Proof) -> Option<&mut SummandsProof> {
        match proof {
            Proof::Identical => None,
            Proof::Peel(inner) => walk(inner),
            Proof::Summands(sp) => Some(sp),
        }
    }
    let Evidence::Equivalence { segments, .. } = &mut cert.evidence else { return None };
    segments.iter_mut().find_map(|segment| walk(&mut segment.proof))
}

fn expect_rejection(cert: &Certificate, code: &str) -> CheckError {
    let error = check_certificate(cert).expect_err("tampered certificate must be rejected");
    assert_eq!(error.code, code, "unexpected rejection: {error:?}");
    error
}

#[test]
fn dropping_a_derivation_step_is_rejected() {
    let prover = GraphQE::new();
    let mut cert = corpus_eq_certificates(&prover)
        .find(|cert| !cert.left.steps.is_empty())
        .expect("an EQ certificate with a non-empty left derivation");
    check_certificate(&cert).expect("untampered certificate validates");

    cert.left.steps.remove(0);
    expect_rejection(&cert, "derivation_mismatch");
}

#[test]
fn swapping_an_iso_pair_is_rejected() {
    let prover = GraphQE::new();
    // The dataset's proofs all decompose into a single summand, so use a
    // UNION ALL pair whose two summands are *not* interchangeable (different
    // labels): the bijection must cross, and uncrossing it is a tamper.
    let left = "MATCH (a:Person) RETURN a.x UNION ALL MATCH (b:Book) RETURN b.x";
    let right = "MATCH (c:Book) RETURN c.x UNION ALL MATCH (d:Person) RETURN d.x";
    let mut cert = emit(&prover, left, right).expect("UNION ALL pair proves equivalent");
    check_certificate(&cert).expect("untampered certificate validates");

    let sp = summands_proof_mut(&mut cert).expect("summands proof");
    let Matching::Bijection(pairs) = &mut sp.matching else {
        panic!("expected a bijection matching")
    };
    assert!(pairs.len() >= 2, "need at least two iso pairs to swap");
    (pairs[0].1, pairs[1].1) = (pairs[1].1, pairs[0].1);
    expect_rejection(&cert, "iso_pair_mismatch");
}

#[test]
fn perturbing_a_class_count_is_rejected() {
    let prover = GraphQE::new();
    // The corpus proofs prefer bijections, so build the class-counting form
    // of one: each left kept summand becomes its own class representative,
    // and the bijection dictates the right side's membership. This is a
    // *valid* certificate (the checker re-verifies membership with its own
    // unifier) until one recorded count is nudged.
    let mut cert = corpus_eq_certificates(&prover)
        .find(|cert| {
            let mut cert = cert.clone();
            summands_proof_mut(&mut cert)
                .is_some_and(|sp| matches!(&sp.matching, Matching::Bijection(p) if !p.is_empty()))
        })
        .expect("an EQ certificate with a bijection matching");
    {
        let sp = summands_proof_mut(&mut cert).expect("summands proof");
        let Matching::Bijection(pairs) = &sp.matching else { unreachable!() };
        let classes = sp.left.kept.len();
        let mut right_assign = vec![usize::MAX; classes];
        for &(l, r) in pairs {
            right_assign[r] = l;
        }
        sp.matching = Matching::Classes {
            representatives: sp.left.kept.iter().map(|kept| kept.result.clone()).collect(),
            left_assign: (0..classes).collect(),
            right_assign,
            left_counts: vec![1; classes],
            right_counts: vec![1; classes],
        };
    }
    check_certificate(&cert).expect("class-counting form of the proof validates");

    let sp = summands_proof_mut(&mut cert).expect("summands proof");
    let Matching::Classes { left_counts, .. } = &mut sp.matching else { unreachable!() };
    left_counts[0] += 1;
    expect_rejection(&cert, "class_count_mismatch");
}

#[test]
fn editing_a_bag_row_is_rejected() {
    let prover = GraphQE::new();
    let mut cert = cyneqset()
        .into_iter()
        .filter_map(|pair| emit(&prover, &pair.left, &pair.right))
        .find(|cert| {
            matches!(
                &cert.evidence,
                Evidence::Counterexample { left_rows, right_rows, .. }
                    if !left_rows.is_empty() || !right_rows.is_empty()
            )
        })
        .expect("a NEQ certificate with a non-empty result bag");
    check_certificate(&cert).expect("untampered certificate validates");

    let Evidence::Counterexample { left_rows, right_rows, .. } = &mut cert.evidence else {
        unreachable!()
    };
    let rows = if left_rows.is_empty() { right_rows } else { left_rows };
    rows[0][0] = Value::Integer(987_654_321);
    expect_rejection(&cert, "bag_mismatch");
}

#[test]
fn tampering_a_recorded_signature_type_is_rejected() {
    let prover = GraphQE::new();
    // The corpus contains pairs the stage-⓪ analyzer discriminates, so
    // their certificates carry the richer signature-mismatch evidence.
    let mut cert = cyneqset()
        .into_iter()
        .filter_map(|pair| emit(&prover, &pair.left, &pair.right))
        .find(|cert| matches!(&cert.evidence, Evidence::SignatureMismatch { .. }))
        .expect("a NEQ certificate with signature-mismatch evidence");
    check_certificate(&cert).expect("untampered certificate validates");

    let Evidence::SignatureMismatch { left_signature, .. } = &mut cert.evidence else {
        unreachable!()
    };
    let column = &mut left_signature[0];
    column.ty = if column.ty == "String" { "Integer".into() } else { "String".into() };
    expect_rejection(&cert, "signature_mismatch");
}

#[test]
fn editing_a_signature_witness_row_is_rejected() {
    let prover = GraphQE::new();
    // A discriminating pair whose witness bag is never empty: `count(*)`
    // returns exactly one row on every graph (the corpus discriminating
    // pairs all witness via differently-shaped *empty* bags, which leave no
    // row to tamper with).
    let mut cert = emit(&prover, "MATCH (n) RETURN n", "MATCH (n) RETURN count(*)")
        .expect("discriminating pair refutes");
    check_certificate(&cert).expect("untampered certificate validates");

    let Evidence::SignatureMismatch { left_rows, right_rows, .. } = &mut cert.evidence else {
        panic!("discriminated pair must carry signature-mismatch evidence")
    };
    let rows = if left_rows.is_empty() { right_rows } else { left_rows };
    rows[0][0] = Value::Integer(987_654_321);
    expect_rejection(&cert, "bag_mismatch");
}

/// The acceptance gate: every definite verdict across both corpora (296
/// pairs) yields a certificate the independent checker validates — without
/// invoking the prover — and the verdict totals stay pinned to the same
/// expectations the benchmark gates on.
#[test]
fn full_corpus_certificates_check_green_with_pinned_verdicts() {
    let prover = GraphQE::new();
    type Corpus = (&'static str, Vec<cyeqset::QueryPair>, (usize, usize, usize));
    let corpora: [Corpus; 2] =
        [("cyeqset", cyeqset(), (138, 0, 10)), ("cyneqset", cyneqset(), (0, 121, 27))];
    for (name, pairs, expected) in corpora {
        let mut counts = (0usize, 0usize, 0usize);
        for pair in pairs {
            let (verdict, certificate) = prover.prove_certified(&pair.left, &pair.right, false);
            if verdict.is_equivalent() {
                counts.0 += 1;
            } else if verdict.is_not_equivalent() {
                counts.1 += 1;
            } else {
                assert!(certificate.is_none(), "{name}/{}: unknown with certificate", pair.id);
                counts.2 += 1;
            }
            if !verdict.is_unknown() {
                let certificate = certificate
                    .unwrap_or_else(|| panic!("{name}/{}: definite without certificate", pair.id));
                // Round-trip through the wire format first: what validates is
                // what a client would actually receive.
                let reread = Certificate::from_json(&certificate.to_json())
                    .unwrap_or_else(|e| panic!("{name}/{}: round trip failed: {e}", pair.id));
                check_certificate(&reread).unwrap_or_else(|e| {
                    panic!("{name}/{}: checker rejected the certificate: {e:?}", pair.id)
                });
            }
        }
        assert_eq!(
            counts, expected,
            "{name} (equivalent, not_equivalent, unknown) drifted under certification"
        );
    }
}
