//! Cypher runtime values and their comparison/arithmetic semantics.
//!
//! This is the checker's own copy of the `property-graph` value semantics:
//! three-valued logic, Cypher equality/ordering (with its `Null` propagation),
//! the total order used for `ORDER BY` and bag comparison, and the arithmetic
//! used by projections. The NOT_EQUIVALENT re-evaluation is only as credible
//! as this port, so it follows the original operation-for-operation.

use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A node identifier in a certificate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A relationship identifier in a certificate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

/// A runtime value, mirroring `property_graph::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `NULL`.
    Null,
    /// A boolean.
    Boolean(bool),
    /// A 64-bit integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    String(String),
    /// A list of values.
    List(Vec<Value>),
    /// A map keyed by string.
    Map(BTreeMap<String, Value>),
    /// A reference to a node.
    Node(NodeId),
    /// A reference to a relationship.
    Relationship(RelId),
    /// A path: alternating node/relationship references.
    Path(Vec<Value>),
}

impl Value {
    /// Whether this value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean coercion used by predicates: only `Boolean` coerces.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric coercion used by arithmetic fallbacks and `avg`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

const I64_BOUND: f64 = 9_223_372_036_854_775_808.0;

/// Compares an integer and a float exactly when |i| exceeds 2^53 (where the
/// naive `as f64` cast loses precision).
fn cmp_int_float_wide(i: i64, f: f64) -> Ordering {
    if f >= I64_BOUND {
        return Ordering::Less;
    }
    if f < -I64_BOUND {
        return Ordering::Greater;
    }
    let truncated = f.trunc();
    let whole = truncated as i64;
    match i.cmp(&whole) {
        Ordering::Equal => {
            let fraction = f - truncated;
            if fraction > 0.0 {
                Ordering::Less
            } else if fraction < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

fn cmp_float_total(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

fn cmp_int_float_total(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        return Ordering::Less;
    }
    if i.unsigned_abs() <= (1u64 << 53) {
        (i as f64).total_cmp(&f)
    } else {
        cmp_int_float_wide(i, f)
    }
}

fn cmp_int_float_partial(i: i64, f: f64) -> Option<Ordering> {
    if f.is_nan() {
        return None;
    }
    if i.unsigned_abs() <= (1u64 << 53) {
        (i as f64).partial_cmp(&f)
    } else {
        Some(cmp_int_float_wide(i, f))
    }
}

/// Cypher `=` semantics: `None` is the unknown (NULL) outcome.
pub fn cypher_eq(a: &Value, b: &Value) -> Option<bool> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => None,
        (Value::Integer(x), Value::Float(y)) => {
            Some(cmp_int_float_partial(*x, *y) == Some(Ordering::Equal))
        }
        (Value::Float(x), Value::Integer(y)) => {
            Some(cmp_int_float_partial(*y, *x) == Some(Ordering::Equal))
        }
        (Value::List(xs), Value::List(ys)) => {
            if xs.len() != ys.len() {
                return Some(false);
            }
            let mut saw_null = false;
            for (x, y) in xs.iter().zip(ys) {
                match cypher_eq(x, y) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                None
            } else {
                Some(true)
            }
        }
        _ => Some(a == b),
    }
}

/// Cypher `<`/`<=`/`>`/`>=` semantics: `None` for NULL or incomparable types.
pub fn cypher_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => None,
        (Value::Integer(x), Value::Integer(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Integer(x), Value::Float(y)) => cmp_int_float_partial(*x, *y),
        (Value::Float(x), Value::Integer(y)) => {
            cmp_int_float_partial(*y, *x).map(Ordering::reverse)
        }
        (Value::String(x), Value::String(y)) => Some(x.cmp(y)),
        (Value::Boolean(x), Value::Boolean(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

fn type_rank(value: &Value) -> u8 {
    match value {
        Value::Map(_) => 0,
        Value::Node(_) => 1,
        Value::Relationship(_) => 2,
        Value::List(_) => 3,
        Value::Path(_) => 4,
        Value::String(_) => 5,
        Value::Boolean(_) => 6,
        Value::Integer(_) | Value::Float(_) => 7,
        Value::Null => 8,
    }
}

/// The total order used for `ORDER BY`, `DISTINCT` grouping, and bag
/// comparison (ties NULLs and NaNs deterministically).
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    let rank = type_rank(a).cmp(&type_rank(b));
    if rank != Ordering::Equal {
        return rank;
    }
    match (a, b) {
        (Value::Map(x), Value::Map(y)) => {
            let mut xi = x.iter();
            let mut yi = y.iter();
            loop {
                match (xi.next(), yi.next()) {
                    (None, None) => return Ordering::Equal,
                    (None, Some(_)) => return Ordering::Less,
                    (Some(_), None) => return Ordering::Greater,
                    (Some((kx, vx)), Some((ky, vy))) => {
                        let key = kx.cmp(ky);
                        if key != Ordering::Equal {
                            return key;
                        }
                        let val = total_cmp(vx, vy);
                        if val != Ordering::Equal {
                            return val;
                        }
                    }
                }
            }
        }
        (Value::Node(x), Value::Node(y)) => x.cmp(y),
        (Value::Relationship(x), Value::Relationship(y)) => x.cmp(y),
        (Value::List(x), Value::List(y)) | (Value::Path(x), Value::Path(y)) => {
            for (vx, vy) in x.iter().zip(y.iter()) {
                let item = total_cmp(vx, vy);
                if item != Ordering::Equal {
                    return item;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Boolean(x), Value::Boolean(y)) => x.cmp(y),
        (Value::Integer(x), Value::Integer(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => cmp_float_total(*x, *y),
        (Value::Integer(x), Value::Float(y)) => cmp_int_float_total(*x, *y),
        (Value::Float(x), Value::Integer(y)) => cmp_int_float_total(*y, *x).reverse(),
        (Value::Null, Value::Null) => Ordering::Equal,
        _ => Ordering::Equal,
    }
}

/// Cypher `+`.
pub fn add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => {
            x.checked_add(*y).map_or(Value::Null, Value::Integer)
        }
        (Value::String(x), Value::String(y)) => Value::String(format!("{x}{y}")),
        (Value::List(x), Value::List(y)) => {
            let mut items = x.clone();
            items.extend(y.iter().cloned());
            Value::List(items)
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Value::Float(x + y),
            _ => Value::Null,
        },
    }
}

/// Cypher `-` (binary).
pub fn sub(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => {
            x.checked_sub(*y).map_or(Value::Null, Value::Integer)
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Value::Float(x - y),
            _ => Value::Null,
        },
    }
}

/// Cypher `*`.
pub fn mul(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => {
            x.checked_mul(*y).map_or(Value::Null, Value::Integer)
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Value::Float(x * y),
            _ => Value::Null,
        },
    }
}

/// Cypher `/`.
pub fn div(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => {
            if *y == 0 {
                Value::Null
            } else {
                x.checked_div(*y).map_or(Value::Null, Value::Integer)
            }
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Value::Float(x / y),
            _ => Value::Null,
        },
    }
}

/// Cypher `%`.
pub fn rem(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => {
            if *y == 0 {
                Value::Null
            } else {
                x.checked_rem(*y).map_or(Value::Null, Value::Integer)
            }
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Value::Float(x % y),
            _ => Value::Null,
        },
    }
}

/// Cypher `^` (always floating-point).
pub fn pow(a: &Value, b: &Value) -> Value {
    match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => Value::Float(x.powf(y)),
        _ => Value::Null,
    }
}

/// Cypher unary `-`.
pub fn neg(a: &Value) -> Value {
    match a {
        Value::Integer(x) => x.checked_neg().map_or(Value::Null, Value::Integer),
        Value::Float(f) => Value::Float(-f),
        _ => Value::Null,
    }
}

/// Three-valued `AND`.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued `OR`.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued `XOR`.
pub fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x != y),
        _ => None,
    }
}

/// Three-valued `NOT`.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_int_float_comparison_is_exact() {
        let big = i64::MAX - 1;
        // (i64::MAX - 1) as f64 rounds up to 2^63, which would wrongly compare
        // equal to values it is strictly below.
        assert_eq!(cmp_int_float_total(big, I64_BOUND), Ordering::Less);
        // 9.2e18 is inside the i64 range and strictly below i64::MAX - 1.
        assert_eq!(
            cypher_cmp(&Value::Integer(big), &Value::Float(9.2e18)),
            Some(Ordering::Greater)
        );
        // 9.3e18 exceeds every i64.
        assert_eq!(cypher_cmp(&Value::Integer(big), &Value::Float(9.3e18)), Some(Ordering::Less));
    }

    #[test]
    fn null_propagates_through_equality() {
        assert_eq!(cypher_eq(&Value::Null, &Value::Integer(1)), None);
        assert_eq!(
            cypher_eq(
                &Value::List(vec![Value::Integer(1), Value::Null]),
                &Value::List(vec![Value::Integer(1), Value::Integer(2)])
            ),
            None
        );
        assert_eq!(
            cypher_eq(
                &Value::List(vec![Value::Integer(3), Value::Null]),
                &Value::List(vec![Value::Integer(1), Value::Integer(2)])
            ),
            Some(false)
        );
    }

    #[test]
    fn total_order_ranks_types_and_ties_nan() {
        assert_eq!(total_cmp(&Value::String("a".into()), &Value::Integer(0)), Ordering::Less);
        assert_eq!(total_cmp(&Value::Float(f64::NAN), &Value::Float(f64::NAN)), Ordering::Equal);
        assert_eq!(total_cmp(&Value::Float(-0.0), &Value::Float(0.0)), Ordering::Less);
    }

    #[test]
    fn integer_overflow_yields_null() {
        assert_eq!(add(&Value::Integer(i64::MAX), &Value::Integer(1)), Value::Null);
        assert_eq!(neg(&Value::Integer(i64::MIN)), Value::Null);
        assert_eq!(div(&Value::Integer(1), &Value::Integer(0)), Value::Null);
    }
}
