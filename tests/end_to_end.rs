//! Workspace-level integration tests: the full pipeline from query text to
//! verdict, cross-checked against the reference evaluator.

use graphqe::GraphQE;
use property_graph::{evaluate_query, GraphGenerator, PropertyGraph};

/// Every pair the prover claims equivalent must return identical bags on the
/// paper's example graph and a pool of random graphs (soundness spot check).
#[test]
fn prover_equivalence_agrees_with_the_oracle_on_sample_pairs() {
    let prover = GraphQE::new();
    let pairs = [
        (
            "MATCH (person)-[x:READ]->(book:Book) RETURN person.name",
            "MATCH (n1)-[r1:READ]->(n2:Book) RETURN n1.name",
        ),
        ("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"),
        ("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n", "MATCH (n) WHERE n.age > 5 RETURN n"),
        ("MATCH (x) WITH x.name AS name RETURN name", "MATCH (x) RETURN x.name"),
        // NOTE: the undirected-relationship rewrite (Table II rule 1) is not
        // cross-checked against the oracle here: like the paper's rule it
        // counts self-loop relationships twice in the UNION ALL form, so the
        // two queries differ on graphs containing self-loops (documented in
        // DESIGN.md / EXPERIMENTS.md).
    ];
    let mut graphs = vec![PropertyGraph::paper_example()];
    graphs.extend(GraphGenerator::new(99).generate_many(30));
    for (q1, q2) in pairs {
        assert!(prover.prove(q1, q2).is_equivalent(), "{q1} vs {q2}");
        let a = cypher_parser::parse_query(q1).unwrap();
        let b = cypher_parser::parse_query(q2).unwrap();
        for graph in &graphs {
            let (Ok(ra), Ok(rb)) = (evaluate_query(graph, &a), evaluate_query(graph, &b)) else {
                continue;
            };
            assert!(ra.bag_equal(&rb), "oracle disagrees for {q1} vs {q2} on {graph}");
        }
    }
}

/// A sample of the CyEqSet dataset proves end to end, and the per-project
/// totals match the Table III expectations recorded in the dataset.
#[test]
fn cyeqset_sample_proves_as_expected() {
    let prover = GraphQE::new();
    // Keep the integration test fast: take every 10th pair.
    for pair in cyeqset::cyeqset().into_iter().step_by(10) {
        let verdict = prover.prove(&pair.left, &pair.right);
        if pair.expected_provable {
            assert!(verdict.is_equivalent(), "{}: {}", pair.id, verdict);
        } else {
            assert!(!verdict.is_equivalent(), "{} unexpectedly proved", pair.id);
        }
        // Equivalent pairs must never be "rejected" with a counterexample.
        assert!(!verdict.is_not_equivalent(), "{} wrongly rejected: {}", pair.id, verdict);
    }
}

/// A sample of CyNeqSet is rejected (and never proven equivalent).
#[test]
fn cyneqset_sample_is_rejected() {
    let prover = GraphQE::new();
    for pair in cyeqset::cyneqset().into_iter().step_by(10) {
        let verdict = prover.prove(&pair.left, &pair.right);
        assert!(!verdict.is_equivalent(), "{} wrongly proved equivalent", pair.id);
    }
}

/// The normalizer preserves query semantics on random graphs for the dataset
/// queries (property-style test over the Table II rules).
#[test]
fn normalization_preserves_semantics_on_random_graphs() {
    let graphs = GraphGenerator::new(3).generate_many(15);
    for pair in cyeqset::cyeqset().into_iter().step_by(15) {
        let original = cypher_parser::parse_query(&pair.left).unwrap();
        let normalized = cypher_normalizer::normalize_query(&original);
        for graph in &graphs {
            let (Ok(a), Ok(b)) =
                (evaluate_query(graph, &original), evaluate_query(graph, &normalized))
            else {
                continue;
            };
            assert!(a.bag_equal(&b), "normalization broke {} on {graph}", pair.id);
        }
    }
}
