//! A minimal JSON reader for the benchmark reports.
//!
//! The build environment has no crates.io access, so `serde_json` is
//! unavailable; this hand-rolled recursive-descent parser covers exactly the
//! JSON subset the `BENCH_pr*.json` reports use (objects, arrays, strings
//! with `\`-escapes, f64 numbers, booleans, null). It is used by the
//! `bench_gate` CI binary to compare the current report against the
//! committed previous one.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted by key; duplicate keys keep the last value).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: text.as_bytes(), position: 0 };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(format!("trailing characters at byte {}", parser.position));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// Nested member lookup along a path of keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        let mut current = self;
        for key in path {
            current = current.get(key)?;
        }
        Some(current)
    }

    /// The numeric value (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an integer count.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The string value (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.position += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.position += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.bump() {
            Some(found) if found == byte => Ok(()),
            Some(found) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                byte as char,
                self.position - 1,
                found as char
            )),
            None => Err(format!("expected '{}' at end of input", byte as char)),
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), String> {
        for expected in literal.bytes() {
            self.expect(expected)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at byte {}", other as char, self.position)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.position - 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.position - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("invalid \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.position - 1)),
                },
                Some(byte) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.position - 1;
                    let width = utf8_width(byte);
                    for _ in 1..width {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.position])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.position += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.position])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>().map(Json::Number).map_err(|e| format!("invalid number {text}: {e}"))
    }
}

fn utf8_width(byte: u8) -> usize {
    match byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Number(-125.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::String("a\nb".to_string()));
    }

    #[test]
    fn parses_bench_report_shape() {
        let text = r#"{
          "threads": 1,
          "cyeqset": {
            "arena_parallel_ms": 10.809,
            "equivalent": 138,
            "stages_ms": {"decide_tree": 28.158, "decide_arena": 2.628}
          },
          "list": [1, 2, 3]
        }"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.get("threads").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get_path(&["cyeqset", "equivalent"]).and_then(Json::as_u64), Some(138));
        assert_eq!(
            parsed.get_path(&["cyeqset", "stages_ms", "decide_arena"]).and_then(Json::as_f64),
            Some(2.628)
        );
        assert_eq!(
            parsed.get("list"),
            Some(&Json::Array(vec![Json::Number(1.0), Json::Number(2.0), Json::Number(3.0)]))
        );
    }

    #[test]
    fn parses_the_committed_pr1_report() {
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr1.json"),
        )
        .expect("BENCH_pr1.json is committed");
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get_path(&["cyeqset", "equivalent"]).and_then(Json::as_u64), Some(138));
        assert_eq!(
            parsed.get_path(&["cyneqset", "not_equivalent"]).and_then(Json::as_u64),
            Some(121)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let parsed = Json::parse("\"Σ‖×\"").unwrap();
        assert_eq!(parsed.as_str(), Some("Σ‖×"));
    }
}
