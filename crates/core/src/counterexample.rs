//! Counterexample search: certifying non-equivalence with a concrete graph.
//!
//! The paper reports that GraphQE rejects every pair of CyNeqSet by finding
//! `∃t. g1(t) ≠ g2(t)` satisfiable. Because our decision procedure abstracts
//! some features, a SAT answer alone is not a proof of non-equivalence;
//! instead the prover searches for a concrete property graph on which the
//! two queries return different bags — a strictly stronger certificate.

use cypher_parser::ast::Query;
use property_graph::{evaluate_query, GeneratorConfig, GraphGenerator, PropertyGraph};

use crate::verdict::Counterexample;

/// Configuration of the counterexample search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of random graphs to try (in addition to the deterministic
    /// seed graphs).
    pub random_graphs: usize,
    /// Seed of the random graph generator.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { random_graphs: 120, seed: 0xC0FFEE }
    }
}

/// Searches for a property graph on which the two queries disagree.
pub fn find_counterexample(
    q1: &Query,
    q2: &Query,
    config: &SearchConfig,
) -> Option<Counterexample> {
    for graph in candidate_graphs(config, q1, q2) {
        let left = match evaluate_query(&graph, q1) {
            Ok(result) => result,
            Err(_) => continue,
        };
        let right = match evaluate_query(&graph, q2) {
            Ok(result) => result,
            Err(_) => continue,
        };
        if !left.bag_equal(&right) {
            return Some(Counterexample {
                graph,
                left_rows: left.len(),
                right_rows: right.len(),
            });
        }
    }
    None
}

/// The graphs explored by the search: the paper's Fig. 1 graph, a couple of
/// tiny deterministic graphs, then random graphs of increasing size whose
/// labels, property keys and constants are drawn from the queries themselves
/// (so that their predicates actually select rows).
fn candidate_graphs(config: &SearchConfig, q1: &Query, q2: &Query) -> Vec<PropertyGraph> {
    let vocabulary = GeneratorConfig::from_queries(&[q1, q2]);
    let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];

    // A small dense graph with self-loops and parallel edges: good at
    // separating direction / multiplicity differences.
    let mut dense = PropertyGraph::new();
    let a = dense.add_node(["Person"], [("name", "a".into()), ("age", 1.into()), ("p1", 1.into())]);
    let b = dense.add_node(["Person", "Book"], [("name", "b".into()), ("p1", 2.into())]);
    let c = dense.add_node(Vec::<String>::new(), [("p1", 3.into()), ("age", 3.into())]);
    dense.add_relationship("READ", a, b, [("date", 1.into())]);
    dense.add_relationship("READ", b, a, [("date", 2.into())]);
    dense.add_relationship("KNOWS", a, a, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", a, c, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", c, b, Vec::<(String, property_graph::Value)>::new());
    graphs.push(dense);

    let mut generator = GraphGenerator::with_config(config.seed, vocabulary.clone());
    graphs.extend(generator.generate_many(config.random_graphs / 2));
    // A second pool with larger graphs.
    let mut generator = GraphGenerator::with_config(
        config.seed.wrapping_add(1),
        GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
    );
    graphs.extend(generator.generate_many(config.random_graphs - config.random_graphs / 2));
    graphs
}



#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn search(q1: &str, q2: &str) -> Option<Counterexample> {
        find_counterexample(
            &parse_query(q1).unwrap(),
            &parse_query(q2).unwrap(),
            &SearchConfig::default(),
        )
    }

    #[test]
    fn finds_direction_flips() {
        let example = search(
            "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
            "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
        );
        assert!(example.is_some());
    }

    #[test]
    fn finds_label_changes() {
        assert!(search("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n").is_some());
    }

    #[test]
    fn finds_distinct_differences() {
        assert!(search(
            "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
            "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title"
        )
        .is_some());
    }

    #[test]
    fn finds_union_vs_union_all() {
        assert!(search(
            "MATCH (n:Person) RETURN n UNION ALL MATCH (n:Person) RETURN n",
            "MATCH (n:Person) RETURN n UNION MATCH (n:Person) RETURN n"
        )
        .is_some());
    }

    #[test]
    fn equivalent_queries_have_no_counterexample() {
        assert!(search(
            "MATCH (a)-[r]->(b) RETURN a",
            "MATCH (b)<-[r]-(a) RETURN a"
        )
        .is_none());
    }

    #[test]
    fn finds_limit_differences() {
        assert!(search(
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 1",
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 2"
        )
        .is_some());
    }
}
