//! The lazy DPLL(T) solver: a CDCL SAT core enumerating boolean models of
//! the abstracted formula, with EUF and LIA theory solvers refuting models
//! whose theory literals are inconsistent.
//!
//! `Unsat` answers are sound: they are produced only when every boolean
//! model is refuted by a genuine theory inconsistency. `Sat` answers may in
//! rare cases be over-approximations (the EUF × LIA combination is not a full
//! Nelson–Oppen combination and the LIA checker is rational-complete only),
//! which affects completeness of the equivalence prover, never its soundness
//! — mirroring §VI of the paper.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cnf::Abstraction;
use crate::euf::{CongruenceClosure, TheoryResult};
use crate::lia::{LiaProblem, LinearConstraint};
use crate::sat::{Lit, SatOutcome, SatSolver};
use crate::term::{SortTag, Term};

/// The result of an SMT check.
#[derive(Debug, Clone, PartialEq)]
pub enum SmtResult {
    /// A theory-consistent boolean model was found.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
    /// The solver gave up (iteration budget exhausted).
    Unknown,
}

impl SmtResult {
    /// Returns `true` for [`SmtResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// Returns `true` for [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }
}

/// A satisfying assignment, reported as the truth value of every theory atom.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    /// Theory atoms and their assigned truth values.
    pub atoms: Vec<(Term, bool)>,
}

/// The SMT solver front-end.
#[derive(Debug, Default)]
pub struct Solver {
    assertions: Vec<Term>,
    /// Maximum number of lazy refinement iterations before giving up.
    pub max_iterations: usize,
    /// Memoize [`Solver::check`] results in the thread's formula cache,
    /// keyed by the (order-insensitive) set of asserted formulas. Off by
    /// default so the paper-faithful baseline measurements stay cache-free;
    /// the arena decision pipeline turns it on via [`Solver::cached`].
    pub use_cache: bool,
}

/// A dense id of a hash-consed term in the calling thread's interner.
/// Structurally equal terms intern to equal ids, so id equality *is*
/// structural equality (within one thread, between interner clears).
type TermId = u32;

/// The hash-consing key of one term node: every child is already an interned
/// id, so hashing and comparing a node never walks a subtree twice.
#[derive(Clone, PartialEq, Eq, Hash)]
enum TermKey {
    BoolConst(bool),
    IntConst(i64),
    Var(String, SortTag),
    App(String, Vec<TermId>),
    Eq(TermId, TermId),
    Le(TermId, TermId),
    Add(Vec<TermId>),
    MulConst(i64, TermId),
    Not(TermId),
    And(Vec<TermId>),
    Or(Vec<TermId>),
    Implies(TermId, TermId),
    Ite(TermId, TermId, TermId),
}

thread_local! {
    /// The thread's term interner: hash-consed [`TermKey`] nodes to dense
    /// [`TermId`]s. Interning a term walks it bottom-up exactly once; shared
    /// subtrees across assertions (ubiquitous in the decision procedure's
    /// permutation retries) resolve to the same id without re-walking.
    static TERM_INTERNER: RefCell<HashMap<TermKey, TermId>> = RefCell::new(HashMap::new());

    /// Formula-level result cache, keyed by the **sorted interned-id set** of
    /// the asserted formulas. Since PR 8 the key is a boxed id slice instead
    /// of an owned `Vec<Term>` per entry: probing compares a few `u32`s
    /// (id equality is structural equality by hash-consing), where the old
    /// scheme deep-sorted `&Term`s and structurally verified every bucket
    /// entry. `Unknown` results are not cached (they depend on the iteration
    /// budget, which is not part of the key).
    static FORMULA_CACHE: RefCell<HashMap<Box<[TermId]>, SmtResult>> = RefCell::new(HashMap::new());
}

/// Interns `term` in the calling thread's interner, returning its id.
fn intern_term(term: &Term) -> TermId {
    let key = match term {
        Term::BoolConst(b) => TermKey::BoolConst(*b),
        Term::IntConst(v) => TermKey::IntConst(*v),
        Term::Var(name, sort) => TermKey::Var(name.clone(), *sort),
        Term::App(name, args) => TermKey::App(name.clone(), args.iter().map(intern_term).collect()),
        Term::Eq(lhs, rhs) => TermKey::Eq(intern_term(lhs), intern_term(rhs)),
        Term::Le(lhs, rhs) => TermKey::Le(intern_term(lhs), intern_term(rhs)),
        Term::Add(items) => TermKey::Add(items.iter().map(intern_term).collect()),
        Term::MulConst(c, inner) => TermKey::MulConst(*c, intern_term(inner)),
        Term::Not(inner) => TermKey::Not(intern_term(inner)),
        Term::And(items) => TermKey::And(items.iter().map(intern_term).collect()),
        Term::Or(items) => TermKey::Or(items.iter().map(intern_term).collect()),
        Term::Implies(lhs, rhs) => TermKey::Implies(intern_term(lhs), intern_term(rhs)),
        Term::Ite(c, t, e) => TermKey::Ite(intern_term(c), intern_term(t), intern_term(e)),
    };
    TERM_INTERNER.with(|interner| {
        let mut interner = interner.borrow_mut();
        if let Some(id) = interner.get(&key) {
            return *id;
        }
        let id = interner.len() as TermId;
        interner.insert(key, id);
        id
    })
}

/// Lifetime hit counter of the formula cache, summed over all threads.
static FORMULA_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Lifetime miss counter of the formula cache, summed over all threads.
static FORMULA_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the formula cache, accumulated across every thread
/// since process start (or the last [`reset_formula_cache_stats`]).
pub fn formula_cache_stats() -> (u64, u64) {
    (FORMULA_CACHE_HITS.load(Ordering::Relaxed), FORMULA_CACHE_MISSES.load(Ordering::Relaxed))
}

/// Resets the global hit/miss counters (the cached entries stay).
pub fn reset_formula_cache_stats() {
    FORMULA_CACHE_HITS.store(0, Ordering::Relaxed);
    FORMULA_CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Drops every entry of the calling thread's formula cache **and** its term
/// interner (cache keys are interner ids, so the two live and die together).
/// Part of the epoch-based eviction story: long-running batch workers call
/// this (through `liastar::reset_thread_caches`) so solver memory stops
/// growing monotonically.
pub fn clear_formula_cache() {
    FORMULA_CACHE.with(|cache| cache.borrow_mut().clear());
    TERM_INTERNER.with(|interner| interner.borrow_mut().clear());
}

/// Number of entries in the calling thread's formula cache.
pub fn formula_cache_len() -> usize {
    FORMULA_CACHE.with(|cache| cache.borrow().len())
}

impl Solver {
    /// Creates an empty solver (cache-free — see [`Solver::cached`]).
    pub fn new() -> Self {
        Solver { assertions: Vec::new(), max_iterations: 10_000, use_cache: false }
    }

    /// Creates an empty solver that memoizes results in the thread's
    /// formula cache.
    pub fn cached() -> Self {
        Solver { use_cache: true, ..Solver::new() }
    }

    /// Asserts a formula.
    pub fn assert(&mut self, formula: Term) {
        self.assertions.push(formula);
    }

    /// Checks satisfiability of the asserted formulas.
    ///
    /// With [`Solver::use_cache`] the result is memoized under the sorted
    /// set of hash-consed assertion ids, so re-checking the same formula set
    /// — ubiquitous across the decision procedure's permutation retries — is
    /// one bottom-up interning walk plus a small-integer-slice hash lookup.
    pub fn check(&self) -> SmtResult {
        // Fault injection (test-only, inert unless armed): a forced `Unknown`
        // is reported *before* the cache probe, so the injected failure can
        // never be masked by — or leak into — a warm formula cache.
        if limits::faults::forced_smt_unknown() {
            return SmtResult::Unknown;
        }
        if !self.use_cache {
            return self.check_inner();
        }
        // Hash-cons every assertion, then sort the ids for order
        // insensitivity. Id equality is structural equality, so the probe
        // needs neither a deep `Term` sort nor structural verification.
        let mut ids: Vec<TermId> = self.assertions.iter().map(intern_term).collect();
        ids.sort_unstable();
        let hit = FORMULA_CACHE.with(|cache| cache.borrow().get(ids.as_slice()).cloned());
        if let Some(result) = hit {
            FORMULA_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return result;
        }
        FORMULA_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let result = self.check_inner();
        if !matches!(result, SmtResult::Unknown) {
            FORMULA_CACHE
                .with(|cache| cache.borrow_mut().insert(ids.into_boxed_slice(), result.clone()));
        }
        result
    }

    /// The uncached check (the actual lazy DPLL(T) loop).
    fn check_inner(&self) -> SmtResult {
        let formula = Term::and(self.assertions.clone());
        if formula == Term::tt() {
            return SmtResult::Sat(Model::default());
        }
        if formula == Term::ff() {
            return SmtResult::Unsat;
        }
        let mut sat = SatSolver::new();
        let mut abstraction = Abstraction::new();
        abstraction.assert_formula(&mut sat, &formula);

        for _ in 0..self.max_iterations {
            // Cooperative budget/deadline checkpoint: each CDCL(T) refinement
            // iteration charges the ambient RunToken's SMT step budget. On a
            // trip the solver degrades to `Unknown`, which every caller
            // already treats conservatively (and which is never cached).
            if limits::smt_step().is_err() {
                return SmtResult::Unknown;
            }
            match sat.solve() {
                SatOutcome::Unsat => return SmtResult::Unsat,
                SatOutcome::Sat(assignment) => {
                    // Collect the theory literals implied by this model.
                    let mut literals: Vec<(usize, Term, bool)> = Vec::new();
                    for (&var, atom) in &abstraction.atoms {
                        if var < assignment.len() {
                            literals.push((var, atom.clone(), assignment[var]));
                        }
                    }
                    if theory_consistent(&literals) {
                        let model = Model {
                            atoms: literals
                                .into_iter()
                                .map(|(_, atom, value)| (atom, value))
                                .collect(),
                        };
                        return SmtResult::Sat(model);
                    }
                    // Refute this boolean model: at least one theory literal
                    // must flip.
                    let blocking: Vec<Lit> =
                        literals.iter().map(|(var, _, value)| Lit::new(*var, !value)).collect();
                    sat.add_clause(blocking);
                }
            }
        }
        SmtResult::Unknown
    }
}

/// Convenience helper: checks a single formula (cache-free).
pub fn check_formula(formula: Term) -> SmtResult {
    let mut solver = Solver::new();
    solver.assert(formula);
    solver.check()
}

/// Convenience helper: returns `true` if `formula` is valid (its negation is
/// unsatisfiable). Cache-free.
pub fn is_valid(formula: Term) -> bool {
    check_formula(Term::not(formula)).is_unsat()
}

/// [`check_formula`] through the thread's formula cache.
pub fn check_formula_cached(formula: Term) -> SmtResult {
    let mut solver = Solver::cached();
    solver.assert(formula);
    solver.check()
}

/// [`is_valid`] through the thread's formula cache.
pub fn is_valid_cached(formula: Term) -> bool {
    check_formula_cached(Term::not(formula)).is_unsat()
}

// ---------------------------------------------------------------------------
// Theory checking
// ---------------------------------------------------------------------------

/// Checks the conjunction of the given theory literals with the EUF and LIA
/// solvers.
fn theory_consistent(literals: &[(usize, Term, bool)]) -> bool {
    let mut euf = CongruenceClosure::new();
    let mut lia = LiaProblem::new();

    for (_, atom, value) in literals {
        match atom {
            Term::Eq(lhs, rhs) => {
                if *value {
                    euf.assert_eq(lhs, rhs);
                } else {
                    euf.assert_neq(lhs, rhs);
                }
                if is_arithmetic(lhs) || is_arithmetic(rhs) {
                    let constraint = linear_difference(lhs, rhs);
                    if *value {
                        lia.add_eq(constraint);
                    } else {
                        lia.add_neq(constraint);
                    }
                }
            }
            Term::Le(lhs, rhs) => {
                let constraint = linear_difference(lhs, rhs);
                if *value {
                    lia.add_le(constraint);
                } else {
                    // ¬(lhs ≤ rhs) ⇔ rhs + 1 ≤ lhs over the integers.
                    let flipped = linear_difference(rhs, lhs);
                    lia.add_le(LinearConstraint {
                        coefficients: flipped.coefficients,
                        constant: flipped.constant - 1,
                    });
                }
            }
            // Pure boolean atoms impose no theory constraints.
            _ => {}
        }
    }
    euf.check() == TheoryResult::Consistent && lia.check() == TheoryResult::Consistent
}

/// Returns `true` if the term belongs to the arithmetic fragment.
fn is_arithmetic(term: &Term) -> bool {
    matches!(
        term,
        Term::IntConst(_) | Term::Add(_) | Term::MulConst(_, _) | Term::Var(_, SortTag::Int)
    )
}

/// Linearizes `lhs - rhs` into a [`LinearConstraint`] with constant moved to
/// the right-hand side: `lhs ≤ rhs` becomes `Σ coeff·var ≤ constant`.
/// Non-arithmetic sub-terms (uninterpreted applications, value variables) are
/// treated as opaque integer variables named by their rendering.
fn linear_difference(lhs: &Term, rhs: &Term) -> LinearConstraint {
    let mut coefficients: BTreeMap<String, i64> = BTreeMap::new();
    let mut constant: i64 = 0;
    accumulate(lhs, 1, &mut coefficients, &mut constant);
    accumulate(rhs, -1, &mut coefficients, &mut constant);
    coefficients.retain(|_, c| *c != 0);
    LinearConstraint { coefficients, constant: -constant }
}

fn accumulate(
    term: &Term,
    sign: i64,
    coefficients: &mut BTreeMap<String, i64>,
    constant: &mut i64,
) {
    match term {
        Term::IntConst(v) => *constant += sign * v,
        Term::Add(items) => {
            for item in items {
                accumulate(item, sign, coefficients, constant);
            }
        }
        Term::MulConst(c, inner) => accumulate(inner, sign * c, coefficients, constant),
        Term::Var(name, _) => {
            *coefficients.entry(name.clone()).or_insert(0) += sign;
        }
        other => {
            *coefficients.entry(other.to_string()).or_insert(0) += sign;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::int_var("x")
    }
    fn y() -> Term {
        Term::int_var("y")
    }

    #[test]
    fn propositional_unsat() {
        let a = Term::bool_var("a");
        assert!(check_formula(Term::and(vec![a.clone(), Term::not(a)])).is_unsat());
    }

    #[test]
    fn euf_reasoning() {
        // a = b ∧ b = c ∧ f(a) ≠ f(c) is UNSAT.
        let a = Term::value_var("a");
        let b = Term::value_var("b");
        let c = Term::value_var("c");
        let f = |t: Term| Term::App("f".into(), vec![t]);
        let formula = Term::and(vec![
            Term::eq(a.clone(), b.clone()),
            Term::eq(b, c.clone()),
            Term::neq(f(a), f(c)),
        ]);
        assert!(check_formula(formula).is_unsat());
    }

    #[test]
    fn lia_reasoning() {
        // x ≤ 3 ∧ x ≥ 5 is UNSAT.
        let formula = Term::and(vec![Term::le(x(), Term::int(3)), Term::ge(x(), Term::int(5))]);
        assert!(check_formula(formula).is_unsat());
        // x ≤ 3 ∧ x ≥ 2 is SAT.
        let formula = Term::and(vec![Term::le(x(), Term::int(3)), Term::ge(x(), Term::int(2))]);
        assert!(check_formula(formula).is_sat());
    }

    #[test]
    fn combined_boolean_and_theory() {
        // (x = 1 ∨ x = 2) ∧ x ≠ 1 ∧ x ≠ 2 is UNSAT.
        let formula = Term::and(vec![
            Term::or(vec![Term::eq(x(), Term::int(1)), Term::eq(x(), Term::int(2))]),
            Term::neq(x(), Term::int(1)),
            Term::neq(x(), Term::int(2)),
        ]);
        assert!(check_formula(formula).is_unsat());
    }

    #[test]
    fn equality_feeds_arithmetic() {
        // x = y ∧ x ≤ 3 ∧ y ≥ 5 is UNSAT.
        let formula = Term::and(vec![
            Term::eq(x(), y()),
            Term::le(x(), Term::int(3)),
            Term::ge(y(), Term::int(5)),
        ]);
        assert!(check_formula(formula).is_unsat());
    }

    #[test]
    fn validity_of_simple_arithmetic_facts() {
        // x ≤ 3 ⇒ x ≤ 5 is valid.
        assert!(is_valid(Term::implies(Term::le(x(), Term::int(3)), Term::le(x(), Term::int(5)))));
        // x ≤ 5 ⇒ x ≤ 3 is not valid.
        assert!(!is_valid(Term::implies(Term::le(x(), Term::int(5)), Term::le(x(), Term::int(3)))));
        // x = 1 ∧ y = 1 ⇒ x = y is valid.
        assert!(is_valid(Term::implies(
            Term::and(vec![Term::eq(x(), Term::int(1)), Term::eq(y(), Term::int(1))]),
            Term::eq(x(), y())
        )));
    }

    #[test]
    fn distinct_string_constants_are_unequal() {
        let alice = Term::App("const:Alice".into(), vec![]);
        let bob = Term::App("const:Bob".into(), vec![]);
        let v = Term::value_var("v");
        let formula = Term::and(vec![Term::eq(v.clone(), alice), Term::eq(v, bob)]);
        assert!(check_formula(formula).is_unsat());
    }

    #[test]
    fn sat_models_report_atoms() {
        let formula = Term::and(vec![Term::eq(x(), Term::int(1)), Term::bool_var("p")]);
        match check_formula(formula) {
            SmtResult::Sat(model) => {
                assert!(model
                    .atoms
                    .iter()
                    .any(|(atom, value)| *value && matches!(atom, Term::Eq(_, _))));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn uninterpreted_functions_in_arithmetic() {
        // f(x) ≤ 3 ∧ f(x) ≥ 5 is UNSAT (f(x) treated as an opaque integer).
        let fx = Term::App("f".into(), vec![x()]);
        let formula =
            Term::and(vec![Term::le(fx.clone(), Term::int(3)), Term::ge(fx, Term::int(5))]);
        assert!(check_formula(formula).is_unsat());
    }

    #[test]
    fn cached_and_uncached_checks_agree() {
        let formulas = vec![
            Term::and(vec![Term::le(x(), Term::int(3)), Term::ge(x(), Term::int(5))]),
            Term::and(vec![Term::le(x(), Term::int(3)), Term::ge(x(), Term::int(2))]),
            Term::and(vec![Term::bool_var("a"), Term::not(Term::bool_var("a"))]),
            Term::implies(Term::le(x(), Term::int(3)), Term::le(x(), Term::int(5))),
        ];
        for formula in formulas {
            let uncached = check_formula(formula.clone());
            let cached_cold = check_formula_cached(formula.clone());
            let cached_warm = check_formula_cached(formula);
            assert_eq!(uncached.is_unsat(), cached_cold.is_unsat());
            assert_eq!(cached_cold.is_unsat(), cached_warm.is_unsat());
            assert_eq!(cached_cold.is_sat(), cached_warm.is_sat());
        }
    }

    #[test]
    fn formula_cache_hits_on_repeated_checks() {
        // A formula unique to this test so parallel tests cannot interfere
        // with the hit accounting through the shared counters.
        let unique = Term::and(vec![
            Term::le(Term::int_var("formula_cache_hit_test_v"), Term::int(3)),
            Term::ge(Term::int_var("formula_cache_hit_test_v"), Term::int(5)),
        ]);
        assert!(check_formula_cached(unique.clone()).is_unsat());
        let (hits_before, _) = formula_cache_stats();
        // The exact same check again — and the assertion-order-insensitive
        // variant — must both be cache hits.
        assert!(check_formula_cached(unique).is_unsat());
        let mut solver = Solver::cached();
        solver.assert(Term::ge(Term::int_var("formula_cache_hit_test_v"), Term::int(5)));
        solver.assert(Term::le(Term::int_var("formula_cache_hit_test_v"), Term::int(3)));
        // Note: a single `check_formula_cached` call conjoins into one
        // assertion, while the two-assertion form is a different key — it
        // misses once, then hits on re-check.
        let first = solver.check();
        let second = solver.check();
        assert_eq!(first, second);
        let (hits_after, _) = formula_cache_stats();
        assert!(
            hits_after >= hits_before + 2,
            "expected at least two cache hits ({hits_before} -> {hits_after})"
        );
    }

    #[test]
    fn formula_cache_can_be_cleared() {
        let marker = Term::eq(Term::int_var("formula_cache_clear_test"), Term::int(1));
        check_formula_cached(marker.clone());
        assert!(formula_cache_len() > 0);
        clear_formula_cache();
        assert_eq!(formula_cache_len(), 0);
        // Still correct after the clear.
        assert!(check_formula_cached(marker).is_sat());
    }

    #[test]
    fn exhausted_smt_budget_degrades_to_uncached_unknown() {
        use std::sync::Arc;
        // A formula unique to this test so the cache interaction is isolated.
        let formula = Term::and(vec![
            Term::le(Term::int_var("smt_budget_test_v"), Term::int(3)),
            Term::ge(Term::int_var("smt_budget_test_v"), Term::int(5)),
        ]);
        let token = Arc::new(limits::RunToken::new(None, 1, 0));
        let tripped = limits::with_token(token.clone(), || {
            // Exhaust the single-step budget so the first CDCL iteration
            // trips deterministically.
            let _ = limits::smt_step();
            check_formula_cached(formula.clone())
        });
        assert_eq!(tripped, SmtResult::Unknown);
        assert!(token.trip().is_some());
        // The degraded result was not cached: a clean re-check is exact.
        assert!(check_formula_cached(formula).is_unsat());
    }

    #[test]
    fn sum_decomposition_like_lia_star() {
        // The shape produced by LIA*: v = v1 + v2, v1 ≥ 0, v2 ≥ 0, v ≥ 1,
        // v1 = 0, v2 = 0 is UNSAT.
        let v = Term::int_var("v");
        let v1 = Term::int_var("v1");
        let v2 = Term::int_var("v2");
        let formula = Term::and(vec![
            Term::eq(v.clone(), Term::add(vec![v1.clone(), v2.clone()])),
            Term::ge(v1.clone(), Term::int(0)),
            Term::ge(v2.clone(), Term::int(0)),
            Term::ge(v, Term::int(1)),
            Term::eq(v1, Term::int(0)),
            Term::eq(v2, Term::int(0)),
        ]);
        assert!(check_formula(formula).is_unsat());
    }
}
