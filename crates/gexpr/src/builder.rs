//! Construction of G-expressions from Cypher ASTs (stage ③ of the GraphQE
//! workflow, §IV-B of the paper).
//!
//! The builder walks the clauses of each single query, accumulating
//! * the set of summation variables (one per node / relationship pattern and
//!   per projected value),
//! * the multiplicative factors describing the graph pattern, predicates and
//!   projections, and
//! * an environment mapping Cypher variable names to terms.
//!
//! Features the paper models with uninterpreted functions (arbitrary-length
//! paths, built-in functions, `COLLECT`, sorting with truncation at the top
//! level) are represented with uninterpreted [`GTerm::App`] /
//! [`GAtom::Pred`] symbols; features the paper cannot handle (nested
//! aggregates, `ORDER BY ... LIMIT` inside `WITH`) produce an
//! [`UnsupportedFeature`](BuildError) error so the prover can report the same
//! failure categories as the paper's evaluation.

use std::collections::{BTreeMap, BTreeSet};

use cypher_parser::ast::{
    Aggregate, BinaryOp, Clause, Expr, Literal, MatchClause, NodePattern, PathPattern, Projection,
    ProjectionItems, Query, RelDirection, RelationshipPattern, SingleQuery, UnaryOp, UnionKind,
    UnwindClause, WithClause,
};

use crate::expr::GExpr;
use crate::term::{CmpOp, GAggKind, GAtom, GConst, GTerm, VarId};

/// The paper's unsupported-feature classes, as a closed enum so downstream
/// failure categorization is compiler-checked instead of string-matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnsupportedFeature {
    /// `ORDER BY ... LIMIT`/`SKIP` inside `WITH` (§IV-B sorting with
    /// truncation), outside the divide-and-conquer fragment.
    SortingTruncation,
    /// Aggregates nested inside other aggregates' arguments.
    NestedAggregate,
}

impl UnsupportedFeature {
    /// The stable wire name of this feature class.
    pub fn as_str(self) -> &'static str {
        match self {
            UnsupportedFeature::SortingTruncation => "sorting-truncation",
            UnsupportedFeature::NestedAggregate => "nested-aggregate",
        }
    }
}

impl std::fmt::Display for UnsupportedFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An error raised while constructing a G-expression.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError {
    /// Human readable message.
    pub message: String,
    /// The unsupported feature class, when the error mirrors one of the
    /// paper's failure classes.
    pub feature: Option<UnsupportedFeature>,
}

impl BuildError {
    fn new(message: impl Into<String>) -> Self {
        BuildError { message: message.into(), feature: None }
    }

    fn unsupported(feature: UnsupportedFeature, message: impl Into<String>) -> Self {
        BuildError { message: message.into(), feature: Some(feature) }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.feature {
            Some(feature) => write!(f, "unsupported feature `{feature}`: {}", self.message),
            None => write!(f, "G-expression construction error: {}", self.message),
        }
    }
}

impl std::error::Error for BuildError {}

/// The kind of value a result column carries — used by the prover to map
/// returned elements across two queries (§IV-C "mapping returned elements").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnKind {
    /// A node variable.
    Node,
    /// A relationship variable.
    Relationship,
    /// A property access, tagged with the property key.
    Property(String),
    /// An aggregate, tagged with the aggregate name.
    Aggregate(String),
    /// Any other expression.
    Value,
}

/// The result of constructing a G-expression for a query.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOutput {
    /// The G-expression `g(t)`.
    pub expr: GExpr,
    /// Number of output columns of the query.
    pub columns: usize,
    /// Per-column kind information for return-element mapping.
    pub column_kinds: Vec<ColumnKind>,
}

/// What kind of entity a Cypher variable denotes (used for column kinds and
/// the `null` padding of `OPTIONAL MATCH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Node,
    Relationship,
    Value,
}

/// Builds the G-expression of a (normalized) Cypher query.
pub fn build_query(query: &Query) -> Result<BuildOutput, BuildError> {
    Builder::new().build_query(query)
}

/// Builds the G-expression of a query with integer-typing hints: the listed
/// output columns are emitted as [`GTerm::IntCol`] instead of
/// [`GTerm::OutCol`], telling the SMT encoding they are integer-valued and
/// non-null. The caller (the prover) is responsible for only passing columns
/// the static analyzer proved integer on **both** queries being compared.
pub fn build_query_typed(query: &Query, int_cols: &[usize]) -> Result<BuildOutput, BuildError> {
    Builder::with_int_hints(int_cols.iter().copied()).build_query(query)
}

/// The G-expression builder. Owns the variable counter so that every
/// constructed variable is unique across the whole query (including
/// subqueries and the emptiness tests of `OPTIONAL MATCH`).
pub struct Builder {
    next_var: u32,
    int_cols: BTreeSet<usize>,
}

/// Per-single-query accumulation state.
#[derive(Debug, Clone, Default)]
struct State {
    vars: Vec<VarId>,
    factors: Vec<GExpr>,
    env: BTreeMap<String, GTerm>,
    kinds: BTreeMap<String, VarKind>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// Creates a fresh builder.
    pub fn new() -> Self {
        Builder { next_var: 0, int_cols: BTreeSet::new() }
    }

    /// Creates a builder that emits [`GTerm::IntCol`] for the given output
    /// columns (integer typing facts from the static analyzer).
    pub fn with_int_hints(int_cols: impl IntoIterator<Item = usize>) -> Self {
        Builder { next_var: 0, int_cols: int_cols.into_iter().collect() }
    }

    /// The output-column term for `index`, honouring the typing hints.
    fn out_col(&self, index: usize) -> GTerm {
        if self.int_cols.contains(&index) {
            GTerm::IntCol(index)
        } else {
            GTerm::OutCol(index)
        }
    }

    fn fresh(&mut self) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        id
    }

    /// Builds the G-expression of a full query (handling `UNION [ALL]`).
    pub fn build_query(&mut self, query: &Query) -> Result<BuildOutput, BuildError> {
        let mut parts = Vec::new();
        let mut columns = None;
        let mut kinds = None;
        let mut any_distinct_union = false;
        for (i, part) in query.parts.iter().enumerate() {
            let output = self.build_single_query(part, &State::default())?;
            match columns {
                None => {
                    columns = Some(output.columns);
                    kinds = Some(output.column_kinds.clone());
                }
                Some(c) if c != output.columns => {
                    return Err(BuildError::new(format!(
                        "UNION sub-queries return {c} and {} columns",
                        output.columns
                    )));
                }
                Some(_) => {}
            }
            if i > 0 && query.unions[i - 1] == UnionKind::Distinct {
                any_distinct_union = true;
            }
            parts.push(output.expr);
        }
        let combined = GExpr::add(parts);
        let expr = if any_distinct_union { GExpr::squash(combined) } else { combined };
        Ok(BuildOutput {
            expr,
            columns: columns.unwrap_or(0),
            column_kinds: kinds.unwrap_or_default(),
        })
    }

    /// Builds a single (non-union) query.
    fn build_single_query(
        &mut self,
        query: &SingleQuery,
        outer: &State,
    ) -> Result<BuildOutput, BuildError> {
        let mut state = outer.clone();
        for (index, clause) in query.clauses.iter().enumerate() {
            let is_last = index + 1 == query.clauses.len();
            match clause {
                Clause::Match(m) => self.build_match(&mut state, m)?,
                Clause::Unwind(u) => self.build_unwind(&mut state, u)?,
                Clause::With(w) => self.build_with(&mut state, w)?,
                Clause::Return(p) => {
                    if !is_last {
                        return Err(BuildError::new("RETURN must be the final clause"));
                    }
                    return self.build_return(&mut state, p);
                }
            }
        }
        Err(BuildError::new("query does not end with a RETURN clause"))
    }

    // -- MATCH ---------------------------------------------------------------

    fn build_match(&mut self, state: &mut State, clause: &MatchClause) -> Result<(), BuildError> {
        if clause.optional {
            return self.build_optional_match(state, clause);
        }
        let mut rel_terms = Vec::new();
        for pattern in &clause.patterns {
            self.build_path_pattern(state, pattern, &mut rel_terms)?;
        }
        self.add_injectivity(state, &rel_terms);
        if let Some(predicate) = &clause.where_clause {
            let factor = self.build_predicate(state, predicate)?;
            state.factors.push(factor);
        }
        Ok(())
    }

    /// Relationship-injective semantics: distinct relationship patterns in one
    /// `MATCH` clause must bind distinct relationships, modeled as
    /// `not([e_i = e_j])` for every pair (§IV-B).
    fn add_injectivity(&mut self, state: &mut State, rel_terms: &[GTerm]) {
        for i in 0..rel_terms.len() {
            for j in (i + 1)..rel_terms.len() {
                state
                    .factors
                    .push(GExpr::not(GExpr::eq(rel_terms[i].clone(), rel_terms[j].clone())));
            }
        }
    }

    /// `OPTIONAL MATCH` (left outer join, Table I):
    /// `G(q1) × G(q2) + G(q1) × not(G(q2)) × isNULL(G(q2))`.
    fn build_optional_match(
        &mut self,
        state: &mut State,
        clause: &MatchClause,
    ) -> Result<(), BuildError> {
        // Build the optional part in a sub-state that sees the current
        // bindings but accumulates its own variables and factors.
        let mut optional = State {
            vars: Vec::new(),
            factors: Vec::new(),
            env: state.env.clone(),
            kinds: state.kinds.clone(),
        };
        let mut rel_terms = Vec::new();
        for pattern in &clause.patterns {
            self.build_path_pattern(&mut optional, pattern, &mut rel_terms)?;
        }
        self.add_injectivity(&mut optional, &rel_terms);
        if let Some(predicate) = &clause.where_clause {
            let factor = self.build_predicate(&optional, predicate)?;
            optional.factors.push(factor);
        }

        let present = GExpr::mul(optional.factors.clone());

        // Emptiness test over a fresh copy of the optional variables so the
        // `not(...)` factor does not capture the row's own bindings.
        let mut renaming = BTreeMap::new();
        let mut fresh_vars = Vec::new();
        for var in &optional.vars {
            let fresh = self.fresh();
            renaming.insert(*var, fresh);
            fresh_vars.push(fresh);
        }
        let emptiness_body = present.rename_variables(&renaming);
        let absent_guard = GExpr::not(GExpr::squash(GExpr::sum(fresh_vars, emptiness_body)));

        // In the absent branch every newly bound variable is NULL.
        let mut null_factors = vec![absent_guard];
        for var in &optional.vars {
            null_factors.push(GExpr::eq(GTerm::Var(*var), GTerm::Const(GConst::Null)));
        }
        let absent = GExpr::mul(null_factors);

        state.vars.extend(optional.vars.iter().copied());
        state.factors.push(GExpr::add(vec![present, absent]));
        state.env = optional.env;
        state.kinds = optional.kinds;
        Ok(())
    }

    fn build_path_pattern(
        &mut self,
        state: &mut State,
        pattern: &PathPattern,
        rel_terms: &mut Vec<GTerm>,
    ) -> Result<(), BuildError> {
        let mut trace = Vec::new();
        let mut left = self.build_node_pattern(state, &pattern.start)?;
        trace.push(left.clone());
        for segment in &pattern.segments {
            let right = self.build_node_pattern(state, &segment.node)?;
            let rel =
                self.build_relationship_pattern(state, &segment.relationship, &left, &right)?;
            if !segment.relationship.is_var_length() {
                rel_terms.push(rel.clone());
            }
            trace.push(rel);
            trace.push(right.clone());
            left = right;
        }
        if let Some(path_var) = &pattern.variable {
            let term = GTerm::app("path", trace);
            state.env.insert(path_var.clone(), term);
            state.kinds.insert(path_var.clone(), VarKind::Value);
        }
        Ok(())
    }

    fn build_node_pattern(
        &mut self,
        state: &mut State,
        pattern: &NodePattern,
    ) -> Result<GTerm, BuildError> {
        let term = match &pattern.variable {
            Some(name) => match state.env.get(name) {
                Some(term) => term.clone(),
                None => {
                    let var = self.fresh();
                    state.vars.push(var);
                    state.env.insert(name.clone(), GTerm::Var(var));
                    state.kinds.insert(name.clone(), VarKind::Node);
                    GTerm::Var(var)
                }
            },
            None => {
                let var = self.fresh();
                state.vars.push(var);
                GTerm::Var(var)
            }
        };
        state.factors.push(GExpr::NodeFn(term.clone()));
        for label in &pattern.labels {
            state.factors.push(GExpr::LabFn(term.clone(), label.clone()));
        }
        for (key, value) in &pattern.properties {
            let value_term = self.build_term(state, value)?;
            state.factors.push(GExpr::eq(GTerm::prop(term.clone(), key.clone()), value_term));
        }
        Ok(term)
    }

    fn build_relationship_pattern(
        &mut self,
        state: &mut State,
        pattern: &RelationshipPattern,
        left: &GTerm,
        right: &GTerm,
    ) -> Result<GTerm, BuildError> {
        let term = match &pattern.variable {
            Some(name) => match state.env.get(name) {
                Some(term) => term.clone(),
                None => {
                    let var = self.fresh();
                    state.vars.push(var);
                    state.env.insert(name.clone(), GTerm::Var(var));
                    state.kinds.insert(name.clone(), VarKind::Relationship);
                    GTerm::Var(var)
                }
            },
            None => {
                let var = self.fresh();
                state.vars.push(var);
                GTerm::Var(var)
            }
        };
        state.factors.push(GExpr::RelFn(term.clone()));

        // A relationship has exactly one label, so alternatives combine with
        // `+` rather than `×` (§IV-B).
        match pattern.labels.len() {
            0 => {}
            1 => state.factors.push(GExpr::LabFn(term.clone(), pattern.labels[0].clone())),
            _ => {
                let alternatives = pattern
                    .labels
                    .iter()
                    .map(|label| GExpr::LabFn(term.clone(), label.clone()))
                    .collect();
                state.factors.push(GExpr::add(alternatives));
            }
        }
        for (key, value) in &pattern.properties {
            let value_term = self.build_term(state, value)?;
            state.factors.push(GExpr::eq(GTerm::prop(term.clone(), key.clone()), value_term));
        }

        // Arbitrary-length paths: treat the pattern as a single relationship
        // entity marked UNBOUNDED (Table I); a bounded range keeps its bounds
        // as an uninterpreted predicate so differing bounds never unify.
        if let Some(length) = &pattern.length {
            state.factors.push(GExpr::Unbounded(term.clone()));
            if length.min.is_some() || length.max.is_some() {
                state.factors.push(GExpr::Atom(GAtom::Pred(
                    "varlen".to_string(),
                    vec![
                        term.clone(),
                        GTerm::int(length.min.map(i64::from).unwrap_or(1)),
                        GTerm::int(length.max.map(i64::from).unwrap_or(-1)),
                    ],
                )));
            }
        }

        let src = GTerm::app("src", vec![term.clone()]);
        let tgt = GTerm::app("tgt", vec![term.clone()]);
        match pattern.direction {
            RelDirection::Outgoing => {
                state.factors.push(GExpr::eq(src, left.clone()));
                state.factors.push(GExpr::eq(tgt, right.clone()));
            }
            RelDirection::Incoming => {
                state.factors.push(GExpr::eq(src, right.clone()));
                state.factors.push(GExpr::eq(tgt, left.clone()));
            }
            RelDirection::Undirected => {
                let forward = GExpr::mul(vec![
                    GExpr::eq(src.clone(), left.clone()),
                    GExpr::eq(tgt.clone(), right.clone()),
                ]);
                let backward =
                    GExpr::mul(vec![GExpr::eq(src, right.clone()), GExpr::eq(tgt, left.clone())]);
                state.factors.push(GExpr::add(vec![forward, backward]));
            }
        }
        Ok(term)
    }

    // -- UNWIND ---------------------------------------------------------------

    fn build_unwind(&mut self, state: &mut State, clause: &UnwindClause) -> Result<(), BuildError> {
        let row_var = self.fresh();
        state.vars.push(row_var);
        let row_term = GTerm::Var(row_var);

        // Resolve aliases introduced by WITH so `WITH [..] AS tmp UNWIND tmp`
        // sees the underlying list literal.
        let source = match &clause.expr {
            Expr::Variable(name) => match state.env.get(name) {
                Some(GTerm::App(app, args)) if app == "list" => {
                    Some(ListSource::Terms(args.clone()))
                }
                _ => None,
            },
            Expr::List(items) => {
                let mut terms = Vec::new();
                for item in items {
                    terms.push(self.build_term(state, item)?);
                }
                Some(ListSource::Terms(terms))
            }
            // UNWIND(COLLECT(x)) undoes the aggregation (§IV-B "Unwinding");
            // the normalizer rewrites this form, but handle it here as well.
            Expr::AggregateCall { func: Aggregate::Collect, arg, .. } => {
                let term = self.build_term(state, arg)?;
                Some(ListSource::Passthrough(term))
            }
            _ => None,
        };

        match source {
            Some(ListSource::Terms(terms)) => {
                // Constant list: the concatenation of one product per element
                // (Table I, "Unwinding").
                let mut alternatives = Vec::new();
                for term in terms {
                    alternatives.push(self.unwind_element(&row_term, &term));
                }
                state.factors.push(GExpr::add(alternatives));
            }
            Some(ListSource::Passthrough(term)) => {
                state.factors.push(GExpr::eq(row_term.clone(), term));
            }
            None => {
                // Arbitrary list expression: uninterpreted membership.
                let list_term = self.build_term(state, &clause.expr)?;
                state.factors.push(GExpr::Atom(GAtom::Pred(
                    "unwind".to_string(),
                    vec![row_term.clone(), list_term],
                )));
            }
        }
        state.env.insert(clause.alias.clone(), row_term);
        state.kinds.insert(clause.alias.clone(), VarKind::Value);
        Ok(())
    }

    fn unwind_element(&mut self, row: &GTerm, element: &GTerm) -> GExpr {
        match element {
            // A map literal pins each property of the row variable.
            GTerm::App(name, args) if name == "map" => {
                let mut factors = Vec::new();
                let mut iter = args.iter();
                while let (Some(key), Some(value)) = (iter.next(), iter.next()) {
                    if let GTerm::Const(GConst::String(key)) = key {
                        factors
                            .push(GExpr::eq(GTerm::prop(row.clone(), key.clone()), value.clone()));
                    }
                }
                GExpr::mul(factors)
            }
            other => GExpr::eq(row.clone(), other.clone()),
        }
    }

    // -- WITH -----------------------------------------------------------------

    fn build_with(&mut self, state: &mut State, clause: &WithClause) -> Result<(), BuildError> {
        let projection = &clause.projection;
        if projection.skip.is_some() || projection.limit.is_some() {
            // §IV-B "Sorting with truncation": LIMIT/SKIP inside a subquery
            // cannot be modeled directly; the prover's divide-and-conquer
            // splits the query at this point instead.
            return Err(BuildError::unsupported(
                UnsupportedFeature::SortingTruncation,
                "ORDER BY ... LIMIT/SKIP inside WITH requires divide-and-conquer proving",
            ));
        }
        // A bare ORDER BY inside WITH is ignored: its order is not guaranteed
        // to survive the following clauses (§IV-B case (1)).

        let items = self.projection_items(state, projection)?;
        let has_aggregate = items.iter().any(|(_, expr)| expr.contains_aggregate());

        if !has_aggregate && !projection.distinct {
            // Pure renaming: bind the projected names directly to their terms
            // (this is the temp-variable elimination of §IV-B applied during
            // construction). The previous bindings go out of scope.
            let mut new_env = BTreeMap::new();
            let mut new_kinds = BTreeMap::new();
            for (name, expr) in &items {
                let term = self.build_term(state, expr)?;
                new_kinds.insert(name.clone(), self.expr_kind(state, expr));
                new_env.insert(name.clone(), term);
            }
            state.env = new_env;
            state.kinds = new_kinds;
        } else {
            self.project_with_grouping(state, &items, projection.distinct)?;
        }

        if let Some(predicate) = &clause.where_clause {
            let factor = self.build_predicate(state, predicate)?;
            state.factors.push(factor);
        }
        Ok(())
    }

    /// Shared handling of `WITH DISTINCT ...` and `WITH`-level aggregation:
    /// the current pattern is folded into a squashed group per combination of
    /// grouping keys, and aggregate items become [`GTerm::Agg`] terms.
    fn project_with_grouping(
        &mut self,
        state: &mut State,
        items: &[(String, Expr)],
        _distinct: bool,
    ) -> Result<(), BuildError> {
        let old_vars = state.vars.clone();
        let old_factors = state.factors.clone();

        let mut new_vars = Vec::new();
        let mut key_equalities = Vec::new();
        let mut agg_bindings = Vec::new();
        let mut new_env = BTreeMap::new();
        let mut new_kinds = BTreeMap::new();

        for (name, expr) in items {
            let var = self.fresh();
            new_vars.push(var);
            let var_term = GTerm::Var(var);
            if expr.contains_aggregate() {
                let agg_term = self.build_aggregate_term(state, expr, &key_equalities)?;
                agg_bindings.push(GExpr::eq(var_term.clone(), agg_term));
                new_kinds.insert(name.clone(), VarKind::Value);
            } else {
                let term = self.build_term(state, expr)?;
                key_equalities.push(GExpr::eq(var_term.clone(), term));
                new_kinds.insert(name.clone(), self.expr_kind(state, expr));
            }
            new_env.insert(name.clone(), var_term);
        }

        let mut group_factors = old_factors.clone();
        group_factors.extend(key_equalities.clone());
        let group = GExpr::squash(GExpr::sum(old_vars, GExpr::mul(group_factors)));

        state.vars = new_vars;
        state.factors = vec![group];
        state.factors.extend(agg_bindings);
        state.env = new_env;
        state.kinds = new_kinds;
        Ok(())
    }

    // -- RETURN ---------------------------------------------------------------

    fn build_return(
        &mut self,
        state: &mut State,
        projection: &Projection,
    ) -> Result<BuildOutput, BuildError> {
        let items = self.projection_items(state, projection)?;
        let column_kinds: Vec<ColumnKind> =
            items.iter().map(|(_, expr)| self.column_kind(state, expr)).collect();
        let columns = items.len();
        let has_aggregate = items.iter().any(|(_, expr)| expr.contains_aggregate());

        // Sorting with truncation at the outermost level (§IV-B): conditions
        // on every output tuple via the order/limit/skip markers.
        let mut ordering_factors = Vec::new();
        for (index, order) in projection.order_by.iter().enumerate() {
            let key = self.build_term(state, &order.expr)?;
            let direction = if order.ascending { "asc" } else { "desc" };
            ordering_factors.push(GExpr::Atom(GAtom::Pred(
                "order".to_string(),
                vec![GTerm::int(index as i64), GTerm::string(direction), key],
            )));
        }
        if let Some(limit) = &projection.limit {
            let term = self.build_term(state, limit)?;
            ordering_factors.push(GExpr::Atom(GAtom::Pred("limit".to_string(), vec![term])));
        }
        if let Some(skip) = &projection.skip {
            let term = self.build_term(state, skip)?;
            ordering_factors.push(GExpr::Atom(GAtom::Pred("skip".to_string(), vec![term])));
        }

        let expr = if has_aggregate {
            // Group keys pin output columns through a squashed group; each
            // aggregate column is pinned to its aggregate term.
            let mut key_equalities = Vec::new();
            let mut agg_equalities = Vec::new();
            for (index, (_, item)) in items.iter().enumerate() {
                let col = self.out_col(index);
                if item.contains_aggregate() {
                    let agg = self.build_aggregate_term(state, item, &key_equalities)?;
                    agg_equalities.push(GExpr::eq(col, agg));
                } else {
                    let term = self.build_term(state, item)?;
                    key_equalities.push(GExpr::eq(col, term));
                }
            }
            let group_present = !key_equalities.is_empty();
            let mut group_factors = state.factors.clone();
            group_factors.extend(key_equalities);
            group_factors.extend(ordering_factors.clone());
            let group = GExpr::sum(state.vars.clone(), GExpr::mul(group_factors));
            let mut final_factors = Vec::new();
            if group_present {
                final_factors.push(GExpr::squash(group));
            } else {
                // A global aggregate always returns exactly one row.
                final_factors.push(GExpr::One);
            }
            final_factors.extend(agg_equalities);
            final_factors.extend(if group_present { vec![] } else { ordering_factors });
            GExpr::mul(final_factors)
        } else {
            let mut factors = state.factors.clone();
            for (index, (_, item)) in items.iter().enumerate() {
                let term = self.build_term(state, item)?;
                factors.push(GExpr::eq(self.out_col(index), term));
            }
            factors.extend(ordering_factors);
            let body = GExpr::sum(state.vars.clone(), GExpr::mul(factors));
            if projection.distinct {
                GExpr::squash(body)
            } else {
                body
            }
        };

        Ok(BuildOutput { expr, columns, column_kinds })
    }

    /// Expands `*` and attaches output names to projection items.
    fn projection_items(
        &mut self,
        state: &State,
        projection: &Projection,
    ) -> Result<Vec<(String, Expr)>, BuildError> {
        match &projection.items {
            ProjectionItems::Star => Ok(state
                .env
                .keys()
                .map(|name| (name.clone(), Expr::Variable(name.clone())))
                .collect()),
            ProjectionItems::Items(items) => {
                Ok(items.iter().map(|item| (item.output_name(), item.expr.clone())).collect())
            }
        }
    }

    /// Builds the aggregate term for a projection item that *is* an aggregate
    /// call. Compound aggregate expressions (e.g. `SUM(x)/COUNT(x)`,
    /// `COUNT(SUM(x))`) are not supported — the same limitation as GraphQE.
    fn build_aggregate_term(
        &mut self,
        state: &State,
        expr: &Expr,
        key_equalities: &[GExpr],
    ) -> Result<GTerm, BuildError> {
        let (kind, distinct, arg_term) = match expr {
            Expr::AggregateCall { func, distinct, arg } => {
                if arg.contains_aggregate() {
                    return Err(BuildError::unsupported(
                        UnsupportedFeature::NestedAggregate,
                        format!("nested aggregate `{expr}` cannot be modeled"),
                    ));
                }
                let kind = match func {
                    Aggregate::Count => GAggKind::Count,
                    Aggregate::Sum => GAggKind::Sum,
                    Aggregate::Min => GAggKind::Min,
                    Aggregate::Max => GAggKind::Max,
                    Aggregate::Avg => GAggKind::Avg,
                    Aggregate::Collect => GAggKind::Collect,
                };
                (kind, *distinct, self.build_term(state, arg)?)
            }
            Expr::CountStar { distinct } => {
                (GAggKind::Count, *distinct, GTerm::app("star", vec![]))
            }
            other => {
                return Err(BuildError::unsupported(
                    UnsupportedFeature::NestedAggregate,
                    format!("aggregate computation `{other}` cannot be modeled"),
                ));
            }
        };
        // The group of the aggregate: the current pattern constrained to the
        // same grouping keys as the output row.
        let mut group_factors = state.factors.clone();
        group_factors.extend(key_equalities.to_vec());
        let group = GExpr::sum(state.vars.clone(), GExpr::mul(group_factors));
        Ok(GTerm::Agg { kind, distinct, arg: Box::new(arg_term), group: Box::new(group) })
    }

    // -- expressions ------------------------------------------------------------

    /// Compiles a boolean Cypher expression into a 0/1-valued G-expression.
    fn build_predicate(&mut self, state: &State, expr: &Expr) -> Result<GExpr, BuildError> {
        Ok(match expr {
            Expr::Binary(BinaryOp::And, lhs, rhs) => GExpr::mul(vec![
                self.build_predicate(state, lhs)?,
                self.build_predicate(state, rhs)?,
            ]),
            Expr::Binary(BinaryOp::Or, lhs, rhs) => GExpr::squash(GExpr::add(vec![
                self.build_predicate(state, lhs)?,
                self.build_predicate(state, rhs)?,
            ])),
            Expr::Binary(BinaryOp::Xor, lhs, rhs) => {
                let left = self.build_predicate(state, lhs)?;
                let right = self.build_predicate(state, rhs)?;
                GExpr::add(vec![
                    GExpr::mul(vec![left.clone(), GExpr::not(right.clone())]),
                    GExpr::mul(vec![GExpr::not(left), right]),
                ])
            }
            Expr::Unary(UnaryOp::Not, inner) => GExpr::not(self.build_predicate(state, inner)?),
            Expr::Binary(op, lhs, rhs) if op.is_comparison() => {
                let cmp = match op {
                    BinaryOp::Eq => CmpOp::Eq,
                    BinaryOp::Neq => CmpOp::Neq,
                    BinaryOp::Lt => CmpOp::Lt,
                    BinaryOp::Le => CmpOp::Le,
                    BinaryOp::Gt => CmpOp::Gt,
                    BinaryOp::Ge => CmpOp::Ge,
                    _ => unreachable!("is_comparison"),
                };
                GExpr::Atom(GAtom::Cmp(
                    cmp,
                    self.build_term(state, lhs)?,
                    self.build_term(state, rhs)?,
                ))
            }
            Expr::Binary(
                op
                @ (BinaryOp::In | BinaryOp::StartsWith | BinaryOp::EndsWith | BinaryOp::Contains),
                lhs,
                rhs,
            ) => {
                let name = match op {
                    BinaryOp::In => "in",
                    BinaryOp::StartsWith => "startsWith",
                    BinaryOp::EndsWith => "endsWith",
                    BinaryOp::Contains => "contains",
                    _ => unreachable!(),
                };
                GExpr::Atom(GAtom::Pred(
                    name.to_string(),
                    vec![self.build_term(state, lhs)?, self.build_term(state, rhs)?],
                ))
            }
            Expr::IsNull { expr, negated } => {
                GExpr::Atom(GAtom::IsNull(self.build_term(state, expr)?, *negated))
            }
            Expr::Literal(Literal::Boolean(true)) => GExpr::One,
            Expr::Literal(Literal::Boolean(false)) => GExpr::Zero,
            Expr::Literal(Literal::Null) => GExpr::Zero,
            Expr::Exists(query) => self.build_exists(state, query)?,
            other => {
                // Any other expression used as a predicate: uninterpreted
                // truthiness test.
                GExpr::Atom(GAtom::Pred("truthy".to_string(), vec![self.build_term(state, other)?]))
            }
        })
    }

    /// `EXISTS { subquery }`: the squashed multiplicity of the subquery's
    /// pattern, with the outer bindings visible.
    fn build_exists(&mut self, state: &State, query: &Query) -> Result<GExpr, BuildError> {
        let mut parts = Vec::new();
        for part in &query.parts {
            let mut sub = State {
                vars: Vec::new(),
                factors: Vec::new(),
                env: state.env.clone(),
                kinds: state.kinds.clone(),
            };
            for clause in &part.clauses {
                match clause {
                    Clause::Match(m) => self.build_match(&mut sub, m)?,
                    Clause::Unwind(u) => self.build_unwind(&mut sub, u)?,
                    Clause::With(w) => self.build_with(&mut sub, w)?,
                    // The projection of an EXISTS subquery is irrelevant; only
                    // the existence of a matching row matters.
                    Clause::Return(_) => {}
                }
            }
            parts.push(GExpr::sum(sub.vars, GExpr::mul(sub.factors)));
        }
        Ok(GExpr::squash(GExpr::add(parts)))
    }

    /// Compiles a scalar Cypher expression into a term.
    fn build_term(&mut self, state: &State, expr: &Expr) -> Result<GTerm, BuildError> {
        Ok(match expr {
            Expr::Literal(Literal::Integer(v)) => GTerm::Const(GConst::Integer(*v)),
            Expr::Literal(Literal::Float(v)) => GTerm::Const(GConst::Float(*v)),
            Expr::Literal(Literal::String(s)) => GTerm::Const(GConst::String(s.clone())),
            Expr::Literal(Literal::Boolean(b)) => GTerm::Const(GConst::Boolean(*b)),
            Expr::Literal(Literal::Null) => GTerm::Const(GConst::Null),
            Expr::Variable(name) => state.env.get(name).cloned().ok_or_else(|| {
                BuildError::new(format!("reference to unbound variable `{name}`"))
            })?,
            Expr::Parameter(name) => GTerm::app("param", vec![GTerm::string(name.clone())]),
            Expr::Property(base, key) => GTerm::prop(self.build_term(state, base)?, key.clone()),
            Expr::FunctionCall { name, args } => {
                let mut terms = Vec::new();
                for arg in args {
                    terms.push(self.build_term(state, arg)?);
                }
                GTerm::app(name.clone(), terms)
            }
            Expr::Unary(UnaryOp::Neg, inner) => {
                GTerm::app("neg", vec![self.build_term(state, inner)?])
            }
            Expr::Unary(UnaryOp::Pos, inner) => self.build_term(state, inner)?,
            Expr::Unary(UnaryOp::Not, inner) => {
                GTerm::app("not", vec![self.build_term(state, inner)?])
            }
            Expr::Binary(op, lhs, rhs) => {
                let name = match op {
                    BinaryOp::Add => "add",
                    BinaryOp::Sub => "sub",
                    BinaryOp::Mul => "mul",
                    BinaryOp::Div => "div",
                    BinaryOp::Mod => "mod",
                    BinaryOp::Pow => "pow",
                    BinaryOp::Eq => "eq",
                    BinaryOp::Neq => "neq",
                    BinaryOp::Lt => "lt",
                    BinaryOp::Le => "le",
                    BinaryOp::Gt => "gt",
                    BinaryOp::Ge => "ge",
                    BinaryOp::And => "and",
                    BinaryOp::Or => "or",
                    BinaryOp::Xor => "xor",
                    BinaryOp::In => "in",
                    BinaryOp::StartsWith => "startsWith",
                    BinaryOp::EndsWith => "endsWith",
                    BinaryOp::Contains => "contains",
                };
                GTerm::app(name, vec![self.build_term(state, lhs)?, self.build_term(state, rhs)?])
            }
            Expr::IsNull { expr, negated } => GTerm::app(
                if *negated { "isNotNull" } else { "isNull" },
                vec![self.build_term(state, expr)?],
            ),
            Expr::List(items) => {
                let mut terms = Vec::new();
                for item in items {
                    terms.push(self.build_term(state, item)?);
                }
                GTerm::app("list", terms)
            }
            Expr::Map(entries) => {
                let mut terms = Vec::new();
                for (key, value) in entries {
                    terms.push(GTerm::string(key.clone()));
                    terms.push(self.build_term(state, value)?);
                }
                GTerm::app("map", terms)
            }
            Expr::AggregateCall { .. } | Expr::CountStar { .. } => {
                return Err(BuildError::unsupported(
                    UnsupportedFeature::NestedAggregate,
                    "aggregates may only appear as whole projection items",
                ));
            }
            Expr::Exists(query) => {
                // EXISTS as a value: encode the squashed subquery multiplicity
                // as an uninterpreted term over its display form.
                let inner = self.build_exists(state, query)?;
                GTerm::app("existsValue", vec![GTerm::string(inner.to_string())])
            }
            Expr::Case { branches, otherwise } => {
                let mut terms = Vec::new();
                for (cond, value) in branches {
                    let predicate = self.build_predicate(state, cond)?;
                    terms.push(GTerm::string(predicate.to_string()));
                    terms.push(self.build_term(state, value)?);
                }
                if let Some(e) = otherwise {
                    terms.push(self.build_term(state, e)?);
                }
                GTerm::app("case", terms)
            }
        })
    }

    fn expr_kind(&self, state: &State, expr: &Expr) -> VarKind {
        match expr {
            Expr::Variable(name) => state.kinds.get(name).copied().unwrap_or(VarKind::Value),
            _ => VarKind::Value,
        }
    }

    fn column_kind(&self, state: &State, expr: &Expr) -> ColumnKind {
        match expr {
            Expr::Variable(name) => match state.kinds.get(name) {
                Some(VarKind::Node) => ColumnKind::Node,
                Some(VarKind::Relationship) => ColumnKind::Relationship,
                _ => ColumnKind::Value,
            },
            Expr::Property(_, key) => ColumnKind::Property(key.clone()),
            Expr::AggregateCall { func, .. } => ColumnKind::Aggregate(func.name().to_string()),
            Expr::CountStar { .. } => ColumnKind::Aggregate("COUNT".to_string()),
            _ => ColumnKind::Value,
        }
    }
}

enum ListSource {
    Terms(Vec<GTerm>),
    Passthrough(GTerm),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn build(text: &str) -> BuildOutput {
        build_query(&parse_query(text).unwrap()).unwrap()
    }

    fn build_err(text: &str) -> BuildError {
        build_query(&parse_query(text).unwrap()).unwrap_err()
    }

    #[test]
    fn builds_the_overview_example() {
        // §III-B: MATCH (n1)-[r]->(n2) WHERE n1.age=59 RETURN n1
        let output = build("MATCH (n1)-[r]->(n2) WHERE n1.age = 59 RETURN n1");
        assert_eq!(output.columns, 1);
        assert_eq!(output.column_kinds, vec![ColumnKind::Node]);
        let text = output.expr.to_string();
        assert!(text.contains("Node(e0)"), "{text}");
        assert!(text.contains("Rel("), "{text}");
        assert!(text.contains("src("), "{text}");
        assert!(text.contains("tgt("), "{text}");
        assert!(text.contains("[e0.age = 59]"), "{text}");
        assert!(text.contains("t.col1"), "{text}");
    }

    #[test]
    fn node_pattern_with_labels_and_properties() {
        let output = build("MATCH (n:Person:Author {age: 59}) RETURN n");
        let text = output.expr.to_string();
        assert!(text.contains("Lab(e0, Person)"));
        assert!(text.contains("Lab(e0, Author)"));
        assert!(text.contains("[e0.age = 59]"));
    }

    #[test]
    fn relationship_multi_labels_use_disjunction() {
        let output = build("MATCH (a)-[r:READ|WRITE]->(b) RETURN a");
        let text = output.expr.to_string();
        assert!(text.contains("Lab(e2, READ) + Lab(e2, WRITE)"), "{text}");
    }

    #[test]
    fn injectivity_constraints_are_added_within_one_match() {
        let output = build("MATCH (a)-[x]->(b)<-[y]-(c) RETURN a");
        let text = output.expr.to_string();
        assert!(text.contains("not([e2 = e4])"), "{text}");
        // Across separate MATCH clauses there is no injectivity constraint.
        let output = build("MATCH (a)-[x]->(b) MATCH (c)-[y]->(d) RETURN a");
        assert!(!output.expr.to_string().contains("not(["));
    }

    #[test]
    fn where_predicates_use_semiring_connectives() {
        let output = build("MATCH (n) WHERE n.age > 29 OR n.age < 59 RETURN n");
        let text = output.expr.to_string();
        assert!(text.contains("‖"), "OR must be squashed: {text}");
        let output = build("MATCH (n) WHERE n.a = 1 AND n.b = 2 RETURN n");
        let text = output.expr.to_string();
        assert!(text.contains("[e0.a = 1]"));
        assert!(text.contains("[e0.b = 2]"));
        let output = build("MATCH (n) WHERE NOT n.a = 1 RETURN n");
        assert!(output.expr.to_string().contains("not([e0.a = 1])"));
    }

    #[test]
    fn union_all_adds_and_union_squashes() {
        let all = build("MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b");
        match &all.expr {
            GExpr::Add(items) => assert_eq!(items.len(), 2),
            other => panic!("expected Add, got {other}"),
        }
        let distinct = build("MATCH (a) RETURN a UNION MATCH (b) RETURN b");
        assert!(matches!(distinct.expr, GExpr::Squash(_)));
    }

    #[test]
    fn return_distinct_squashes() {
        let output = build("MATCH (n) RETURN DISTINCT n.name");
        assert!(matches!(output.expr, GExpr::Squash(_)));
    }

    #[test]
    fn optional_match_produces_left_outer_join_shape() {
        let output = build("MATCH (a) OPTIONAL MATCH (a)-[r]->(b) RETURN a, b");
        let text = output.expr.to_string();
        assert!(text.contains("not(‖"), "{text}");
        assert!(text.contains("= null]"), "{text}");
    }

    #[test]
    fn variable_length_paths_use_unbounded() {
        let output = build("MATCH (a)-[*]->(b) RETURN a");
        assert!(output.expr.to_string().contains("UNBOUNDED("));
        let bounded = build("MATCH (a)-[*1..3]->(b) RETURN a");
        assert!(bounded.expr.to_string().contains("varlen("));
    }

    #[test]
    fn aggregates_become_aggregate_terms() {
        let output = build("MATCH (n:Person) RETURN SUM(n.age)");
        let text = output.expr.to_string();
        assert!(text.contains("SUM("), "{text}");
        assert_eq!(output.column_kinds, vec![ColumnKind::Aggregate("SUM".into())]);
        let grouped = build("MATCH (n:Person) RETURN n.name, COUNT(*)");
        let text = grouped.expr.to_string();
        assert!(text.contains("COUNT("), "{text}");
        assert!(text.contains("‖"), "grouped aggregates squash the group: {text}");
    }

    #[test]
    fn order_limit_skip_at_top_level_are_markers() {
        let output = build("MATCH (n) RETURN n.name ORDER BY n.age DESC SKIP 2 LIMIT 5");
        let text = output.expr.to_string();
        assert!(text.contains("order("), "{text}");
        assert!(text.contains("limit("), "{text}");
        assert!(text.contains("skip("), "{text}");
    }

    #[test]
    fn with_renaming_is_eliminated() {
        // Rule ④-style WITH is folded away during construction, so both forms
        // produce literally identical expressions (up to variable numbering).
        let direct = build("MATCH (x) RETURN x.name");
        let via_with = build("MATCH (x) WITH x.name AS name RETURN name");
        assert_eq!(direct.expr.to_string(), via_with.expr.to_string());
    }

    #[test]
    fn with_distinct_introduces_group_squash() {
        let output = build("MATCH (p) WITH DISTINCT p.name AS name RETURN name");
        let text = output.expr.to_string();
        assert!(text.contains("‖"), "{text}");
    }

    #[test]
    fn unwind_constant_list_enumerates_elements() {
        let output =
            build("WITH [{c1: 0, c2: 1}, {c1: 2, c2: 3}] AS tmp UNWIND tmp AS row RETURN row.c1");
        let text = output.expr.to_string();
        assert!(text.contains("[e0.c1 = 0] × [e0.c2 = 1]"), "{text}");
        assert!(text.contains("[e0.c1 = 2] × [e0.c2 = 3]"), "{text}");
    }

    #[test]
    fn unwind_scalar_list() {
        let output = build("UNWIND [1, 2, 3] AS x RETURN x");
        let text = output.expr.to_string();
        assert!(text.contains("[e0 = 1]"), "{text}");
        assert!(text.contains("[e0 = 3]"), "{text}");
    }

    #[test]
    fn exists_subquery_becomes_squashed_sum() {
        let output = build("MATCH (n) WHERE EXISTS { MATCH (n)-[:KNOWS]->(m) RETURN m } RETURN n");
        let text = output.expr.to_string();
        assert!(text.contains("‖"), "{text}");
        assert!(text.contains("Lab(e2, KNOWS)"), "{text}");
    }

    #[test]
    fn with_limit_is_unsupported() {
        let err = build_err("MATCH (n) WITH n ORDER BY n.p1 LIMIT 1 MATCH (n)-[]->(m) RETURN m");
        assert_eq!(err.feature, Some(UnsupportedFeature::SortingTruncation));
    }

    #[test]
    fn nested_aggregates_are_unsupported() {
        let err = build_err("MATCH (n) RETURN SUM(n.a) / COUNT(n)");
        assert_eq!(err.feature, Some(UnsupportedFeature::NestedAggregate));
        let err = build_err("MATCH (n) RETURN COUNT(SUM(n.a))");
        assert_eq!(err.feature, Some(UnsupportedFeature::NestedAggregate));
    }

    #[test]
    fn union_arity_mismatch_is_an_error() {
        let err = build_err("MATCH (n) RETURN n UNION ALL MATCH (n) RETURN n, n.name");
        assert!(err.message.contains("columns"));
    }

    #[test]
    fn renamed_queries_produce_isomorphic_shapes() {
        // Structural check used heavily by the prover: renaming Cypher
        // variables must not change anything except entity variable numbers.
        let a = build("MATCH (person)-[r:READ]->(book) RETURN person.name");
        let b = build("MATCH (x)-[y:READ]->(z) RETURN x.name");
        assert_eq!(a.expr.to_string(), b.expr.to_string());
    }

    #[test]
    fn return_star_projects_all_bindings_alphabetically() {
        let output = build("MATCH (x)-[z]->()-[y]->() RETURN *");
        assert_eq!(output.columns, 3);
        assert_eq!(
            output.column_kinds,
            vec![ColumnKind::Node, ColumnKind::Relationship, ColumnKind::Relationship]
        );
    }
}
