//! Prover verdicts, proof statistics and failure categories.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use liastar::DecisionStats;
use property_graph::PropertyGraph;

/// The failure categories the paper's evaluation reports (§VII-B), extended
/// with the resource-limit and fault-isolation outcomes of this
/// implementation (deadline/budget trips, caught panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCategory {
    /// Inconsistent `ORDER BY ... LIMIT ... SKIP ...` fragments inside
    /// subqueries (limitation of the divide-and-conquer approach).
    SortingTruncation,
    /// Nested aggregates or aggregate computations
    /// (`COUNT(SUM(n))`, `SUM(n)/COUNT(n)`).
    NestedAggregate,
    /// Features modeled with uninterpreted functions
    /// (`COLLECT`, built-in functions, arbitrary-length paths).
    UninterpretedFunction,
    /// The input failed the syntax or semantic check (stage ①).
    InvalidQuery,
    /// The static analyzer (stage ⓪) found a definite type error in one of
    /// the queries (e.g. `UNWIND` over a scalar, a non-boolean `WHERE`
    /// predicate, arithmetic over graph entities).
    TypeError,
    /// The proof's deadline expired; `stage` is where the expiry was
    /// observed.
    Timeout {
        /// The stage whose cooperative checkpoint observed the expired
        /// deadline.
        stage: limits::Stage,
    },
    /// A configured resource budget ran out before a verdict was reached.
    BudgetExhausted {
        /// The stage whose counter crossed its budget.
        stage: limits::Stage,
        /// The configured budget that was exceeded.
        budget: u64,
    },
    /// The proof's run token was cancelled externally.
    Cancelled,
    /// The prover panicked while proving this pair; the panic was caught at
    /// the batch boundary and degraded to this verdict.
    Panicked,
    /// A certificate was requested with checking, but emission failed or the
    /// independent checker rejected the emitted artifact; the definite
    /// verdict was withdrawn rather than served without valid evidence.
    CertificateInvalid,
    /// Any other reason.
    Other,
}

impl FailureCategory {
    /// The stable machine-readable code of this category — the `error.code`
    /// field of the serving wire protocol (see `graphqe-serve` and
    /// SERVING.md). One code per variant, snake_case, never reworded: clients
    /// dispatch on these strings, so renaming one is a wire-protocol break.
    pub fn code(&self) -> &'static str {
        match self {
            FailureCategory::SortingTruncation => "sorting_truncation",
            FailureCategory::NestedAggregate => "nested_aggregate",
            FailureCategory::UninterpretedFunction => "uninterpreted_function",
            FailureCategory::InvalidQuery => "invalid_query",
            FailureCategory::TypeError => "type_error",
            FailureCategory::Timeout { .. } => "timeout",
            FailureCategory::BudgetExhausted { .. } => "budget_exhausted",
            FailureCategory::Cancelled => "cancelled",
            FailureCategory::Panicked => "panicked",
            FailureCategory::CertificateInvalid => "certificate_invalid",
            FailureCategory::Other => "other",
        }
    }

    /// The pipeline stage a trip-shaped category is attributed to (`None`
    /// for the paper's static categories).
    pub fn stage(&self) -> Option<limits::Stage> {
        match self {
            FailureCategory::Timeout { stage } => Some(*stage),
            FailureCategory::BudgetExhausted { stage, .. } => Some(*stage),
            _ => None,
        }
    }

    /// The exhausted budget of a [`FailureCategory::BudgetExhausted`]
    /// verdict (`None` otherwise).
    pub fn budget(&self) -> Option<u64> {
        match self {
            FailureCategory::BudgetExhausted { budget, .. } => Some(*budget),
            _ => None,
        }
    }

    /// The stable codes of every category, one per variant (trip-shaped
    /// variants with representative payloads). Used by the repo's lint test
    /// to check the serving documentation covers the whole taxonomy.
    pub fn all_codes() -> Vec<&'static str> {
        let representatives = [
            FailureCategory::SortingTruncation,
            FailureCategory::NestedAggregate,
            FailureCategory::UninterpretedFunction,
            FailureCategory::InvalidQuery,
            FailureCategory::TypeError,
            FailureCategory::Timeout { stage: limits::Stage::Search },
            FailureCategory::BudgetExhausted { stage: limits::Stage::Smt, budget: 0 },
            FailureCategory::Cancelled,
            FailureCategory::Panicked,
            FailureCategory::CertificateInvalid,
            FailureCategory::Other,
        ];
        representatives.iter().map(|category| category.code()).collect()
    }
}

impl fmt::Display for FailureCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCategory::SortingTruncation => f.write_str("sorting and truncation"),
            FailureCategory::NestedAggregate => f.write_str("nested aggregate"),
            FailureCategory::UninterpretedFunction => f.write_str("uninterpreted function"),
            FailureCategory::InvalidQuery => f.write_str("invalid query"),
            FailureCategory::TypeError => f.write_str("type error"),
            FailureCategory::Timeout { stage } => write!(f, "timeout at {stage}"),
            FailureCategory::BudgetExhausted { stage, .. } => {
                write!(f, "budget exhausted at {stage}")
            }
            FailureCategory::Cancelled => f.write_str("cancelled"),
            FailureCategory::Panicked => f.write_str("panicked"),
            FailureCategory::CertificateInvalid => f.write_str("certificate invalid"),
            FailureCategory::Other => f.write_str("other"),
        }
    }
}

impl From<limits::Trip> for FailureCategory {
    fn from(trip: limits::Trip) -> FailureCategory {
        match trip {
            limits::Trip::Timeout { stage } => FailureCategory::Timeout { stage },
            limits::Trip::BudgetExhausted { stage, budget } => {
                FailureCategory::BudgetExhausted { stage, budget }
            }
            limits::Trip::Cancelled => FailureCategory::Cancelled,
        }
    }
}

/// Wall-clock time spent in each pipeline stage of one proof. Recorded on
/// **every** exit path — including stage-① rejections and cache-hit fast
/// paths — so a latency report never has unexplained gaps; stages that were
/// never entered stay at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Stage ① — syntax/semantic check (through the parse cache).
    pub parse: Duration,
    /// Stage ⓪ — static analysis (type inference and output signatures;
    /// runs after parsing, the numbering mirrors the serving docs).
    pub analyze: Duration,
    /// Stage ② — rule-based normalization.
    pub normalize: Duration,
    /// Stage ③ — G-expression construction (all permutation retries).
    pub build: Duration,
    /// Stage ④ — the LIA★/SMT decision (all permutation retries).
    pub decide: Duration,
    /// The counterexample search over concrete graphs.
    pub search: Duration,
}

/// Statistics gathered while proving a pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProofStats {
    /// Wall-clock time of the whole pipeline.
    pub latency: Duration,
    /// Per-stage wall-clock breakdown of `latency`.
    pub stages: StageTimings,
    /// Whether the divide-and-conquer path for `ORDER BY ... LIMIT` inside
    /// subqueries was taken.
    pub used_divide_and_conquer: bool,
    /// Which return-element mapping succeeded (0 = identity).
    pub column_permutation: usize,
    /// Whether the proof came from the stage-⓪ typed decision retry
    /// (integer-sorted output columns). Hint-derived proofs carry no
    /// emittable certificate — the checker replays untyped builds only.
    pub used_type_hints: bool,
    /// Statistics of the final G-expression decision.
    pub decision: DecisionStats,
}

/// A concrete graph on which the two queries return different results.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The differing property graph. Shared (`Arc`) with the candidate pool
    /// it came from: certifying and replaying a witness hands out references
    /// into the pool instead of deep-copying the graph per certificate.
    pub graph: Arc<PropertyGraph>,
    /// Number of rows the first query returned.
    pub left_rows: usize,
    /// Number of rows the second query returned.
    pub right_rows: usize,
    /// Position of the witness in the deterministic candidate pool (seed
    /// graphs first, then random graphs). Benchmarks report the distribution
    /// so the pool ordering can be tuned towards early witnesses.
    pub pool_index: usize,
}

/// The outcome of proving a pair of Cypher queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The queries are semantically equivalent on every property graph.
    Equivalent(ProofStats),
    /// The queries are definitely not equivalent: a counterexample graph was
    /// found on which their results differ.
    NotEquivalent(Box<Counterexample>),
    /// Neither equivalence nor a counterexample could be established.
    Unknown {
        /// The failure category (mirrors §VII-B of the paper).
        category: FailureCategory,
        /// Human readable explanation.
        reason: String,
    },
}

impl Verdict {
    /// Returns `true` if the verdict proves equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent(_))
    }

    /// Returns `true` if the verdict certifies non-equivalence.
    pub fn is_not_equivalent(&self) -> bool {
        matches!(self, Verdict::NotEquivalent(_))
    }

    /// Returns `true` for an unknown verdict.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// The failure category of an unknown verdict (`None` for the two
    /// definite verdicts).
    pub fn failure_category(&self) -> Option<FailureCategory> {
        match self {
            Verdict::Unknown { category, .. } => Some(*category),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent(stats) => {
                write!(f, "EQUIVALENT (proved in {:?})", stats.latency)
            }
            Verdict::NotEquivalent(example) => write!(
                f,
                "NOT EQUIVALENT ({} vs {} rows on a {}-node counterexample graph)",
                example.left_rows,
                example.right_rows,
                example.graph.node_count()
            ),
            Verdict::Unknown { category, reason } => {
                write!(f, "UNKNOWN ({category}): {reason}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        let eq = Verdict::Equivalent(ProofStats::default());
        assert!(eq.is_equivalent());
        assert!(!eq.is_not_equivalent());
        let unknown =
            Verdict::Unknown { category: FailureCategory::Other, reason: "x".to_string() };
        assert!(unknown.is_unknown());
        assert!(format!("{unknown}").contains("UNKNOWN"));
    }

    #[test]
    fn failure_categories_display() {
        assert_eq!(FailureCategory::SortingTruncation.to_string(), "sorting and truncation");
        assert_eq!(FailureCategory::NestedAggregate.to_string(), "nested aggregate");
    }

    #[test]
    fn failure_category_codes_are_stable_and_carry_trip_details() {
        let all = [
            (FailureCategory::SortingTruncation, "sorting_truncation"),
            (FailureCategory::NestedAggregate, "nested_aggregate"),
            (FailureCategory::UninterpretedFunction, "uninterpreted_function"),
            (FailureCategory::InvalidQuery, "invalid_query"),
            (FailureCategory::TypeError, "type_error"),
            (FailureCategory::Timeout { stage: limits::Stage::Search }, "timeout"),
            (
                FailureCategory::BudgetExhausted { stage: limits::Stage::Smt, budget: 7 },
                "budget_exhausted",
            ),
            (FailureCategory::Cancelled, "cancelled"),
            (FailureCategory::Panicked, "panicked"),
            (FailureCategory::CertificateInvalid, "certificate_invalid"),
            (FailureCategory::Other, "other"),
        ];
        // The lint-facing enumeration covers exactly the same codes.
        assert_eq!(
            FailureCategory::all_codes(),
            all.iter().map(|(_, code)| *code).collect::<Vec<_>>()
        );
        for (category, code) in all {
            assert_eq!(category.code(), code);
        }
        let timeout = FailureCategory::Timeout { stage: limits::Stage::Search };
        assert_eq!(timeout.stage(), Some(limits::Stage::Search));
        assert_eq!(timeout.budget(), None);
        let budget = FailureCategory::BudgetExhausted { stage: limits::Stage::Smt, budget: 7 };
        assert_eq!(budget.stage(), Some(limits::Stage::Smt));
        assert_eq!(budget.budget(), Some(7));
        assert_eq!(FailureCategory::Other.stage(), None);
    }
}
