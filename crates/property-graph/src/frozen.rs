//! The frozen compiled-query artifact: an immutable, `Send + Sync` bundle of
//! a query, its interned name table, and its eagerly lowered plans.
//!
//! [`crate::plan::QueryPlan`] is deliberately thread-pinned: its
//! [`SymbolTable`] interns through `Rc<str>` and its [`PlanCache`] memoizes
//! through `RefCell`, which makes the per-candidate hot path cheap but means
//! a plan built on one thread cannot be handed to another. Before PR 8 the
//! counterexample search therefore kept one plan cache **per thread**, and
//! every serve worker re-lowered every query (warm `plan_hit_rate` 0.26 in
//! BENCH_pr7).
//!
//! [`FrozenPlan`] splits the artifact from the working state: it is built
//! **once** per query (eager lowering, no interior mutability — plain vectors
//! and `Arc`s only, compile-enforced `Send + Sync` below), shared across
//! threads via `Arc`, and each thread *thaws* it into a private
//! [`QueryPlan`] in microseconds: re-interning the name snapshot reproduces
//! the exact [`crate::expr::SymId`] assignment (ids are assigned in
//! first-intern order), and the lowered plans are seeded by `Arc` clone —
//! no clause is ever lowered twice process-wide.
//!
//! The plans key on AST node addresses inside the frozen plan's **own**
//! query clone, so evaluation must run against [`FrozenPlan::query`] (a
//! different parse of the same text would miss the seeds and re-lower —
//! safe, but the point of freezing is lost).

use std::sync::Arc;

use cypher_parser::ast::{Clause, MatchClause, Projection, ProjectionItems, Query};

use crate::expr::SymbolTable;
use crate::plan::{
    lower_match, lower_projection, CompiledMatch, CompiledProjection, PlanCache, QueryPlan,
};

/// An immutable, cross-thread compiled-query artifact. See the module docs.
#[derive(Debug)]
pub struct FrozenPlan {
    /// The owned query the plans were lowered from. Plan keys are AST node
    /// addresses inside this exact clone.
    query: Query,
    /// Every interned name in [`crate::expr::SymId`] order.
    names: Vec<Box<str>>,
    /// Lowered `MATCH` clauses, keyed by AST node address within `query`.
    matches: Vec<(usize, Arc<CompiledMatch>)>,
    /// Lowered explicit-item projections, keyed like `matches`.
    projections: Vec<(usize, Arc<CompiledProjection>)>,
}

// The whole point of freezing: the artifact crosses threads. A field that
// reintroduces `Rc`/`RefCell` fails compilation here, not in a consumer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenPlan>();
};

impl FrozenPlan {
    /// Builds the frozen artifact: clones `query`, interns every name, and
    /// eagerly lowers every `MATCH` clause and explicit-item projection.
    pub fn new(query: &Query) -> Self {
        let query = query.clone();
        let symbols = SymbolTable::for_query(&query);
        let mut matches = Vec::new();
        let mut projections = Vec::new();
        for part in &query.parts {
            for clause in &part.clauses {
                match clause {
                    Clause::Match(m) => {
                        let key = m as *const MatchClause as usize;
                        matches.push((key, Arc::new(lower_match(&symbols, m))));
                    }
                    Clause::Return(p) => {
                        if let Some(lowered) = lower_explicit(&symbols, p) {
                            projections.push(lowered);
                        }
                    }
                    Clause::With(w) => {
                        if let Some(lowered) = lower_explicit(&symbols, &w.projection) {
                            projections.push(lowered);
                        }
                    }
                    Clause::Unwind(_) => {}
                }
            }
        }
        // Snapshot *after* lowering, so every SymId baked into the compiled
        // plans is covered by the snapshot and reproduced by `thaw`.
        let names = symbols.snapshot_names();
        FrozenPlan { query, names, matches, projections }
    }

    /// The query instance the plans belong to: evaluate this one.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Thaws into a thread-private [`QueryPlan`]: re-interns the name
    /// snapshot (reproducing the frozen `SymId` assignment exactly) and
    /// seeds the plan cache with `Arc` clones of the lowered plans. Costs
    /// one hash insert per name and per plan — microseconds, against the
    /// milliseconds of a full lowering.
    pub fn thaw(&self) -> QueryPlan {
        let symbols = SymbolTable::from_names(&self.names);
        let plans = PlanCache::new();
        for (key, plan) in &self.matches {
            plans.seed_match(*key, Arc::clone(plan));
        }
        for (key, plan) in &self.projections {
            plans.seed_projection(*key, Arc::clone(plan));
        }
        QueryPlan::from_parts(symbols, plans)
    }

    /// Number of eagerly lowered plans (matches + projections).
    pub fn plan_count(&self) -> usize {
        self.matches.len() + self.projections.len()
    }
}

fn lower_explicit(
    symbols: &SymbolTable,
    projection: &Projection,
) -> Option<(usize, Arc<CompiledProjection>)> {
    match projection.items {
        // `RETURN *` stays dynamic — its column set depends on the rows.
        ProjectionItems::Star => None,
        ProjectionItems::Items(_) => {
            let key = projection as *const Projection as usize;
            Some((key, Arc::new(lower_projection(symbols, projection))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::graph::PropertyGraph;
    use cypher_parser::parse_query;

    #[test]
    fn frozen_plan_lowers_matches_and_projections_eagerly() {
        let query =
            parse_query("MATCH (a:Person)-[r:READ]->(b) WITH a.name AS name RETURN name").unwrap();
        let frozen = FrozenPlan::new(&query);
        // One MATCH, one WITH projection, one RETURN projection.
        assert_eq!(frozen.plan_count(), 3);
    }

    #[test]
    fn star_projections_stay_dynamic() {
        let query = parse_query("MATCH (a)-[r]->(b) RETURN *").unwrap();
        let frozen = FrozenPlan::new(&query);
        assert_eq!(frozen.plan_count(), 1);
    }

    #[test]
    fn thawed_plan_evaluates_identically_to_a_fresh_plan() {
        let graph = PropertyGraph::paper_example();
        for text in [
            "MATCH (n:Person) RETURN n.name",
            "MATCH (reader:Person)-[:READ]->(b:Book)<-[:WRITE]-(writer) RETURN writer.name",
            "MATCH (a {name: 'Alice'})-[r]->(b) RETURN b.title",
            "MATCH (x) WITH x.age AS age RETURN age ORDER BY age",
        ] {
            let query = parse_query(text).unwrap();
            let frozen = FrozenPlan::new(&query);
            let thawed = frozen.thaw();
            let fresh = QueryPlan::new(frozen.query());
            let via_thaw =
                Evaluator::new().evaluate_planned(&graph, frozen.query(), &thawed).unwrap();
            let via_fresh =
                Evaluator::new().evaluate_planned(&graph, frozen.query(), &fresh).unwrap();
            assert_eq!(via_thaw, via_fresh, "thawed plan diverged on {text}");
        }
    }

    #[test]
    fn thaw_reproduces_symbol_ids() {
        let query = parse_query("MATCH (a)-[r]->(b) RETURN a, b").unwrap();
        let frozen = FrozenPlan::new(&query);
        let original = SymbolTable::for_query(&query);
        let thawed = frozen.thaw();
        for name in ["a", "r", "b"] {
            assert_eq!(original.lookup(name), thawed.symbols().lookup(name), "id drift on {name}");
        }
    }

    #[test]
    fn frozen_plans_evaluate_from_multiple_threads() {
        let query =
            parse_query("MATCH (p:Person)-[:READ]->(b:Book) RETURN p.name, b.title").unwrap();
        let frozen = Arc::new(FrozenPlan::new(&query));
        let baseline = {
            let graph = PropertyGraph::paper_example();
            Evaluator::new().evaluate_planned(&graph, frozen.query(), &frozen.thaw()).unwrap()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let frozen = Arc::clone(&frozen);
                let expected = baseline.clone();
                std::thread::spawn(move || {
                    let graph = PropertyGraph::paper_example();
                    let plan = frozen.thaw();
                    let got =
                        Evaluator::new().evaluate_planned(&graph, frozen.query(), &plan).unwrap();
                    assert_eq!(got, expected);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    }
}
