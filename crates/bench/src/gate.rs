//! The CI bench-regression gate: compares the current benchmark report
//! against the committed previous report and fails on performance
//! regressions or — worse — verdict changes.
//!
//! Two families of checks:
//!
//! * **Verdict contract** (hard, hardware-independent): the
//!   `equivalent` / `not_equivalent` / `unknown` counts of both datasets
//!   must match the previous report exactly, and CyEqSet must stay at the
//!   paper's 138/148 proved pairs. Any drift means the prover changed
//!   behavior, which a perf PR must never do silently.
//! * **Performance contract**: the end-to-end time of the optimized pipeline
//!   must not regress by more than the configured tolerance (15% by
//!   default). Two views of "regressed" are computed per dataset:
//!
//!   1. **baseline-normalized** — each report's
//!      `arena_parallel_ms / baseline_tree_sequential_ms` ratio. Immune to
//!      uniformly faster/slower hardware (CI runners vs dev machines), but
//!      sensitive to *non-uniform* drift, because the tree baseline and the
//!      cached arena pipeline respond differently to machine state.
//!   2. **absolute** — raw `arena_parallel_ms`. Meaningful on comparable
//!      hardware, meaningless across machines.
//!
//!   A code regression in the optimized pipeline worsens **both** views;
//!   environment drift (frequency scaling, cache pressure, a slower runner)
//!   typically worsens only one. The default rule therefore fails a dataset
//!   only when *both* views regress beyond tolerance;
//!   [`GateConfig::strict`] requires each view to pass individually (for
//!   same-machine, same-session comparisons).
//!
//!   Known blind spot of the e2e pair on differing hardware: a regression in
//!   a stage *shared* by both pipelines (parsing, building, the
//!   counterexample search) inflates the arena and baseline times
//!   proportionally, which is indistinguishable from a uniformly slower
//!   machine. To cover the stages the perf PRs actually touch, the gate
//!   additionally enforces — individually, since it is doubly insulated from
//!   drift — the **decide-only normalized** view
//!   (`arena_decide_only_ms / baseline_decide_only_ms`), which excludes the
//!   shared counterexample search entirely. Shared-stage regressions on
//!   *identical* hardware are still caught by the absolute e2e view.

use crate::json::Json;

/// Tolerance and strictness knobs of the gate.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated end-to-end regression (0.15 = +15%).
    pub tolerance: f64,
    /// Require the normalized *and* the absolute check to pass individually
    /// instead of failing only when both regress. Only meaningful when both
    /// reports come from the same machine in comparable conditions.
    pub strict: bool,
    /// Additionally enforce the **search stage** (`--stage search`), with
    /// two families of checks:
    ///
    /// 1. the in-pipeline search time, derived as `arena_parallel_ms -
    ///    arena_decide_only_ms` from both reports (so any report in the
    ///    `BENCH_pr1.json`-descended schema supports it), compared under the
    ///    same two-view rule as end-to-end. With the search memo this is
    ///    mostly replay cost — cheap by design — so additionally:
    /// 2. the **memo-bypassed search machinery** (`search.sequential_ms`,
    ///    measured with the memo off), normalized by the same run's
    ///    scan-matcher oracle evaluation (`search.oracle_scan_ms`) so the
    ///    ratio is insulated from machine drift, combined with the absolute
    ///    memo-off time under the same two-view rule (the ratio alone flips
    ///    when only the normalizer changes speed) — this is what catches a
    ///    regression in the pools, the indexed evaluator, or the worker
    ///    scheduling that memo replay would hide. Skipped (with a note)
    ///    when the previous report predates these fields.
    pub stage_search: bool,
    /// Additionally enforce the **evaluator stage** (`--stage eval`): the
    /// flat-row evaluation time normalized by the same run's map-backed
    /// oracle evaluation (`eval.flat_indexed_ms / eval.map_indexed_ms`, and
    /// the same pair for the scan matcher), each combined with the absolute
    /// flat-row time under the two-view rule. This is what catches a
    /// regression in the row representation that the memoized end-to-end
    /// numbers would hide. Skipped (with a note) when the previous report
    /// predates the `eval` block.
    pub stage_eval: bool,
    /// Additionally enforce the **parse stage** (`--stage parse`): the warm
    /// (cache-hit) stage-① time normalized by the same run's cold
    /// (cache-bypassing) time (`parse.warm_ms / parse.cold_ms` — in-run
    /// ratio, drift-insulated), combined with the absolute warm time under
    /// the two-view rule. This is what catches a parse-cache regression
    /// that the memoized end-to-end numbers would hide. Skipped (with a
    /// note) when the previous report predates the `parse` block.
    pub stage_parse: bool,
    /// Additionally enforce the **normalize stage** (`--stage normalize`):
    /// the warm (cache-hit) stage-②+③ time normalized by the same run's
    /// cold (cache-cleared) time (`normalize.warm_ms / normalize.cold_ms`
    /// — in-run ratio, drift-insulated), combined with the absolute warm
    /// time under the two-view rule. This is what catches a
    /// normalize/build-cache regression that the memoized end-to-end
    /// numbers would hide. Skipped (with a note) when the previous report
    /// predates the `normalize` block (e.g. `BENCH_pr7.json`).
    pub stage_normalize: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance: 0.15,
            strict: false,
            stage_search: false,
            stage_eval: false,
            stage_parse: false,
            stage_normalize: false,
        }
    }
}

/// Floor applied to derived search-stage times before forming ratios: the
/// difference of two noisy measurements can reach zero (a fully memoized
/// search), where multiplicative tolerances stop meaning anything.
const SEARCH_FLOOR_MS: f64 = 0.25;

/// Floor for the *derived* search stage (e2e minus decide-only): unlike the
/// in-run normalized blocks above, this is a difference of two measurements
/// taken minutes apart from separately committed reports, so it inherits
/// additive noise from both sides plus cross-session machine drift. Observed
/// in practice: an unchanged binary re-run against its own committed report
/// moves this subtraction by ~0.4 ms while every in-run normalized check
/// holds. Below a millisecond the subtraction is noise, not signal — the
/// memo-off machinery check (drift-insulated by its in-run oracle) is the
/// real guard for the search stage at that scale.
const DERIVED_SEARCH_FLOOR_MS: f64 = 1.0;

/// The verdict counts CyEqSet / CyNeqSet must reproduce (Table III: 138 of
/// 148 CyEqSet pairs proved; every CyNeqSet rejection certified or unknown,
/// never wrongly proved).
pub const EXPECTED_VERDICTS: [(&str, u64, u64, u64); 2] =
    [("cyeqset", 138, 0, 10), ("cyneqset", 0, 121, 27)];

/// The outcome of one gate evaluation.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Human-readable results of every check that passed.
    pub passed: Vec<String>,
    /// Human-readable failures (empty = gate passes).
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// `true` when no check failed.
    pub fn is_pass(&self) -> bool {
        self.failures.is_empty()
    }
}

fn dataset_counts(report: &Json, dataset: &str) -> Result<(u64, u64, u64), String> {
    let counts = |field: &str| {
        report
            .get_path(&[dataset, field])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{dataset}.{field} missing from report"))
    };
    Ok((counts("equivalent")?, counts("not_equivalent")?, counts("unknown")?))
}

fn dataset_ms(report: &Json, dataset: &str, field: &str) -> Result<f64, String> {
    report
        .get_path(&[dataset, field])
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{dataset}.{field} missing from report"))
}

/// One view of the performance comparison: previous value, current value,
/// and whether the current value stayed within `previous * (1 + tolerance)`.
struct View {
    label: &'static str,
    previous: f64,
    current: f64,
    ok: bool,
}

fn view(label: &'static str, current: f64, previous: f64, tolerance: f64) -> View {
    View { label, previous, current, ok: current <= previous * (1.0 + tolerance) }
}

/// Evaluates the gate over a current and a previous report (both parsed from
/// the `BENCH_pr*.json` schema).
pub fn evaluate(current: &Json, previous: &Json, config: GateConfig) -> GateOutcome {
    let mut outcome = GateOutcome::default();

    for (dataset, expected_eq, expected_neq, expected_unknown) in EXPECTED_VERDICTS {
        // Verdicts against the absolute expectation...
        match dataset_counts(current, dataset) {
            Ok((eq, neq, unknown)) => {
                if (eq, neq, unknown) != (expected_eq, expected_neq, expected_unknown) {
                    outcome.failures.push(format!(
                        "{dataset}: verdict counts {eq}/{neq}/{unknown} differ from the required \
                         {expected_eq}/{expected_neq}/{expected_unknown} (eq/neq/unknown)"
                    ));
                } else {
                    outcome.passed.push(format!(
                        "{dataset}: verdicts {eq}/{neq}/{unknown} match the required split"
                    ));
                }
                // ... and against the previous report (any change is a
                // failure even if someone edits EXPECTED_VERDICTS).
                match dataset_counts(previous, dataset) {
                    Ok(previous_counts) if previous_counts != (eq, neq, unknown) => {
                        outcome.failures.push(format!(
                            "{dataset}: verdict counts changed from {}/{}/{} to {eq}/{neq}/{unknown}",
                            previous_counts.0, previous_counts.1, previous_counts.2
                        ));
                    }
                    Ok(_) => {}
                    Err(error) => outcome.failures.push(error),
                }
            }
            Err(error) => outcome.failures.push(error),
        }

        // Performance: gather both views, then apply the robust (or strict)
        // combination rule.
        let views = (|| -> Result<[View; 2], String> {
            let current_arena = dataset_ms(current, dataset, "arena_parallel_ms")?;
            let current_base = dataset_ms(current, dataset, "baseline_tree_sequential_ms")?;
            let previous_arena = dataset_ms(previous, dataset, "arena_parallel_ms")?;
            let previous_base = dataset_ms(previous, dataset, "baseline_tree_sequential_ms")?;
            if current_base <= 0.0 || previous_base <= 0.0 {
                return Err(format!("{dataset}: non-positive baseline time"));
            }
            Ok([
                view(
                    "baseline-normalized e2e",
                    current_arena / current_base,
                    previous_arena / previous_base,
                    config.tolerance,
                ),
                view("absolute e2e ms", current_arena, previous_arena, config.tolerance),
            ])
        })();
        // Decide-only normalized view: the stages the perf PRs optimize,
        // excluding the shared counterexample search, normalized by the
        // in-run tree baseline — drift-insulated on both axes, so it is
        // enforced individually.
        let decide_view = (|| -> Result<View, String> {
            let current_arena = dataset_ms(current, dataset, "arena_decide_only_ms")?;
            let current_base = dataset_ms(current, dataset, "baseline_decide_only_ms")?;
            let previous_arena = dataset_ms(previous, dataset, "arena_decide_only_ms")?;
            let previous_base = dataset_ms(previous, dataset, "baseline_decide_only_ms")?;
            if current_base <= 0.0 || previous_base <= 0.0 {
                return Err(format!("{dataset}: non-positive decide-only baseline time"));
            }
            Ok(view(
                "decide-only normalized",
                current_arena / current_base,
                previous_arena / previous_base,
                config.tolerance,
            ))
        })();
        match decide_view {
            Ok(v) => {
                let line = format!(
                    "{dataset}: {} {:.4} -> {:.4} (limit {:.4})",
                    v.label,
                    v.previous,
                    v.current,
                    v.previous * (1.0 + config.tolerance)
                );
                if v.ok {
                    outcome.passed.push(line);
                } else {
                    outcome.failures.push(format!("regression: {line}"));
                }
            }
            Err(error) => outcome.failures.push(error),
        }

        apply_two_view_rule(&mut outcome, dataset, "end-to-end", views, config);

        // Search-stage views (`--stage search`): derived from fields present
        // in every report schema since PR 1, so the previous report never
        // needs regenerating.
        if config.stage_search {
            let search_views = (|| -> Result<[View; 2], String> {
                let derive = |report: &Json| -> Result<(f64, f64), String> {
                    let e2e = dataset_ms(report, dataset, "arena_parallel_ms")?;
                    let decide = dataset_ms(report, dataset, "arena_decide_only_ms")?;
                    let base_e2e = dataset_ms(report, dataset, "baseline_tree_sequential_ms")?;
                    let base_decide = dataset_ms(report, dataset, "baseline_decide_only_ms")?;
                    Ok((
                        (e2e - decide).max(DERIVED_SEARCH_FLOOR_MS),
                        (base_e2e - base_decide).max(DERIVED_SEARCH_FLOOR_MS),
                    ))
                };
                let (current_search, current_base) = derive(current)?;
                let (previous_search, previous_base) = derive(previous)?;
                Ok([
                    view(
                        "search-stage normalized",
                        current_search / current_base,
                        previous_search / previous_base,
                        config.tolerance,
                    ),
                    view("search-stage ms", current_search, previous_search, config.tolerance),
                ])
            })();
            apply_two_view_rule(&mut outcome, dataset, "search-stage", search_views, config);

            // Memo-bypassed search machinery, normalized by the in-run scan
            // oracle (same machine, same session — drift-insulated). Only
            // when both reports carry the PR 3 search block.
            let machinery = |report: &Json| -> Option<(f64, f64)> {
                let sequential = report
                    .get_path(&[dataset, "search", "sequential_ms"])
                    .and_then(Json::as_f64)?;
                let scan = report
                    .get_path(&[dataset, "search", "oracle_scan_ms"])
                    .and_then(Json::as_f64)?;
                let sequential = sequential.max(SEARCH_FLOOR_MS);
                Some((sequential / scan.max(SEARCH_FLOOR_MS), sequential))
            };
            match (machinery(current), machinery(previous)) {
                (Some((current_ratio, current_ms)), Some((previous_ratio, previous_ms))) => {
                    // Two views under the shared drift rule: the in-run
                    // ratio can move when only the *normalizer* (the oracle
                    // evaluation) changes speed, so a genuine machinery
                    // regression is required to also show in the absolute
                    // memo-off time before the gate fails.
                    let views = Ok([
                        view(
                            "search-machinery normalized (memo off)",
                            current_ratio,
                            previous_ratio,
                            config.tolerance,
                        ),
                        view(
                            "search-machinery ms (memo off)",
                            current_ms,
                            previous_ms,
                            config.tolerance,
                        ),
                    ]);
                    apply_two_view_rule(&mut outcome, dataset, "search-machinery", views, config);
                }
                (_, None) => outcome.passed.push(format!(
                    "{dataset}: search-machinery check skipped (previous report predates the \
                     search block)"
                )),
                (None, Some(_)) => outcome.failures.push(format!(
                    "{dataset}: search.sequential_ms/oracle_scan_ms missing from the current \
                     report (previous has them — the search block must not be dropped)"
                )),
            }
        }

        // Evaluator-stage views (`--stage eval`): flat-row evaluation
        // normalized by the in-run map-backed oracle, for both matching
        // paths, each under the shared two-view rule (normalized ratio +
        // absolute flat-row time — the ratio alone flips when only the
        // map-backed normalizer drifts). Only when both reports carry the
        // PR 4 eval block.
        if config.stage_eval {
            let stage = |report: &Json, numerator: &str, denominator: &str| -> Option<(f64, f64)> {
                let numerator =
                    report.get_path(&[dataset, "eval", numerator]).and_then(Json::as_f64)?;
                let denominator =
                    report.get_path(&[dataset, "eval", denominator]).and_then(Json::as_f64)?;
                let numerator = numerator.max(SEARCH_FLOOR_MS);
                Some((numerator / denominator.max(SEARCH_FLOOR_MS), numerator))
            };
            for (what, ratio_label, ms_label, numerator, denominator) in [
                (
                    "eval-stage (indexed)",
                    "eval normalized (flat/map, indexed)",
                    "eval flat indexed ms",
                    "flat_indexed_ms",
                    "map_indexed_ms",
                ),
                (
                    "eval-stage (scan)",
                    "eval normalized (flat/map, scan)",
                    "eval flat scan ms",
                    "flat_scan_ms",
                    "map_scan_ms",
                ),
            ] {
                match (
                    stage(current, numerator, denominator),
                    stage(previous, numerator, denominator),
                ) {
                    (Some((current_ratio, current_ms)), Some((previous_ratio, previous_ms))) => {
                        let views = Ok([
                            view(ratio_label, current_ratio, previous_ratio, config.tolerance),
                            view(ms_label, current_ms, previous_ms, config.tolerance),
                        ]);
                        apply_two_view_rule(&mut outcome, dataset, what, views, config);
                    }
                    (_, None) => outcome.passed.push(format!(
                        "{dataset}: {what} check skipped (previous report predates the eval \
                         block)"
                    )),
                    (None, Some(_)) => outcome.failures.push(format!(
                        "{dataset}: eval.{numerator}/{denominator} missing from the current \
                         report (previous has them — the eval block must not be dropped)"
                    )),
                }
            }
        }

        // Parse-stage views (`--stage parse`): warm (cache-hit) stage-①
        // time normalized by the in-run cold time, plus the absolute warm
        // time, under the shared two-view rule. Only when both reports
        // carry the PR 5 parse block.
        if config.stage_parse {
            let stage = |report: &Json| -> Option<(f64, f64)> {
                let warm =
                    report.get_path(&[dataset, "parse", "warm_ms"]).and_then(Json::as_f64)?;
                let cold =
                    report.get_path(&[dataset, "parse", "cold_ms"]).and_then(Json::as_f64)?;
                let warm = warm.max(SEARCH_FLOOR_MS);
                Some((warm / cold.max(SEARCH_FLOOR_MS), warm))
            };
            match (stage(current), stage(previous)) {
                (Some((current_ratio, current_ms)), Some((previous_ratio, previous_ms))) => {
                    let views = Ok([
                        view(
                            "parse normalized (warm/cold)",
                            current_ratio,
                            previous_ratio,
                            config.tolerance,
                        ),
                        view("parse warm ms", current_ms, previous_ms, config.tolerance),
                    ]);
                    apply_two_view_rule(&mut outcome, dataset, "parse-stage", views, config);
                }
                (_, None) => outcome.passed.push(format!(
                    "{dataset}: parse-stage check skipped (previous report predates the parse \
                     block)"
                )),
                (None, Some(_)) => outcome.failures.push(format!(
                    "{dataset}: parse.warm_ms/cold_ms missing from the current report \
                     (previous has them — the parse block must not be dropped)"
                )),
            }
        }

        // Normalize-stage views (`--stage normalize`): warm (cache-hit)
        // stage-②+③ time normalized by the in-run cold (cache-cleared)
        // time, plus the absolute warm time, under the shared two-view
        // rule. Only when both reports carry the PR 8 normalize block.
        if config.stage_normalize {
            let stage = |report: &Json| -> Option<(f64, f64)> {
                let warm =
                    report.get_path(&[dataset, "normalize", "warm_ms"]).and_then(Json::as_f64)?;
                let cold =
                    report.get_path(&[dataset, "normalize", "cold_ms"]).and_then(Json::as_f64)?;
                let warm = warm.max(SEARCH_FLOOR_MS);
                Some((warm / cold.max(SEARCH_FLOOR_MS), warm))
            };
            match (stage(current), stage(previous)) {
                (Some((current_ratio, current_ms)), Some((previous_ratio, previous_ms))) => {
                    let views = Ok([
                        view(
                            "normalize normalized (warm/cold)",
                            current_ratio,
                            previous_ratio,
                            config.tolerance,
                        ),
                        view("normalize warm ms", current_ms, previous_ms, config.tolerance),
                    ]);
                    apply_two_view_rule(&mut outcome, dataset, "normalize-stage", views, config);
                }
                (_, None) => outcome.passed.push(format!(
                    "{dataset}: normalize-stage check skipped (previous report predates the \
                     normalize block)"
                )),
                (None, Some(_)) => outcome.failures.push(format!(
                    "{dataset}: normalize.warm_ms/cold_ms missing from the current report \
                     (previous has them — the normalize block must not be dropped)"
                )),
            }
        }
    }

    outcome
}

/// The drift-robust combination rule shared by the end-to-end and
/// search-stage comparisons: fail only when **both** views (normalized and
/// absolute) regress beyond tolerance — a genuine code regression moves
/// both, environment drift moves one. `strict` requires each view to pass
/// individually.
fn apply_two_view_rule(
    outcome: &mut GateOutcome,
    dataset: &str,
    what: &str,
    views: Result<[View; 2], String>,
    config: GateConfig,
) {
    match views {
        Ok(views) => {
            let failed: Vec<&View> = views.iter().filter(|v| !v.ok).collect();
            let regressed =
                if config.strict { !failed.is_empty() } else { failed.len() == views.len() };
            let describe = |v: &View| format!("{} {:.4} -> {:.4}", v.label, v.previous, v.current);
            if regressed {
                outcome.failures.push(format!(
                    "{dataset}: {what} regression beyond {:.0}% tolerance ({})",
                    config.tolerance * 100.0,
                    failed.iter().map(|v| describe(v)).collect::<Vec<_>>().join("; "),
                ));
            } else {
                let summary = views.iter().map(describe).collect::<Vec<_>>().join("; ");
                let note = if failed.is_empty() {
                    String::new()
                } else {
                    format!(
                        " ({} drifted, attributed to environment since the other view held)",
                        failed.iter().map(|v| v.label).collect::<Vec<_>>().join(", ")
                    )
                };
                outcome
                    .passed
                    .push(format!("{dataset}: {what} within tolerance — {summary}{note}"));
            }
        }
        Err(error) => outcome.failures.push(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal report. Decide-only fields are synthesized with a constant
    /// 0.2 arena/baseline ratio, so the individually-enforced decide-only
    /// check is neutral in tests that exercise the e2e rules.
    fn report(eq_ms: f64, eq_base: f64, neq_ms: f64, neq_base: f64) -> Json {
        let (eq_dbase, neq_dbase) = (eq_base * 0.9, neq_base * 0.9);
        let (eq_darena, neq_darena) = (eq_dbase * 0.2, neq_dbase * 0.2);
        let text = format!(
            r#"{{
              "cyeqset": {{
                "baseline_tree_sequential_ms": {eq_base},
                "arena_parallel_ms": {eq_ms},
                "baseline_decide_only_ms": {eq_dbase},
                "arena_decide_only_ms": {eq_darena},
                "equivalent": 138, "not_equivalent": 0, "unknown": 10
              }},
              "cyneqset": {{
                "baseline_tree_sequential_ms": {neq_base},
                "arena_parallel_ms": {neq_ms},
                "baseline_decide_only_ms": {neq_dbase},
                "arena_decide_only_ms": {neq_darena},
                "equivalent": 0, "not_equivalent": 121, "unknown": 27
              }}
            }}"#
        );
        Json::parse(&text).unwrap()
    }

    #[test]
    fn equal_reports_pass() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        let current = report(10.0, 50.0, 20.0, 80.0);
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
    }

    #[test]
    fn uniformly_slower_hardware_passes() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        // Everything 3x slower (a weaker CI machine): the normalized view
        // holds, so the absolute drift is attributed to the environment.
        let current = report(30.0, 150.0, 60.0, 240.0);
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // The same run fails under --strict.
        let strict =
            evaluate(&current, &previous, GateConfig { strict: true, ..GateConfig::default() });
        assert!(!strict.is_pass());
    }

    #[test]
    fn baseline_only_drift_passes() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        // The arena time improved but the in-run tree baseline measured much
        // faster this session, so the ratio view regressed: environment, not
        // code — the absolute view holds.
        let current = report(9.5, 32.0, 19.0, 80.0);
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
    }

    #[test]
    fn a_real_regression_fails() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        // The optimized pipeline got 40% slower with an unchanged baseline:
        // both views regress.
        let current = report(14.0, 50.0, 20.0, 80.0);
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("regression")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn a_decide_only_regression_fails_even_when_e2e_holds() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        // Same e2e numbers, but the decide-only stage (the code perf PRs
        // touch) got 50% slower relative to its baseline — the decide-only
        // view is enforced individually and must trip.
        let text = r#"{
          "cyeqset": {
            "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
            "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 13.5,
            "equivalent": 138, "not_equivalent": 0, "unknown": 10
          },
          "cyneqset": {
            "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
            "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
            "equivalent": 0, "not_equivalent": 121, "unknown": 27
          }
        }"#;
        let current = Json::parse(text).unwrap();
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("decide-only")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn a_small_fluctuation_passes() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        let current = report(11.0, 50.0, 20.0, 80.0); // +10% < 15% tolerance
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
    }

    #[test]
    fn verdict_changes_fail_regardless_of_speed() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        let mut text = r#"{
          "cyeqset": {
            "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 5.0,
            "equivalent": 137, "not_equivalent": 0, "unknown": 11
          },
          "cyneqset": {
            "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 10.0,
            "equivalent": 0, "not_equivalent": 121, "unknown": 27
          }
        }"#
        .to_string();
        let current = Json::parse(&text).unwrap();
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(!outcome.is_pass());
        assert!(outcome.failures.iter().any(|f| f.contains("137")), "{outcome:?}");
        // A wrongly-proved CyNeqSet pair is also caught.
        text = text.replace(
            "\"equivalent\": 0, \"not_equivalent\": 121",
            "\"equivalent\": 1, \"not_equivalent\": 120",
        );
        let current = Json::parse(&text).unwrap();
        assert!(!evaluate(&current, &previous, GateConfig::default()).is_pass());
    }

    #[test]
    fn search_stage_view_is_opt_in_and_catches_search_regressions() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        // e2e grew within tolerance, decide-only improved — so the entire
        // growth sits in the search stage, which roughly doubled.
        // (report(): decide-only arena = base*0.9*0.2, so cyeqset search was
        // 10 - 9 = 1.0 ms and is now 11.0 - 7.2 = 3.8 ms.)
        let text = r#"{
          "cyeqset": {
            "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 11.0,
            "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 7.2,
            "equivalent": 138, "not_equivalent": 0, "unknown": 10
          },
          "cyneqset": {
            "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 22.0,
            "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
            "equivalent": 0, "not_equivalent": 121, "unknown": 27
          }
        }"#;
        let current = Json::parse(text).unwrap();
        // Without --stage search the growth passes (within e2e tolerance).
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // With it, the search-stage regression is enforced.
        let config = GateConfig { stage_search: true, ..GateConfig::default() };
        let outcome = evaluate(&current, &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("search-stage")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn search_machinery_view_catches_memo_hidden_regressions() {
        // Identical e2e/decide numbers (so the derived replay view passes),
        // but the memo-bypassed machinery measurement tripled relative to
        // the in-run scan oracle: exactly the regression the memo hides.
        let with_block = |sequential: f64| {
            let text = format!(
                r#"{{
                  "cyeqset": {{
                    "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
                    "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 9.0,
                    "equivalent": 138, "not_equivalent": 0, "unknown": 10,
                    "search": {{"sequential_ms": {sequential}, "oracle_scan_ms": 2.0}}
                  }},
                  "cyneqset": {{
                    "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
                    "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
                    "equivalent": 0, "not_equivalent": 121, "unknown": 27,
                    "search": {{"sequential_ms": {sequential}, "oracle_scan_ms": 2.0}}
                  }}
                }}"#
            );
            Json::parse(&text).unwrap()
        };
        let previous = with_block(4.0);
        let config = GateConfig { stage_search: true, ..GateConfig::default() };
        // Same machinery cost: passes.
        let outcome = evaluate(&with_block(4.0), &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // Tripled machinery cost with unchanged e2e: the individually
        // enforced memo-off view must trip.
        let outcome = evaluate(&with_block(12.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("search-machinery")),
            "{:?}",
            outcome.failures
        );
        // Without --stage search the same regression passes silently.
        let outcome = evaluate(&with_block(12.0), &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // A faster oracle normalizer with unchanged machinery inflates the
        // ratio only — the absolute view holds, so the two-view rule
        // attributes it to the oracle speedup, not a machinery regression.
        let faster_oracle = |sequential: f64, scan: f64| {
            let text = format!(
                r#"{{
                  "cyeqset": {{
                    "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
                    "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 9.0,
                    "equivalent": 138, "not_equivalent": 0, "unknown": 10,
                    "search": {{"sequential_ms": {sequential}, "oracle_scan_ms": {scan}}}
                  }},
                  "cyneqset": {{
                    "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
                    "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
                    "equivalent": 0, "not_equivalent": 121, "unknown": 27,
                    "search": {{"sequential_ms": {sequential}, "oracle_scan_ms": {scan}}}
                  }}
                }}"#
            );
            Json::parse(&text).unwrap()
        };
        let outcome = evaluate(&faster_oracle(4.0, 1.0), &faster_oracle(4.0, 2.0), config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // A current report that drops the search block is rejected.
        let dropped = report(10.0, 50.0, 20.0, 80.0);
        let outcome = evaluate(&dropped, &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("must not be dropped")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn eval_stage_view_catches_row_representation_regressions() {
        // Identical e2e/decide numbers, but the flat-row evaluation slowed
        // from 0.5x to 1.5x of the in-run map-backed oracle: exactly the
        // regression the memoized end-to-end numbers hide.
        let with_eval = |flat_indexed: f64, flat_scan: f64| {
            let text = format!(
                r#"{{
                  "cyeqset": {{
                    "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
                    "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 9.0,
                    "equivalent": 138, "not_equivalent": 0, "unknown": 10,
                    "eval": {{"flat_indexed_ms": {flat_indexed}, "flat_scan_ms": {flat_scan},
                             "map_indexed_ms": 4.0, "map_scan_ms": 8.0}}
                  }},
                  "cyneqset": {{
                    "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
                    "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
                    "equivalent": 0, "not_equivalent": 121, "unknown": 27,
                    "eval": {{"flat_indexed_ms": {flat_indexed}, "flat_scan_ms": {flat_scan},
                             "map_indexed_ms": 4.0, "map_scan_ms": 8.0}}
                  }}
                }}"#
            );
            Json::parse(&text).unwrap()
        };
        let previous = with_eval(2.0, 4.0);
        let config = GateConfig { stage_eval: true, ..GateConfig::default() };
        // Same ratios: passes.
        let outcome = evaluate(&with_eval(2.0, 4.0), &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // Tripled indexed ratio with unchanged e2e: the individually
        // enforced eval view must trip.
        let outcome = evaluate(&with_eval(6.0, 4.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("eval-stage") && f.contains("indexed")),
            "{:?}",
            outcome.failures
        );
        // A scan-only regression trips its own view.
        let outcome = evaluate(&with_eval(2.0, 12.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("eval-stage") && f.contains("scan")),
            "{:?}",
            outcome.failures
        );
        // Without --stage eval the same regression passes silently.
        let outcome = evaluate(&with_eval(6.0, 12.0), &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // A previous report without the block (e.g. BENCH_pr3.json) skips
        // the check instead of failing.
        let outcome = evaluate(&with_eval(2.0, 4.0), &report(10.0, 50.0, 20.0, 80.0), config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        assert!(outcome.passed.iter().any(|line| line.contains("skipped")));
        // A current report that drops the block is rejected.
        let outcome = evaluate(&report(10.0, 50.0, 20.0, 80.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("must not be dropped")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn parse_stage_view_catches_parse_cache_regressions() {
        // Identical e2e/decide numbers, but the warm (cache-hit) parse time
        // grew from near-zero to a large fraction of the cold time: exactly
        // the regression the memoized end-to-end numbers hide.
        let with_parse = |warm: f64| {
            let text = format!(
                r#"{{
                  "cyeqset": {{
                    "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
                    "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 9.0,
                    "equivalent": 138, "not_equivalent": 0, "unknown": 10,
                    "parse": {{"cold_ms": 3.0, "warm_ms": {warm}}}
                  }},
                  "cyneqset": {{
                    "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
                    "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
                    "equivalent": 0, "not_equivalent": 121, "unknown": 27,
                    "parse": {{"cold_ms": 3.0, "warm_ms": {warm}}}
                  }}
                }}"#
            );
            Json::parse(&text).unwrap()
        };
        let previous = with_parse(0.1);
        let config = GateConfig { stage_parse: true, ..GateConfig::default() };
        // Same warm cost: passes (both views at the floor).
        let outcome = evaluate(&with_parse(0.1), &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // Warm parse grew to 2.5 ms with unchanged e2e: both the in-run
        // ratio and the absolute warm time regress, so the gate trips.
        let outcome = evaluate(&with_parse(2.5), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("parse-stage")),
            "{:?}",
            outcome.failures
        );
        // Without --stage parse the same regression passes silently.
        let outcome = evaluate(&with_parse(2.5), &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // A previous report without the block (e.g. BENCH_pr4.json) skips
        // the check instead of failing.
        let outcome = evaluate(&with_parse(0.1), &report(10.0, 50.0, 20.0, 80.0), config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        assert!(outcome.passed.iter().any(|line| line.contains("skipped")));
        // A current report that drops the block is rejected.
        let outcome = evaluate(&report(10.0, 50.0, 20.0, 80.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("must not be dropped")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn normalize_stage_view_catches_normalize_cache_regressions() {
        // Identical e2e/decide numbers, but the warm (cache-hit)
        // normalize+build time grew from near-zero back to a large fraction
        // of the cold time: exactly the regression the memoized end-to-end
        // numbers hide.
        let with_normalize = |warm: f64| {
            let text = format!(
                r#"{{
                  "cyeqset": {{
                    "baseline_tree_sequential_ms": 50.0, "arena_parallel_ms": 10.0,
                    "baseline_decide_only_ms": 45.0, "arena_decide_only_ms": 9.0,
                    "equivalent": 138, "not_equivalent": 0, "unknown": 10,
                    "normalize": {{"cold_ms": 4.0, "warm_ms": {warm}}}
                  }},
                  "cyneqset": {{
                    "baseline_tree_sequential_ms": 80.0, "arena_parallel_ms": 20.0,
                    "baseline_decide_only_ms": 72.0, "arena_decide_only_ms": 14.4,
                    "equivalent": 0, "not_equivalent": 121, "unknown": 27,
                    "normalize": {{"cold_ms": 4.0, "warm_ms": {warm}}}
                  }}
                }}"#
            );
            Json::parse(&text).unwrap()
        };
        let previous = with_normalize(0.1);
        let config = GateConfig { stage_normalize: true, ..GateConfig::default() };
        // Same warm cost: passes (both views at the floor).
        let outcome = evaluate(&with_normalize(0.1), &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // Warm normalize+build grew to 3 ms with unchanged e2e: both the
        // in-run ratio and the absolute warm time regress, so the gate trips.
        let outcome = evaluate(&with_normalize(3.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("normalize-stage")),
            "{:?}",
            outcome.failures
        );
        // Without --stage normalize the same regression passes silently.
        let outcome = evaluate(&with_normalize(3.0), &previous, GateConfig::default());
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        // A previous report without the block (e.g. BENCH_pr7.json) skips
        // the check instead of failing.
        let outcome = evaluate(&with_normalize(0.1), &report(10.0, 50.0, 20.0, 80.0), config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
        assert!(outcome.passed.iter().any(|line| line.contains("skipped")));
        // A current report that drops the block is rejected.
        let outcome = evaluate(&report(10.0, 50.0, 20.0, 80.0), &previous, config);
        assert!(!outcome.is_pass());
        assert!(
            outcome.failures.iter().any(|f| f.contains("must not be dropped")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn sub_millisecond_derived_search_drift_is_floored_away() {
        // The derived search stage moves 0.6 ms -> 0.9 ms — the magnitude an
        // unchanged binary shows against its own committed report. Both
        // values sit below DERIVED_SEARCH_FLOOR_MS, so the floored views
        // compare equal and the gate must not fail.
        let previous = report(9.6, 50.0, 15.0, 80.0); // cyeqset search = 0.6
        let current = report(9.9, 50.0, 15.3, 80.0); // cyeqset search = 0.9
        let config = GateConfig { stage_search: true, ..GateConfig::default() };
        let outcome = evaluate(&current, &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
    }

    #[test]
    fn fully_memoized_search_passes_the_search_view() {
        // Both reports have search stages at (or below) the floor: ratios of
        // floored values are 1.0 and must pass.
        let previous = report(9.0, 50.0, 14.4, 80.0); // search = 0 after flooring
        let current = report(9.0, 50.0, 14.4, 80.0);
        let config = GateConfig { stage_search: true, ..GateConfig::default() };
        let outcome = evaluate(&current, &previous, config);
        assert!(outcome.is_pass(), "{:?}", outcome.failures);
    }

    #[test]
    fn missing_fields_fail_loudly() {
        let previous = report(10.0, 50.0, 20.0, 80.0);
        let current = Json::parse("{}").unwrap();
        let outcome = evaluate(&current, &previous, GateConfig::default());
        assert!(!outcome.is_pass());
    }
}
