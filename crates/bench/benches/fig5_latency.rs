//! Benchmark backing Fig. 5: latency of the cheapest and the most expensive
//! pipeline paths (structural proof vs. divide-and-conquer).

use graphqe::GraphQE;
use graphqe_bench::microbench::bench;

fn main() {
    let prover = GraphQE::new();
    println!("fig5/latency");
    bench("fast_structural_pair", 10, || {
        std::hint::black_box(prover.prove(
            "MATCH (person)-[x:READ]->(book:Book) RETURN person.name",
            "MATCH (n1)-[r1:READ]->(n2:Book) RETURN n1.name",
        ));
    });
    bench("divide_and_conquer_pair", 10, || {
        std::hint::black_box(prover.prove(
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
            "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
        ));
    });
}
