//! PR 6 robustness benchmark: the deadline/budget limits layer measured
//! over the full CyEqSet and CyNeqSet datasets, on top of the PR 5
//! compiled-plan pipeline.
//!
//! Writes `BENCH_pr6.json` in the `BENCH_pr5.json` schema — so `bench_gate
//! --previous BENCH_pr5.json` can compare reports field by field — extended
//! with:
//!
//! * a **limits block** per dataset: the warm end-to-end time with limits
//!   off (no run token installed — the default) vs limits *on* with
//!   generous budgets (a one-hour deadline plus effectively unbounded step
//!   budgets, so every cooperative checkpoint executes but never trips).
//!   The ratio is the real cost of threading cancellation through the
//!   pipeline's hot loops; the PR 6 acceptance target is < 5% overhead.
//!   Verdicts of the two configurations are asserted identical;
//! * an **unknown_reasons block** per dataset: the failure taxonomy of
//!   every `UNKNOWN` verdict (`other`, `timeout at <stage>`, `budget
//!   exhausted at <stage>`, `panicked`, ...), so a report immediately shows
//!   whether any unknowns were caused by trips instead of genuine
//!   incompleteness. With limits off the counts must match the paper-style
//!   categories of PR 5 exactly.
//!
//! The baseline prover bypasses the parse cache (like it bypasses the
//! search memo), so it keeps paying the real stage-① cost every sample.
//! Exits non-zero if any pipeline ever disagrees on a verdict.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cyeqset::{cyeqset, cyneqset, QueryPair};
use cypher_normalizer::normalize_query;
use cypher_parser::parse_and_check;
use graphqe::counterexample::{find_counterexample, find_counterexample_parallel};
use graphqe::{CacheStats, GraphQE, ProveLimits, SearchConfig, Verdict};
use graphqe_bench::{run_pairs_report, table3_rows, PairResult};
use liastar::{check_equivalence_with_opts, DecideOptions};
use property_graph::{
    evaluate_query, evaluate_query_scan, Evaluator, GraphGenerator, PropertyGraph,
};

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1000.0
}

/// Minimum wall-clock of three samples of `measured` — the same
/// least-contaminated-estimate rationale as `interleaved_mins`, applied to
/// the parse-stage measurements the gate enforces across reports.
fn min_of_samples(mut measured: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            measured();
            ms(start.elapsed())
        })
        .fold(f64::INFINITY, f64::min)
}

/// Rounds of the interleaved measurements below.
const SAMPLE_ROUNDS: usize = 9;

/// Round-robin minima: one sample of every measurement per round, minimum
/// per measurement across rounds. The gate enforces *ratios* of these
/// numbers across reports, and sampling the two sides of a ratio in
/// separate back-to-back blocks lets a single machine-noise burst
/// contaminate one whole block (every sample of one side, none of the
/// other) and flip the ratio. Interleaving puts adjacent samples of both
/// sides under the same burst, and the per-measurement minimum then
/// pierces it — the same rationale as the limits off/on interleave in
/// `run_dataset`.
fn interleaved_mins<const N: usize>(mut measured: [&mut dyn FnMut(); N]) -> [f64; N] {
    let mut mins = [f64::INFINITY; N];
    for _ in 0..SAMPLE_ROUNDS {
        for (slot, measure) in mins.iter_mut().zip(measured.iter_mut()) {
            let start = Instant::now();
            measure();
            *slot = slot.min(ms(start.elapsed()));
        }
    }
    mins
}

/// Times each pipeline stage separately over the dataset (sequentially, so
/// per-stage numbers are comparable across runs and against the committed
/// `BENCH_pr2.json`).
fn stage_breakdown(pairs: &[QueryPair]) -> Vec<(&'static str, f64)> {
    let mut parse = Duration::ZERO;
    let mut rules = Duration::ZERO;
    let mut build = Duration::ZERO;
    let mut decide_tree = Duration::ZERO;
    let mut decide_arena = Duration::ZERO;
    for pair in pairs {
        let start = Instant::now();
        let parsed1 = parse_and_check(&pair.left);
        let parsed2 = parse_and_check(&pair.right);
        parse += start.elapsed();
        let (Ok(q1), Ok(q2)) = (parsed1, parsed2) else { continue };

        let start = Instant::now();
        let n1 = normalize_query(&q1);
        let n2 = normalize_query(&q2);
        rules += start.elapsed();

        let start = Instant::now();
        let built1 = gexpr::build_query(&n1);
        let built2 = gexpr::build_query(&n2);
        build += start.elapsed();
        let (Ok(b1), Ok(b2)) = (built1, built2) else { continue };

        let start = Instant::now();
        let tree = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: true },
        );
        decide_tree += start.elapsed();

        let start = Instant::now();
        let arena = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: false },
        );
        decide_arena += start.elapsed();
        assert_eq!(tree.0, arena.0, "decide mismatch on {} vs {}", pair.left, pair.right);
    }
    vec![
        ("parse_check", ms(parse)),
        ("rule_normalize", ms(rules)),
        ("gexpr_build", ms(build)),
        ("decide_tree", ms(decide_tree)),
        ("decide_arena", ms(decide_arena)),
    ]
}

/// Search-stage measurements over the pairs the prover actually searches
/// (those whose verdict is not EQUIVALENT), plus the scan-vs-indexed oracle
/// evaluation micro-comparison over a fixed graph set.
struct SearchStage {
    /// Sequential (lazy) search over all searched pairs, warm pools.
    sequential_ms: f64,
    /// Parallel search over the same pairs (identical on a 1-core machine).
    parallel_ms: f64,
    /// Evaluating every pair's two queries over the fixed graph set with the
    /// linear-scan matcher.
    oracle_scan_ms: f64,
    /// The same evaluations through the adjacency index.
    oracle_indexed_ms: f64,
    /// Pool index of every witness discovered by the main run, in pair
    /// order. The distribution shows how early the pool separates pairs.
    witness_indices: Vec<usize>,
    /// Search-result memo hits/misses over the optimized timed runs.
    memo_hits: u64,
    memo_misses: u64,
}

/// The fixed oracle workload shared by the search- and eval-stage
/// measurements: one graph pool and one parsed copy of every dataset pair,
/// built once per dataset run.
struct OracleWorkload {
    graphs: Vec<PropertyGraph>,
    parsed: Vec<(cypher_parser::ast::Query, cypher_parser::ast::Query)>,
}

impl OracleWorkload {
    fn new(pairs: &[QueryPair]) -> Self {
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::new(0xBEEF).generate_many(16));
        let parsed = pairs
            .iter()
            .filter_map(|pair| {
                Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
            })
            .collect();
        OracleWorkload { graphs, parsed }
    }
}

fn search_stage(
    pairs: &[QueryPair],
    results: &[PairResult],
    workload: &OracleWorkload,
    threads: usize,
) -> SearchStage {
    let witness_indices: Vec<usize> = results
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::NotEquivalent(example) => Some(example.pool_index),
            _ => None,
        })
        .collect();

    // The searched pairs: everything the decision stage could not prove.
    let searched: Vec<(_, _)> = pairs
        .iter()
        .zip(results)
        .filter(|(_, r)| !r.verdict.is_equivalent())
        .filter_map(|(pair, _)| {
            Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
        })
        .collect();
    // Memo bypassed: these timings must measure the search machinery itself
    // (pool iteration, evaluation, worker scheduling), not memo replay.
    // Pools stay shared/warm, which is what both variants see in steady
    // state. The four measurements are sampled interleaved because the gate
    // enforces the sequential/scan ratio across reports — see
    // `interleaved_mins`. Scan-vs-indexed oracle evaluation runs over the
    // shared fixed workload: the evaluator is what the search spends its
    // time in, so it isolates the adjacency index's contribution from pool
    // caching and early exits.
    let config = SearchConfig { use_memo: false, ..SearchConfig::default() };

    let mut sequential = || {
        for (q1, q2) in &searched {
            let _ = find_counterexample(q1, q2, &config);
        }
    };
    let mut parallel = || {
        for (q1, q2) in &searched {
            let _ = find_counterexample_parallel(q1, q2, &config, threads.max(2));
        }
    };
    let mut oracle_scan = || {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query_scan(graph, q1);
                let _ = evaluate_query_scan(graph, q2);
            }
        }
    };
    let mut oracle_indexed = || {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query(graph, q1);
                let _ = evaluate_query(graph, q2);
            }
        }
    };
    let [sequential_ms, parallel_ms, oracle_scan_ms, oracle_indexed_ms] =
        interleaved_mins([&mut sequential, &mut parallel, &mut oracle_scan, &mut oracle_indexed]);

    SearchStage {
        sequential_ms,
        parallel_ms,
        oracle_scan_ms,
        oracle_indexed_ms,
        witness_indices,
        memo_hits: 0,
        memo_misses: 0,
    }
}

/// Eval-stage measurements: every dataset query evaluated over a fixed
/// graph set under both row representations crossed with both matching
/// paths. The flat/map ratios are what `bench_gate --stage eval` enforces
/// across reports; the scan/indexed pairs additionally locate a regression
/// (row bookkeeping vs candidate enumeration).
struct EvalStage {
    /// Flat interned-symbol rows, adjacency-indexed matching (the
    /// production configuration of the counterexample oracle).
    flat_indexed_ms: f64,
    /// Flat rows over the linear-scan matcher.
    flat_scan_ms: f64,
    /// Map-backed rows (the differential oracle), indexed matching.
    map_indexed_ms: f64,
    /// Map-backed rows over the linear-scan matcher.
    map_scan_ms: f64,
    /// Flat rows through the name-resolving AST interpreter (the PR 5
    /// differential oracle for the compiled plans), indexed matching.
    interp_indexed_ms: f64,
    /// The interpreter over the linear-scan matcher.
    interp_scan_ms: f64,
}

fn eval_stage(workload: &OracleWorkload) -> EvalStage {
    // Plan once per query (what the search does), so the timings compare
    // evaluation proper — row bookkeeping and candidate enumeration —
    // across the six configurations.
    let prepare = |scan_matching: bool, map_rows: bool, interpret_patterns: bool| {
        let evaluator =
            Evaluator { scan_matching, map_rows, interpret_patterns, ..Evaluator::new() };
        let prepared: Vec<_> = workload
            .parsed
            .iter()
            .map(|(q1, q2)| (evaluator.prepare(q1), evaluator.prepare(q2)))
            .collect();
        (evaluator, prepared)
    };
    // (scan_matching, map_rows, interpret_patterns), in EvalStage field order.
    let configs = [
        prepare(false, false, false),
        prepare(true, false, false),
        prepare(false, true, false),
        prepare(true, true, false),
        prepare(false, false, true),
        prepare(true, false, true),
    ];
    // Sampled interleaved because the gate enforces the flat/map ratios
    // across reports — see `interleaved_mins`.
    let mut runs: Vec<_> = configs
        .iter()
        .map(|(evaluator, prepared)| {
            move || {
                for (left, right) in prepared {
                    for graph in &workload.graphs {
                        let _ = evaluator.evaluate_prepared(graph, left);
                        let _ = evaluator.evaluate_prepared(graph, right);
                    }
                }
            }
        })
        .collect();
    let [fi, fs, mi, mps, ii, is] = &mut runs[..] else { unreachable!() };
    let mins = interleaved_mins([fi, fs, mi, mps, ii, is]);
    EvalStage {
        flat_indexed_ms: mins[0],
        flat_scan_ms: mins[1],
        map_indexed_ms: mins[2],
        map_scan_ms: mins[3],
        interp_indexed_ms: mins[4],
        interp_scan_ms: mins[5],
    }
}

/// Parse-stage measurements: stage ① over every pair text of the dataset,
/// cold (cache cleared before each sample) vs warm (every text already
/// cached). The warm/cold ratio is what `bench_gate --stage parse`
/// enforces; hit/miss counters come from the timed optimized runs.
struct ParseStage {
    cold_ms: f64,
    warm_ms: f64,
    /// Parse-cache hits/misses over the timed optimized runs.
    hits: u64,
    misses: u64,
}

fn parse_stage(pairs: &[QueryPair]) -> ParseStage {
    let parse_all = || {
        for pair in pairs {
            let _ = graphqe::parse_check_cached(&pair.left);
            let _ = graphqe::parse_check_cached(&pair.right);
        }
    };
    let cold_ms = min_of_samples(|| {
        graphqe::clear_parse_cache();
        parse_all();
    });
    // Every text is now cached: the warm samples measure pure replay.
    let warm_ms = min_of_samples(parse_all);
    ParseStage { cold_ms, warm_ms, hits: 0, misses: 0 }
}

/// Warm end-to-end cost of the cooperative limits layer (PR 6): the
/// optimized pipeline with no run token installed (`off`, the default) vs a
/// token with generous never-tripping budgets (`on`), so every checkpoint,
/// deadline probe and step counter executes.
struct LimitsOverhead {
    off_ms: f64,
    on_ms: f64,
    /// `on / off` — the acceptance target is < 1.05.
    overhead: f64,
}

struct DatasetRun {
    name: &'static str,
    baseline_ms: f64,
    arena_ms: f64,
    speedup: f64,
    /// The same comparison with the (pipeline-independent) counterexample
    /// search disabled: the speedup of the decision stages in isolation.
    baseline_decide_only_ms: f64,
    arena_decide_only_ms: f64,
    decide_only_speedup: f64,
    equivalent: usize,
    not_equivalent: usize,
    unknown: usize,
    stages: Vec<(&'static str, f64)>,
    cache: CacheStats,
    search: SearchStage,
    eval: EvalStage,
    parse: ParseStage,
    index_builds: u64,
    index_build_ms: f64,
    limits: LimitsOverhead,
    unknown_reasons: BTreeMap<String, usize>,
}

fn classify(results: &[PairResult]) -> (usize, usize, usize) {
    let equivalent = results.iter().filter(|r| r.verdict.is_equivalent()).count();
    let not_equivalent = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
    (equivalent, not_equivalent, results.len() - equivalent - not_equivalent)
}

/// The failure taxonomy of a run's unknown verdicts, keyed by the
/// category's display form (mirrors `BatchReport::unknown_reason_counts`).
fn unknown_reasons(results: &[PairResult]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for result in results {
        if let Some(category) = result.verdict.failure_category() {
            *counts.entry(category.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// Whole-suite repetitions per dataset, merged by per-field minima
/// (`min_merge`). One pass's interleaved rounds span only a few seconds —
/// shorter than the multi-second load bursts of a busy shared host, so a
/// burst can still contaminate every sample of one measurement within a
/// pass. Repeating the whole pass with idle gaps spreads the samples over
/// enough wall-clock that each enforced field sees at least one quiet
/// window, which is what makes the committed report reproducible.
const SUITE_REPS: usize = 3;
const SUITE_GAP: Duration = Duration::from_secs(3);

/// Per-field minima of two measurement passes. Timings take the quieter
/// sample; deterministic outputs (verdict counts, witness indices, failure
/// taxonomy) are asserted identical; counters keep the first pass's values
/// (they describe one pass's timed runs, and later passes run warmer).
fn min_merge(mut best: DatasetRun, next: DatasetRun) -> DatasetRun {
    assert_eq!(
        (best.equivalent, best.not_equivalent, best.unknown),
        (next.equivalent, next.not_equivalent, next.unknown),
        "verdict counts changed between measurement passes"
    );
    assert_eq!(
        best.unknown_reasons, next.unknown_reasons,
        "failure taxonomy changed between measurement passes"
    );
    assert_eq!(
        best.search.witness_indices, next.search.witness_indices,
        "witness indices changed between measurement passes"
    );
    best.baseline_ms = best.baseline_ms.min(next.baseline_ms);
    best.arena_ms = best.arena_ms.min(next.arena_ms);
    best.baseline_decide_only_ms = best.baseline_decide_only_ms.min(next.baseline_decide_only_ms);
    best.arena_decide_only_ms = best.arena_decide_only_ms.min(next.arena_decide_only_ms);
    best.speedup = best.baseline_ms / best.arena_ms.max(f64::EPSILON);
    best.decide_only_speedup =
        best.baseline_decide_only_ms / best.arena_decide_only_ms.max(f64::EPSILON);
    for (slot, (stage, value)) in best.stages.iter_mut().zip(&next.stages) {
        assert_eq!(slot.0, *stage, "stage order changed between measurement passes");
        slot.1 = slot.1.min(*value);
    }
    best.search.sequential_ms = best.search.sequential_ms.min(next.search.sequential_ms);
    best.search.parallel_ms = best.search.parallel_ms.min(next.search.parallel_ms);
    best.search.oracle_scan_ms = best.search.oracle_scan_ms.min(next.search.oracle_scan_ms);
    best.search.oracle_indexed_ms =
        best.search.oracle_indexed_ms.min(next.search.oracle_indexed_ms);
    best.eval.flat_indexed_ms = best.eval.flat_indexed_ms.min(next.eval.flat_indexed_ms);
    best.eval.flat_scan_ms = best.eval.flat_scan_ms.min(next.eval.flat_scan_ms);
    best.eval.map_indexed_ms = best.eval.map_indexed_ms.min(next.eval.map_indexed_ms);
    best.eval.map_scan_ms = best.eval.map_scan_ms.min(next.eval.map_scan_ms);
    best.eval.interp_indexed_ms = best.eval.interp_indexed_ms.min(next.eval.interp_indexed_ms);
    best.eval.interp_scan_ms = best.eval.interp_scan_ms.min(next.eval.interp_scan_ms);
    best.parse.cold_ms = best.parse.cold_ms.min(next.parse.cold_ms);
    best.parse.warm_ms = best.parse.warm_ms.min(next.parse.warm_ms);
    best.limits.off_ms = best.limits.off_ms.min(next.limits.off_ms);
    best.limits.on_ms = best.limits.on_ms.min(next.limits.on_ms);
    best.limits.overhead = best.limits.on_ms / best.limits.off_ms.max(f64::EPSILON);
    best
}

fn run_dataset(name: &'static str, pairs: Vec<QueryPair>, threads: usize) -> DatasetRun {
    let mut merged: Option<DatasetRun> = None;
    for rep in 0..SUITE_REPS {
        if rep > 0 {
            std::thread::sleep(SUITE_GAP);
        }
        let pass = run_dataset_pass(name, pairs.clone(), threads, rep);
        merged = Some(match merged {
            None => pass,
            Some(best) => min_merge(best, pass),
        });
    }
    merged.expect("at least one measurement pass")
}

fn run_dataset_pass(
    name: &'static str,
    pairs: Vec<QueryPair>,
    threads: usize,
    rep: usize,
) -> DatasetRun {
    property_graph::index::reset_build_stats();

    // Baseline: the paper-faithful configuration — reference tree normalizer,
    // cloning iso matcher, no decide caches, one pair at a time on one
    // thread, and the search-result memo disabled so the baseline pays the
    // real counterexample-search cost every sample (it still shares the
    // graph pools, as every configuration has since PR 1).
    let baseline_prover = GraphQE {
        use_tree_normalizer: true,
        search_config: SearchConfig { use_memo: false, ..SearchConfig::default() },
        // The baseline pays the real stage-① cost every sample, like it
        // pays the real search cost (memo off above).
        use_parse_cache: false,
        ..GraphQE::new()
    };
    // Optimized pipeline: id-native decide, indexed oracle evaluation,
    // shared pools, batched over all cores.
    let arena_prover = GraphQE::new();
    // Same two pipelines without the counterexample search (shared by both):
    // the decide-only timings isolate the speedup of the decision stages,
    // and e2e − decide-only is the search-stage time the gate enforces.
    let baseline_ns = GraphQE { search_counterexamples: false, ..baseline_prover.clone() };
    let arena_ns = GraphQE { search_counterexamples: false, ..GraphQE::new() };

    // One untimed warmup per configuration, then the four wall-clock
    // measurements sampled interleaved (see `interleaved_mins`): the gate
    // derives ratios across these numbers (speedups, e2e − decide-only), so
    // each round samples all four under the same machine conditions.
    run_pairs_report(&baseline_prover, pairs.clone(), 1);
    run_pairs_report(&arena_prover, pairs.clone(), threads);
    run_pairs_report(&baseline_ns, pairs.clone(), 1);
    run_pairs_report(&arena_ns, pairs.clone(), threads);

    let (mut baseline, mut arena) = (Vec::new(), Vec::new());
    let mut cache = CacheStats::default();
    let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
    let (mut parse_hits, mut parse_misses) = (0u64, 0u64);
    let mut run_baseline = || baseline = run_pairs_report(&baseline_prover, pairs.clone(), 1).0;
    let mut run_arena = || {
        // Cache counters cover exactly the timed optimized runs, as before
        // the interleave: snapshot around this prover's samples only.
        let memo_before = graphqe::counterexample::search_memo_stats();
        let parse_before = graphqe::parse_cache_stats();
        (arena, cache) = run_pairs_report(&arena_prover, pairs.clone(), threads);
        let memo_after = graphqe::counterexample::search_memo_stats();
        let parse_after = graphqe::parse_cache_stats();
        memo_hits += memo_after.0.saturating_sub(memo_before.0);
        memo_misses += memo_after.1.saturating_sub(memo_before.1);
        parse_hits += parse_after.0.saturating_sub(parse_before.0);
        parse_misses += parse_after.1.saturating_sub(parse_before.1);
    };
    let mut run_baseline_ns = || drop(run_pairs_report(&baseline_ns, pairs.clone(), 1));
    let mut run_arena_ns = || drop(run_pairs_report(&arena_ns, pairs.clone(), threads));
    let [baseline_ms, arena_ms, baseline_decide_only_ms, arena_decide_only_ms] =
        interleaved_mins([
            &mut run_baseline,
            &mut run_arena,
            &mut run_baseline_ns,
            &mut run_arena_ns,
        ]);

    // The refactor must not move a single verdict.
    for (old, new) in baseline.iter().zip(arena.iter()) {
        assert_eq!(
            (old.verdict.is_equivalent(), old.verdict.is_not_equivalent()),
            (new.verdict.is_equivalent(), new.verdict.is_not_equivalent()),
            "verdict changed on {} vs {}",
            old.pair.left,
            old.pair.right,
        );
    }

    // Limits overhead: the identical optimized pipeline, but with a run
    // token installed whose budgets are generous enough to never trip — a
    // one-hour deadline and effectively unbounded step budgets. Every
    // cooperative checkpoint now really loads the cancel flag, bumps its
    // step counter and (subsampled) probes the deadline clock; the on/off
    // ratio is the end-to-end cost of the PR 6 limits layer. Off/on samples
    // are **interleaved** so both configurations see the same load drift of
    // the shared machine — two back-to-back sample blocks would attribute
    // the drift between them to the limits layer.
    let limited_prover = GraphQE {
        limits: ProveLimits {
            deadline: Some(Duration::from_secs(3600)),
            smt_step_budget: u64::MAX,
            search_graph_budget: u64::MAX,
            ..ProveLimits::default()
        },
        ..GraphQE::new()
    };
    let (limited, _) = run_pairs_report(&limited_prover, pairs.clone(), threads); // warmup
    for (off, on) in arena.iter().zip(limited.iter()) {
        assert_eq!(
            (off.verdict.is_equivalent(), off.verdict.is_not_equivalent()),
            (on.verdict.is_equivalent(), on.verdict.is_not_equivalent()),
            "a never-tripping limits token changed the verdict on {} vs {}",
            off.pair.left,
            off.pair.right,
        );
    }
    let (mut limits_off_ms, mut limits_on_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        let start = Instant::now();
        run_pairs_report(&arena_prover, pairs.clone(), threads);
        limits_off_ms = limits_off_ms.min(ms(start.elapsed()));
        let start = Instant::now();
        run_pairs_report(&limited_prover, pairs.clone(), threads);
        limits_on_ms = limits_on_ms.min(ms(start.elapsed()));
    }
    let limits = LimitsOverhead {
        off_ms: limits_off_ms,
        on_ms: limits_on_ms,
        overhead: limits_on_ms / limits_off_ms.max(f64::EPSILON),
    };

    let (index_builds, index_build) = property_graph::index::build_stats();
    let workload = OracleWorkload::new(&pairs);
    let mut search = search_stage(&pairs, &arena, &workload, threads);
    search.memo_hits = memo_hits;
    search.memo_misses = memo_misses;
    let (equivalent, not_equivalent, unknown) = classify(&arena);
    if name == "cyeqset" && rep == 0 {
        println!("\nTable III (compiled-plan oracle pipeline):");
        print!("{}", graphqe_bench::format_table3(&table3_rows(&arena)));
    }
    let eval = eval_stage(&workload);
    let mut parse = parse_stage(&pairs);
    parse.hits = parse_hits;
    parse.misses = parse_misses;
    DatasetRun {
        name,
        baseline_ms,
        arena_ms,
        speedup: baseline_ms / arena_ms.max(f64::EPSILON),
        baseline_decide_only_ms,
        arena_decide_only_ms,
        decide_only_speedup: baseline_decide_only_ms / arena_decide_only_ms.max(f64::EPSILON),
        equivalent,
        not_equivalent,
        unknown,
        stages: stage_breakdown(&pairs),
        cache,
        search,
        eval,
        parse,
        index_builds,
        index_build_ms: ms(index_build),
        limits,
        unknown_reasons: unknown_reasons(&arena),
    }
}

fn json_stages(stages: &[(&str, f64)]) -> String {
    let fields: Vec<String> =
        stages.iter().map(|(name, value)| format!("\"{name}\": {value:.3}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_cache(cache: &CacheStats) -> String {
    format!(
        "{{\"smt_formula_hits\": {}, \"smt_formula_misses\": {}, \
         \"smt_formula_hit_rate\": {:.4}, \"summand_hits\": {}, \"summand_misses\": {}, \
         \"summand_hit_rate\": {:.4}, \"disjoint_hits\": {}, \"disjoint_misses\": {}, \
         \"disjoint_hit_rate\": {:.4}, \"search_memo_hits\": {}, \
         \"search_memo_misses\": {}, \"search_memo_evictions\": {}, \
         \"parse_cache_hits\": {}, \"parse_cache_misses\": {}, \
         \"parse_cache_evictions\": {}, \"plan_cache_hits\": {}, \
         \"plan_cache_misses\": {}, \"plan_cache_evictions\": {}, \
         \"epoch_resets\": {}}}",
        cache.smt_formula_hits,
        cache.smt_formula_misses,
        cache.smt_formula_hit_rate(),
        cache.summand_hits,
        cache.summand_misses,
        cache.summand_hit_rate(),
        cache.disjoint_hits,
        cache.disjoint_misses,
        cache.disjoint_hit_rate(),
        cache.search_memo_hits,
        cache.search_memo_misses,
        cache.search_memo_evictions,
        cache.parse_cache_hits,
        cache.parse_cache_misses,
        cache.parse_cache_evictions,
        cache.plan_cache_hits,
        cache.plan_cache_misses,
        cache.plan_cache_evictions,
        cache.epoch_resets,
    )
}

fn json_eval(eval: &EvalStage) -> String {
    format!(
        "{{\"flat_indexed_ms\": {:.3}, \"flat_scan_ms\": {:.3}, \"map_indexed_ms\": {:.3}, \
         \"map_scan_ms\": {:.3}, \"interp_indexed_ms\": {:.3}, \"interp_scan_ms\": {:.3}}}",
        eval.flat_indexed_ms,
        eval.flat_scan_ms,
        eval.map_indexed_ms,
        eval.map_scan_ms,
        eval.interp_indexed_ms,
        eval.interp_scan_ms,
    )
}

fn json_parse(parse: &ParseStage) -> String {
    format!(
        "{{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"hits\": {}, \"misses\": {}}}",
        parse.cold_ms, parse.warm_ms, parse.hits, parse.misses,
    )
}

fn json_search(run: &DatasetRun) -> String {
    let indices: Vec<String> =
        run.search.witness_indices.iter().map(|index| index.to_string()).collect();
    format!(
        "{{\"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"oracle_scan_ms\": {:.3}, \
         \"oracle_indexed_ms\": {:.3}, \"index_builds\": {}, \"index_build_ms\": {:.3}, \
         \"memo_hits\": {}, \"memo_misses\": {}, \"witness_indices\": [{}]}}",
        run.search.sequential_ms,
        run.search.parallel_ms,
        run.search.oracle_scan_ms,
        run.search.oracle_indexed_ms,
        run.index_builds,
        run.index_build_ms,
        run.search.memo_hits,
        run.search.memo_misses,
        indices.join(", "),
    )
}

fn json_limits(limits: &LimitsOverhead) -> String {
    format!(
        "{{\"off_ms\": {:.3}, \"on_ms\": {:.3}, \"overhead\": {:.4}}}",
        limits.off_ms, limits.on_ms, limits.overhead,
    )
}

fn json_unknown_reasons(reasons: &BTreeMap<String, usize>) -> String {
    let fields: Vec<String> =
        reasons.iter().map(|(reason, count)| format!("\"{reason}\": {count}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_dataset(run: &DatasetRun) -> String {
    format!(
        "{{\n    \"baseline_tree_sequential_ms\": {:.3},\n    \
         \"arena_parallel_ms\": {:.3},\n    \"speedup\": {:.3},\n    \
         \"baseline_decide_only_ms\": {:.3},\n    \
         \"arena_decide_only_ms\": {:.3},\n    \"decide_only_speedup\": {:.3},\n    \
         \"equivalent\": {},\n    \"not_equivalent\": {},\n    \"unknown\": {},\n    \
         \"stages_ms\": {},\n    \"cache\": {},\n    \"peak_arena_nodes\": {},\n    \
         \"search\": {},\n    \"eval\": {},\n    \"parse\": {},\n    \
         \"limits\": {},\n    \"unknown_reasons\": {}\n  }}",
        run.baseline_ms,
        run.arena_ms,
        run.speedup,
        run.baseline_decide_only_ms,
        run.arena_decide_only_ms,
        run.decide_only_speedup,
        run.equivalent,
        run.not_equivalent,
        run.unknown,
        json_stages(&run.stages),
        json_cache(&run.cache),
        run.cache.peak_arena_nodes,
        json_search(run),
        json_eval(&run.eval),
        json_parse(&run.parse),
        json_limits(&run.limits),
        json_unknown_reasons(&run.unknown_reasons),
    )
}

/// Prints the trajectory against the committed previous report, when present
/// (informational — the enforced comparison is `bench_gate`'s job).
fn print_trajectory(runs: &[&DatasetRun]) {
    let Ok(previous_text) = std::fs::read_to_string("BENCH_pr5.json") else {
        println!("\nno BENCH_pr5.json next to the binary; skipping trajectory");
        return;
    };
    let Ok(previous) = graphqe_bench::json::Json::parse(&previous_text) else {
        println!("\nBENCH_pr5.json is unreadable; skipping trajectory");
        return;
    };
    println!("\ntrajectory vs committed BENCH_pr5.json:");
    for run in runs {
        let field = |name: &str| {
            previous.get_path(&[run.name, name]).and_then(graphqe_bench::json::Json::as_f64)
        };
        if let Some(before) = field("arena_parallel_ms") {
            println!(
                "  {}: e2e {before:.1} ms -> {:.1} ms ({:.2}x)",
                run.name,
                run.arena_ms,
                before / run.arena_ms.max(f64::EPSILON)
            );
        }
        if let (Some(e2e), Some(decide)) =
            (field("arena_parallel_ms"), field("arena_decide_only_ms"))
        {
            // Floor both sides at 0.25 ms: the subtraction of two noisy
            // measurements can go to (or below) zero, where ratios stop
            // meaning anything. `bench_gate` applies the same floor.
            let before_search = (e2e - decide).max(0.25);
            let after_search = (run.arena_ms - run.arena_decide_only_ms).max(0.25);
            println!(
                "  {}: search stage (e2e - decide-only) {before_search:.1} ms -> \
                 {after_search:.1} ms ({:.2}x)",
                run.name,
                before_search / after_search
            );
        }
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("bench_pr6: {threads} worker thread(s)");

    let eq = run_dataset("cyeqset", cyeqset(), threads);
    let neq = run_dataset("cyneqset", cyneqset(), threads);

    for run in [&eq, &neq] {
        println!(
            "\n{}: baseline {:.1} ms -> indexed oracle {:.1} ms ({:.2}x), \
             verdicts: {} eq / {} neq / {} unknown",
            run.name,
            run.baseline_ms,
            run.arena_ms,
            run.speedup,
            run.equivalent,
            run.not_equivalent,
            run.unknown
        );
        println!(
            "  decide-only (no counterexample search): {:.1} ms -> {:.1} ms ({:.2}x)",
            run.baseline_decide_only_ms, run.arena_decide_only_ms, run.decide_only_speedup
        );
        for (stage, stage_ms) in &run.stages {
            println!("  stage {stage:<16} {stage_ms:>10.1} ms");
        }
        println!(
            "  search: sequential {:.1} ms, parallel {:.1} ms, oracle eval scan {:.1} ms -> \
             indexed {:.1} ms ({:.2}x), {} index builds in {:.2} ms",
            run.search.sequential_ms,
            run.search.parallel_ms,
            run.search.oracle_scan_ms,
            run.search.oracle_indexed_ms,
            run.search.oracle_scan_ms / run.search.oracle_indexed_ms.max(f64::EPSILON),
            run.index_builds,
            run.index_build_ms,
        );
        println!(
            "  search memo (timed optimized runs): {} hits / {} misses, {} LRU evictions \
             process-wide",
            run.search.memo_hits,
            run.search.memo_misses,
            graphqe::counterexample::search_memo_evictions(),
        );
        println!(
            "  eval stage: flat indexed {:.1} ms / map indexed {:.1} ms ({:.2}x), \
             flat scan {:.1} ms / map scan {:.1} ms ({:.2}x)",
            run.eval.flat_indexed_ms,
            run.eval.map_indexed_ms,
            run.eval.map_indexed_ms / run.eval.flat_indexed_ms.max(f64::EPSILON),
            run.eval.flat_scan_ms,
            run.eval.map_scan_ms,
            run.eval.map_scan_ms / run.eval.flat_scan_ms.max(f64::EPSILON),
        );
        println!(
            "  compiled vs interpreted: indexed {:.1} ms vs {:.1} ms ({:.2}x), \
             scan {:.1} ms vs {:.1} ms ({:.2}x)",
            run.eval.flat_indexed_ms,
            run.eval.interp_indexed_ms,
            run.eval.interp_indexed_ms / run.eval.flat_indexed_ms.max(f64::EPSILON),
            run.eval.flat_scan_ms,
            run.eval.interp_scan_ms,
            run.eval.interp_scan_ms / run.eval.flat_scan_ms.max(f64::EPSILON),
        );
        println!(
            "  parse stage: cold {:.2} ms -> warm {:.2} ms ({:.1}x), \
             {} cache hits / {} misses in the timed runs",
            run.parse.cold_ms,
            run.parse.warm_ms,
            run.parse.cold_ms / run.parse.warm_ms.max(f64::EPSILON),
            run.parse.hits,
            run.parse.misses,
        );
        println!(
            "  limits layer: off {:.1} ms -> on (never-tripping token) {:.1} ms \
             ({:+.1}% overhead)",
            run.limits.off_ms,
            run.limits.on_ms,
            (run.limits.overhead - 1.0) * 100.0,
        );
        if !run.unknown_reasons.is_empty() {
            let reasons: Vec<String> = run
                .unknown_reasons
                .iter()
                .map(|(reason, count)| format!("{reason}: {count}"))
                .collect();
            println!("  unknown reasons: {}", reasons.join(", "));
        }
        if !run.search.witness_indices.is_empty() {
            let max = run.search.witness_indices.iter().max().unwrap();
            let sum: usize = run.search.witness_indices.iter().sum();
            println!(
                "  witnesses: {} found, pool index mean {:.1}, max {}",
                run.search.witness_indices.len(),
                sum as f64 / run.search.witness_indices.len() as f64,
                max,
            );
        }
        println!(
            "  caches (warm run): smt formula {:.0}% hit ({}h/{}m), summand {:.0}% hit \
             ({}h/{}m), disjoint {:.0}% hit ({}h/{}m), peak arena {} nodes",
            run.cache.smt_formula_hit_rate() * 100.0,
            run.cache.smt_formula_hits,
            run.cache.smt_formula_misses,
            run.cache.summand_hit_rate() * 100.0,
            run.cache.summand_hits,
            run.cache.summand_misses,
            run.cache.disjoint_hit_rate() * 100.0,
            run.cache.disjoint_hits,
            run.cache.disjoint_misses,
            run.cache.peak_arena_nodes,
        );
    }
    print_trajectory(&[&eq, &neq]);

    let json = format!(
        "{{\n  \"threads\": {},\n  \"cyeqset\": {},\n  \"cyneqset\": {}\n}}\n",
        threads,
        json_dataset(&eq),
        json_dataset(&neq),
    );
    std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
    println!("\nwrote BENCH_pr6.json");
}
