//! Isomorphism matching of normalized G-expressions.
//!
//! Two normalized G-expressions are *isomorphic* when there is a bijective
//! renaming of summation variables that makes them syntactically identical
//! (products and sums are compared as multisets). By the U-semiring axioms,
//! isomorphic expressions denote the same multiplicity function, so
//! isomorphism is a sound sufficient condition for equivalence — this is the
//! structural core of the decision procedure, with the SMT-backed reasoning
//! layered on top in [`crate::check_equivalence`].
//!
//! The matcher is a backtracking search. Instead of cloning the candidate
//! variable mapping at every nondeterministic branch (the original, allocation
//! heavy approach), a single [`VarMapping`] is threaded mutably through the
//! search and an **undo trail** records each fresh binding; on a failed
//! branch the trail is rolled back to the branch's checkpoint. Backtracking
//! is thereby O(bindings undone) with zero allocation, instead of
//! O(mapping size) clones per branch.

use std::collections::BTreeMap;

use gexpr::{GAtom, GExpr, GTerm, VarId};

/// A (partial) injective variable mapping from the left expression to the
/// right expression, with an undo trail for cheap backtracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarMapping {
    forward: BTreeMap<VarId, VarId>,
    backward: BTreeMap<VarId, VarId>,
    /// Every binding ever inserted, in insertion order; `rollback_to`
    /// removes a suffix of this trail from both maps.
    trail: Vec<(VarId, VarId)>,
}

/// A point in the search to which a [`VarMapping`] can be rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

impl VarMapping {
    /// An empty mapping.
    pub fn new() -> Self {
        VarMapping::default()
    }

    /// Tries to record `from ↦ to`; fails if it would break injectivity or
    /// contradict an existing entry. Fresh bindings are pushed on the trail.
    pub fn bind(&mut self, from: VarId, to: VarId) -> bool {
        match (self.forward.get(&from), self.backward.get(&to)) {
            (Some(existing_to), _) => *existing_to == to,
            (None, Some(existing_from)) => *existing_from == from,
            (None, None) => {
                self.forward.insert(from, to);
                self.backward.insert(to, from);
                self.trail.push((from, to));
                true
            }
        }
    }

    /// The current position of the undo trail.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undoes every binding recorded after `mark`.
    pub fn rollback_to(&mut self, mark: Checkpoint) {
        while self.trail.len() > mark.0 {
            let (from, to) = self.trail.pop().expect("trail length checked");
            self.forward.remove(&from);
            self.backward.remove(&to);
        }
    }

    /// The forward map.
    pub fn forward(&self) -> &BTreeMap<VarId, VarId> {
        &self.forward
    }
}

/// Checks whether `left` and `right` are isomorphic, extending `mapping`
/// in place. On failure the mapping is restored to its entry state.
pub fn unify_expr(left: &GExpr, right: &GExpr, mapping: &mut VarMapping) -> bool {
    let mark = mapping.checkpoint();
    let ok = unify_expr_inner(left, right, mapping);
    if !ok {
        mapping.rollback_to(mark);
    }
    ok
}

fn unify_expr_inner(left: &GExpr, right: &GExpr, mapping: &mut VarMapping) -> bool {
    match (left, right) {
        (GExpr::Zero, GExpr::Zero) | (GExpr::One, GExpr::One) => true,
        (GExpr::Const(a), GExpr::Const(b)) => a == b,
        (GExpr::Atom(a), GExpr::Atom(b)) => unify_atom(a, b, mapping),
        (GExpr::NodeFn(a), GExpr::NodeFn(b))
        | (GExpr::RelFn(a), GExpr::RelFn(b))
        | (GExpr::Unbounded(a), GExpr::Unbounded(b)) => unify_term(a, b, mapping),
        (GExpr::LabFn(a, la), GExpr::LabFn(b, lb)) => la == lb && unify_term(a, b, mapping),
        (GExpr::Squash(a), GExpr::Squash(b)) | (GExpr::Not(a), GExpr::Not(b)) => {
            unify_expr(a, b, mapping)
        }
        (GExpr::Mul(a), GExpr::Mul(b)) | (GExpr::Add(a), GExpr::Add(b)) => {
            unify_multiset(a, b, mapping)
        }
        (GExpr::Sum { vars: va, body: ba }, GExpr::Sum { vars: vb, body: bb }) => {
            va.len() == vb.len() && unify_expr(ba, bb, mapping)
        }
        _ => false,
    }
}

/// Finds a bijection between the two multisets of expressions under which
/// every pair unifies, threading the variable mapping through. On failure the
/// mapping is restored to its entry state.
pub fn unify_multiset(left: &[GExpr], right: &[GExpr], mapping: &mut VarMapping) -> bool {
    if left.len() != right.len() {
        return false;
    }
    let mut used = vec![false; right.len()];
    unify_multiset_from(left, right, 0, &mut used, mapping)
}

fn unify_multiset_from(
    left: &[GExpr],
    right: &[GExpr],
    position: usize,
    used: &mut [bool],
    mapping: &mut VarMapping,
) -> bool {
    if position == left.len() {
        return true;
    }
    let first = &left[position];
    for (index, candidate) in right.iter().enumerate() {
        if used[index] {
            continue;
        }
        let mark = mapping.checkpoint();
        if unify_expr(first, candidate, mapping) {
            used[index] = true;
            if unify_multiset_from(left, right, position + 1, used, mapping) {
                return true;
            }
            used[index] = false;
        }
        mapping.rollback_to(mark);
    }
    false
}

fn unify_atom(left: &GAtom, right: &GAtom, mapping: &mut VarMapping) -> bool {
    match (left, right) {
        (GAtom::Cmp(op_l, a1, a2), GAtom::Cmp(op_r, b1, b2)) => {
            // Same orientation.
            if op_l == op_r && unify_term_pair(a1, a2, b1, b2, mapping) {
                return true;
            }
            // Mirrored orientation ([a < b] vs [b > a], [a = b] vs [b = a]).
            *op_r == op_l.flipped() && unify_term_pair(a1, a2, b2, b1, mapping)
        }
        (GAtom::IsNull(a, na), GAtom::IsNull(b, nb)) => na == nb && unify_term(a, b, mapping),
        (GAtom::Pred(name_a, args_a), GAtom::Pred(name_b, args_b)) => {
            if name_a != name_b || args_a.len() != args_b.len() {
                return false;
            }
            let mark = mapping.checkpoint();
            for (a, b) in args_a.iter().zip(args_b.iter()) {
                if !unify_term(a, b, mapping) {
                    mapping.rollback_to(mark);
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

fn unify_term_pair(
    a1: &GTerm,
    a2: &GTerm,
    b1: &GTerm,
    b2: &GTerm,
    mapping: &mut VarMapping,
) -> bool {
    let mark = mapping.checkpoint();
    if unify_term(a1, b1, mapping) && unify_term(a2, b2, mapping) {
        return true;
    }
    mapping.rollback_to(mark);
    false
}

/// Checks whether two terms unify under an injective variable renaming,
/// extending `mapping` in place. On failure the mapping is restored.
pub fn unify_term(left: &GTerm, right: &GTerm, mapping: &mut VarMapping) -> bool {
    let mark = mapping.checkpoint();
    let ok = unify_term_inner(left, right, mapping);
    if !ok {
        mapping.rollback_to(mark);
    }
    ok
}

fn unify_term_inner(left: &GTerm, right: &GTerm, mapping: &mut VarMapping) -> bool {
    match (left, right) {
        (GTerm::Var(a), GTerm::Var(b)) => mapping.bind(*a, *b),
        (GTerm::OutCol(a), GTerm::OutCol(b)) => a == b,
        (GTerm::IntCol(a), GTerm::IntCol(b)) => a == b,
        (GTerm::Const(a), GTerm::Const(b)) => a == b,
        (GTerm::Prop(base_a, key_a), GTerm::Prop(base_b, key_b)) => {
            key_a == key_b && unify_term(base_a, base_b, mapping)
        }
        (GTerm::App(name_a, args_a), GTerm::App(name_b, args_b)) => {
            if name_a != name_b || args_a.len() != args_b.len() {
                return false;
            }
            for (a, b) in args_a.iter().zip(args_b.iter()) {
                if !unify_term(a, b, mapping) {
                    return false;
                }
            }
            true
        }
        (
            GTerm::Agg { kind: ka, distinct: da, arg: aa, group: ga },
            GTerm::Agg { kind: kb, distinct: db, arg: ab, group: gb },
        ) => ka == kb && da == db && unify_term(aa, ab, mapping) && unify_expr(ga, gb, mapping),
        _ => false,
    }
}

/// Convenience: `true` if the two expressions are isomorphic starting from an
/// empty mapping.
pub fn isomorphic(left: &GExpr, right: &GExpr) -> bool {
    unify_expr(left, right, &mut VarMapping::new())
}

/// Arena-native matcher: the same undo-trail backtracking search as the
/// module-level functions, but walking interned [`gexpr::arena`] ids instead
/// of `GExpr` trees.
///
/// Two wins over the tree walk:
///
/// * **same-node fast path** — hash-consing guarantees that two equal ids
///   are the *same* subtree, and on an identical pair the structural walk's
///   first-choice (identity) pairing succeeds exactly when binding every
///   variable of the node to itself is compatible with the ambient mapping.
///   The fast path replays precisely that — the memoized variable set of the
///   node (`GStore::node_all_variables`) is bound identically — so the
///   ubiquitous "identical summand on both sides" case costs O(#variables)
///   instead of a full structural walk, *with bit-identical behavior*: the
///   same bindings are recorded, and if identity is blocked by the ambient
///   mapping the matcher falls through to the ordinary walk (which may still
///   succeed via a non-identity pairing, exactly like the tree matcher).
/// * **no tree materialization** — candidates stay as ids end-to-end; the
///   only allocations are one-level `ANode` clones at the nodes actually
///   visited.
pub mod ids {
    use super::VarMapping;
    use gexpr::arena::{AAtom, ANode, ATerm, GStore, NodeId, TermId};

    /// Id-native mirror of [`super::unify_expr`]. On failure the mapping is
    /// restored to its entry state.
    pub fn unify_node(
        store: &mut GStore,
        left: NodeId,
        right: NodeId,
        mapping: &mut VarMapping,
    ) -> bool {
        let mark = mapping.checkpoint();
        if left == right {
            // Fast path: identical interned node. The structural walk's
            // depth-first search tries the identity pairing first, which
            // succeeds iff every variable of the node binds to itself under
            // the ambient mapping — replay exactly that. On success the
            // recorded bindings are identical to the walk's; on failure fall
            // through to the walk, which may still find a non-identity
            // match (identical to the tree matcher's behavior).
            if store.node_all_variables(left).iter().all(|v| mapping.bind(*v, *v)) {
                return true;
            }
            mapping.rollback_to(mark);
        }
        let ok = unify_node_inner(store, left, right, mapping);
        if !ok {
            mapping.rollback_to(mark);
        }
        ok
    }

    fn unify_node_inner(
        store: &mut GStore,
        left: NodeId,
        right: NodeId,
        mapping: &mut VarMapping,
    ) -> bool {
        match (store.node_of(left).clone(), store.node_of(right).clone()) {
            (ANode::Zero, ANode::Zero) | (ANode::One, ANode::One) => true,
            (ANode::Const(a), ANode::Const(b)) => a == b,
            (ANode::Atom(a), ANode::Atom(b)) => unify_atom(store, &a, &b, mapping),
            (ANode::NodeFn(a), ANode::NodeFn(b))
            | (ANode::RelFn(a), ANode::RelFn(b))
            | (ANode::Unbounded(a), ANode::Unbounded(b)) => unify_term(store, a, b, mapping),
            (ANode::Lab(a, la), ANode::Lab(b, lb)) => la == lb && unify_term(store, a, b, mapping),
            (ANode::Squash(a), ANode::Squash(b)) | (ANode::Not(a), ANode::Not(b)) => {
                unify_node(store, a, b, mapping)
            }
            (ANode::Mul(a), ANode::Mul(b)) | (ANode::Add(a), ANode::Add(b)) => {
                unify_multiset(store, &a, &b, mapping)
            }
            (ANode::Sum(va, ba), ANode::Sum(vb, bb)) => {
                va.len() == vb.len() && unify_node(store, ba, bb, mapping)
            }
            _ => false,
        }
    }

    /// Id-native mirror of [`super::unify_multiset`].
    pub fn unify_multiset(
        store: &mut GStore,
        left: &[NodeId],
        right: &[NodeId],
        mapping: &mut VarMapping,
    ) -> bool {
        if left.len() != right.len() {
            return false;
        }
        let mut used = vec![false; right.len()];
        unify_multiset_from(store, left, right, 0, &mut used, mapping)
    }

    fn unify_multiset_from(
        store: &mut GStore,
        left: &[NodeId],
        right: &[NodeId],
        position: usize,
        used: &mut [bool],
        mapping: &mut VarMapping,
    ) -> bool {
        if position == left.len() {
            return true;
        }
        let first = left[position];
        for index in 0..right.len() {
            if used[index] {
                continue;
            }
            let mark = mapping.checkpoint();
            if unify_node(store, first, right[index], mapping) {
                used[index] = true;
                if unify_multiset_from(store, left, right, position + 1, used, mapping) {
                    return true;
                }
                used[index] = false;
            }
            mapping.rollback_to(mark);
        }
        false
    }

    fn unify_atom(
        store: &mut GStore,
        left: &AAtom,
        right: &AAtom,
        mapping: &mut VarMapping,
    ) -> bool {
        match (left, right) {
            (AAtom::Cmp(op_l, a1, a2), AAtom::Cmp(op_r, b1, b2)) => {
                if op_l == op_r && unify_term_pair(store, *a1, *a2, *b1, *b2, mapping) {
                    return true;
                }
                *op_r == op_l.flipped() && unify_term_pair(store, *a1, *a2, *b2, *b1, mapping)
            }
            (AAtom::IsNull(a, na), AAtom::IsNull(b, nb)) => {
                na == nb && unify_term(store, *a, *b, mapping)
            }
            (AAtom::Pred(name_a, args_a), AAtom::Pred(name_b, args_b)) => {
                if name_a != name_b || args_a.len() != args_b.len() {
                    return false;
                }
                let mark = mapping.checkpoint();
                for (a, b) in args_a.iter().zip(args_b.iter()) {
                    if !unify_term(store, *a, *b, mapping) {
                        mapping.rollback_to(mark);
                        return false;
                    }
                }
                true
            }
            _ => false,
        }
    }

    fn unify_term_pair(
        store: &mut GStore,
        a1: TermId,
        a2: TermId,
        b1: TermId,
        b2: TermId,
        mapping: &mut VarMapping,
    ) -> bool {
        let mark = mapping.checkpoint();
        if unify_term(store, a1, b1, mapping) && unify_term(store, a2, b2, mapping) {
            return true;
        }
        mapping.rollback_to(mark);
        false
    }

    /// Id-native mirror of [`super::unify_term`].
    pub fn unify_term(
        store: &mut GStore,
        left: TermId,
        right: TermId,
        mapping: &mut VarMapping,
    ) -> bool {
        let mark = mapping.checkpoint();
        let ok = unify_term_inner(store, left, right, mapping);
        if !ok {
            mapping.rollback_to(mark);
        }
        ok
    }

    fn unify_term_inner(
        store: &mut GStore,
        left: TermId,
        right: TermId,
        mapping: &mut VarMapping,
    ) -> bool {
        match (store.term_of(left).clone(), store.term_of(right).clone()) {
            (ATerm::Var(a), ATerm::Var(b)) => mapping.bind(a, b),
            (ATerm::OutCol(a), ATerm::OutCol(b)) => a == b,
            (ATerm::IntCol(a), ATerm::IntCol(b)) => a == b,
            (ATerm::Const(a), ATerm::Const(b)) => a == b,
            (ATerm::Prop(base_a, key_a), ATerm::Prop(base_b, key_b)) => {
                key_a == key_b && unify_term(store, base_a, base_b, mapping)
            }
            (ATerm::App(name_a, args_a), ATerm::App(name_b, args_b)) => {
                if name_a != name_b || args_a.len() != args_b.len() {
                    return false;
                }
                for (a, b) in args_a.iter().zip(args_b.iter()) {
                    if !unify_term(store, *a, *b, mapping) {
                        return false;
                    }
                }
                true
            }
            (
                ATerm::Agg { kind: ka, distinct: da, arg: aa, group: ga },
                ATerm::Agg { kind: kb, distinct: db, arg: ab, group: gb },
            ) => {
                ka == kb
                    && da == db
                    && unify_term(store, aa, ab, mapping)
                    && unify_node(store, ga, gb, mapping)
            }
            _ => false,
        }
    }

    /// Convenience: `true` if the two interned nodes are isomorphic starting
    /// from an empty mapping.
    pub fn isomorphic(store: &mut GStore, left: NodeId, right: NodeId) -> bool {
        unify_node(store, left, right, &mut VarMapping::new())
    }
}

/// The pre-refactor reference matcher: clones the whole mapping at every
/// nondeterministic branch and the remaining multisets at every recursion
/// level. Kept verbatim (modulo the trail field) as the benchmark baseline
/// and as a differential-testing oracle for the trail-based matcher.
pub mod cloning {
    use super::VarMapping;
    use gexpr::{GAtom, GExpr, GTerm};

    /// Clone-per-branch variant of [`super::unify_expr`].
    pub fn unify_expr(left: &GExpr, right: &GExpr, mapping: &VarMapping) -> Option<VarMapping> {
        match (left, right) {
            (GExpr::Zero, GExpr::Zero) | (GExpr::One, GExpr::One) => Some(mapping.clone()),
            (GExpr::Const(a), GExpr::Const(b)) if a == b => Some(mapping.clone()),
            (GExpr::Atom(a), GExpr::Atom(b)) => unify_atom(a, b, mapping),
            (GExpr::NodeFn(a), GExpr::NodeFn(b))
            | (GExpr::RelFn(a), GExpr::RelFn(b))
            | (GExpr::Unbounded(a), GExpr::Unbounded(b)) => unify_term(a, b, mapping),
            (GExpr::LabFn(a, la), GExpr::LabFn(b, lb)) if la == lb => unify_term(a, b, mapping),
            (GExpr::Squash(a), GExpr::Squash(b)) | (GExpr::Not(a), GExpr::Not(b)) => {
                unify_expr(a, b, mapping)
            }
            (GExpr::Mul(a), GExpr::Mul(b)) | (GExpr::Add(a), GExpr::Add(b)) => {
                unify_multiset(a, b, mapping)
            }
            (GExpr::Sum { vars: va, body: ba }, GExpr::Sum { vars: vb, body: bb }) => {
                if va.len() != vb.len() {
                    return None;
                }
                unify_expr(ba, bb, mapping)
            }
            _ => None,
        }
    }

    /// Clone-per-level variant of [`super::unify_multiset`].
    pub fn unify_multiset(
        left: &[GExpr],
        right: &[GExpr],
        mapping: &VarMapping,
    ) -> Option<VarMapping> {
        if left.len() != right.len() {
            return None;
        }
        if left.is_empty() {
            return Some(mapping.clone());
        }
        let first = &left[0];
        let rest: Vec<GExpr> = left[1..].to_vec();
        for (index, candidate) in right.iter().enumerate() {
            if let Some(extended) = unify_expr(first, candidate, mapping) {
                let mut remaining = right.to_vec();
                remaining.remove(index);
                if let Some(result) = unify_multiset(&rest, &remaining, &extended) {
                    return Some(result);
                }
            }
        }
        None
    }

    fn unify_atom(left: &GAtom, right: &GAtom, mapping: &VarMapping) -> Option<VarMapping> {
        match (left, right) {
            (GAtom::Cmp(op_l, a1, a2), GAtom::Cmp(op_r, b1, b2)) => {
                if op_l == op_r {
                    if let Some(m) = unify_term_pair(a1, a2, b1, b2, mapping) {
                        return Some(m);
                    }
                }
                if *op_r == op_l.flipped() {
                    if let Some(m) = unify_term_pair(a1, a2, b2, b1, mapping) {
                        return Some(m);
                    }
                }
                None
            }
            (GAtom::IsNull(a, na), GAtom::IsNull(b, nb)) if na == nb => unify_term(a, b, mapping),
            (GAtom::Pred(name_a, args_a), GAtom::Pred(name_b, args_b))
                if name_a == name_b && args_a.len() == args_b.len() =>
            {
                let mut current = mapping.clone();
                for (a, b) in args_a.iter().zip(args_b.iter()) {
                    current = unify_term(a, b, &current)?;
                }
                Some(current)
            }
            _ => None,
        }
    }

    fn unify_term_pair(
        a1: &GTerm,
        a2: &GTerm,
        b1: &GTerm,
        b2: &GTerm,
        mapping: &VarMapping,
    ) -> Option<VarMapping> {
        let first = unify_term(a1, b1, mapping)?;
        unify_term(a2, b2, &first)
    }

    /// Clone-per-binding variant of [`super::unify_term`].
    pub fn unify_term(left: &GTerm, right: &GTerm, mapping: &VarMapping) -> Option<VarMapping> {
        match (left, right) {
            (GTerm::Var(a), GTerm::Var(b)) => {
                let mut extended = mapping.clone();
                if extended.bind(*a, *b) {
                    Some(extended)
                } else {
                    None
                }
            }
            (GTerm::OutCol(a), GTerm::OutCol(b)) if a == b => Some(mapping.clone()),
            (GTerm::IntCol(a), GTerm::IntCol(b)) if a == b => Some(mapping.clone()),
            (GTerm::Const(a), GTerm::Const(b)) if a == b => Some(mapping.clone()),
            (GTerm::Prop(base_a, key_a), GTerm::Prop(base_b, key_b)) if key_a == key_b => {
                unify_term(base_a, base_b, mapping)
            }
            (GTerm::App(name_a, args_a), GTerm::App(name_b, args_b))
                if name_a == name_b && args_a.len() == args_b.len() =>
            {
                let mut current = mapping.clone();
                for (a, b) in args_a.iter().zip(args_b.iter()) {
                    current = unify_term(a, b, &current)?;
                }
                Some(current)
            }
            (
                GTerm::Agg { kind: ka, distinct: da, arg: aa, group: ga },
                GTerm::Agg { kind: kb, distinct: db, arg: ab, group: gb },
            ) if ka == kb && da == db => {
                let current = unify_term(aa, ab, mapping)?;
                unify_expr(ga, gb, &current)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gexpr::CmpOp;

    fn var(i: u32) -> GTerm {
        GTerm::Var(VarId(i))
    }

    #[test]
    fn variable_renaming_is_found() {
        let left = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(59)),
        ]);
        let right = GExpr::mul(vec![
            GExpr::NodeFn(var(7)),
            GExpr::eq(GTerm::prop(var(7), "age"), GTerm::int(59)),
        ]);
        assert!(isomorphic(&left, &right));
    }

    #[test]
    fn injectivity_is_enforced() {
        // e0 and e1 on the left cannot both map to e5 on the right.
        let left = GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]);
        let right = GExpr::mul(vec![GExpr::NodeFn(var(5)), GExpr::RelFn(var(5))]);
        assert!(!isomorphic(&left, &right));
    }

    #[test]
    fn products_are_compared_as_multisets() {
        let left = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::LabFn(var(0), "A".into()),
            GExpr::RelFn(var(1)),
        ]);
        let right = GExpr::mul(vec![
            GExpr::RelFn(var(3)),
            GExpr::NodeFn(var(2)),
            GExpr::LabFn(var(2), "A".into()),
        ]);
        assert!(isomorphic(&left, &right));
    }

    #[test]
    fn mirrored_comparisons_unify() {
        let left = GExpr::Atom(GAtom::Cmp(CmpOp::Lt, var(0), GTerm::int(5)));
        let right = GExpr::Atom(GAtom::Cmp(CmpOp::Gt, GTerm::int(5), var(9)));
        assert!(isomorphic(&left, &right));
        let left = GExpr::eq(var(0), var(1));
        let right = GExpr::eq(var(4), var(3));
        assert!(isomorphic(&left, &right));
    }

    #[test]
    fn different_constants_do_not_unify() {
        let left = GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(59));
        let right = GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(60));
        assert!(!isomorphic(&left, &right));
        let left = GExpr::LabFn(var(0), "Person".into());
        let right = GExpr::LabFn(var(0), "Book".into());
        assert!(!isomorphic(&left, &right));
    }

    #[test]
    fn out_columns_must_match_positionally() {
        let left = GExpr::eq(GTerm::OutCol(0), var(0));
        let right = GExpr::eq(GTerm::OutCol(0), var(5));
        assert!(isomorphic(&left, &right));
        let right = GExpr::eq(GTerm::OutCol(1), var(5));
        assert!(!isomorphic(&left, &right));
    }

    #[test]
    fn summations_unify_through_their_bodies() {
        let left = GExpr::sum(
            vec![VarId(0), VarId(1)],
            GExpr::mul(vec![
                GExpr::NodeFn(var(0)),
                GExpr::RelFn(var(1)),
                GExpr::eq(GTerm::app("src", vec![var(1)]), var(0)),
            ]),
        );
        let right = GExpr::sum(
            vec![VarId(10), VarId(20)],
            GExpr::mul(vec![
                GExpr::RelFn(var(20)),
                GExpr::NodeFn(var(10)),
                GExpr::eq(GTerm::app("src", vec![var(20)]), var(10)),
            ]),
        );
        assert!(isomorphic(&left, &right));
        // Different arity of the summation is rejected.
        let fewer = GExpr::sum(vec![VarId(10)], GExpr::NodeFn(var(10)));
        assert!(!isomorphic(&left, &fewer));
    }

    #[test]
    fn the_mapping_is_consistent_across_factors() {
        // [src(e1) = e0] × [tgt(e1) = e0]  vs  [src(e3) = e2] × [tgt(e3) = e4]
        // must NOT unify: e0 would have to map to both e2 and e4.
        let left = GExpr::mul(vec![
            GExpr::eq(GTerm::app("src", vec![var(1)]), var(0)),
            GExpr::eq(GTerm::app("tgt", vec![var(1)]), var(0)),
        ]);
        let right = GExpr::mul(vec![
            GExpr::eq(GTerm::app("src", vec![var(3)]), var(2)),
            GExpr::eq(GTerm::app("tgt", vec![var(3)]), var(4)),
        ]);
        assert!(!isomorphic(&left, &right));
    }

    #[test]
    fn failed_unification_restores_the_mapping() {
        let mut mapping = VarMapping::new();
        assert!(mapping.bind(VarId(0), VarId(10)));
        let before = mapping.clone();
        // This fails mid-way: e0 is already bound to e10, so binding it to
        // e11 is rejected after other bindings may have been recorded.
        let left =
            GExpr::mul(vec![GExpr::NodeFn(var(1)), GExpr::eq(var(0), GTerm::prop(var(1), "x"))]);
        let right =
            GExpr::mul(vec![GExpr::NodeFn(var(12)), GExpr::eq(var(11), GTerm::prop(var(12), "x"))]);
        assert!(!unify_expr(&left, &right, &mut mapping));
        assert_eq!(mapping, before, "mapping must be rolled back on failure");
    }

    #[test]
    fn backtracking_explores_later_candidates() {
        // The first candidate for Node(e0) is Node(e5), which dead-ends when
        // the equality forces e0 ↦ e6; the matcher must undo and retry.
        let left = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::NodeFn(var(1)),
            GExpr::eq(GTerm::prop(var(0), "a"), GTerm::int(1)),
        ]);
        let right = GExpr::mul(vec![
            GExpr::NodeFn(var(5)),
            GExpr::NodeFn(var(6)),
            GExpr::eq(GTerm::prop(var(6), "a"), GTerm::int(1)),
        ]);
        assert!(isomorphic(&left, &right));
    }

    #[test]
    fn trail_matcher_agrees_with_cloning_reference() {
        let cases: Vec<(GExpr, GExpr)> = vec![
            (
                GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
                GExpr::mul(vec![GExpr::RelFn(var(9)), GExpr::NodeFn(var(8))]),
            ),
            (
                GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
                GExpr::mul(vec![GExpr::NodeFn(var(5)), GExpr::RelFn(var(5))]),
            ),
            (
                GExpr::mul(vec![
                    GExpr::eq(GTerm::app("src", vec![var(1)]), var(0)),
                    GExpr::eq(GTerm::app("tgt", vec![var(1)]), var(0)),
                ]),
                GExpr::mul(vec![
                    GExpr::eq(GTerm::app("src", vec![var(3)]), var(2)),
                    GExpr::eq(GTerm::app("tgt", vec![var(3)]), var(4)),
                ]),
            ),
            (
                GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0))),
                GExpr::sum(vec![VarId(7)], GExpr::NodeFn(var(7))),
            ),
            (GExpr::eq(var(0), GTerm::int(1)), GExpr::eq(GTerm::int(1), var(2))),
            (GExpr::eq(var(0), GTerm::int(1)), GExpr::eq(GTerm::int(2), var(2))),
        ];
        for (left, right) in cases {
            let trail = isomorphic(&left, &right);
            let reference = cloning::unify_expr(&left, &right, &VarMapping::new()).is_some();
            assert_eq!(trail, reference, "matchers disagree on {left} vs {right}");
        }
    }

    #[test]
    fn id_matcher_agrees_with_tree_matcher() {
        use gexpr::GStore;
        let mut store = GStore::new();
        let cases: Vec<(GExpr, GExpr)> = vec![
            (
                GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
                GExpr::mul(vec![GExpr::RelFn(var(9)), GExpr::NodeFn(var(8))]),
            ),
            (
                GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
                GExpr::mul(vec![GExpr::NodeFn(var(5)), GExpr::RelFn(var(5))]),
            ),
            (
                GExpr::mul(vec![
                    GExpr::eq(GTerm::app("src", vec![var(1)]), var(0)),
                    GExpr::eq(GTerm::app("tgt", vec![var(1)]), var(0)),
                ]),
                GExpr::mul(vec![
                    GExpr::eq(GTerm::app("src", vec![var(3)]), var(2)),
                    GExpr::eq(GTerm::app("tgt", vec![var(3)]), var(4)),
                ]),
            ),
            (
                GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0))),
                GExpr::sum(vec![VarId(7)], GExpr::NodeFn(var(7))),
            ),
            (GExpr::eq(var(0), GTerm::int(1)), GExpr::eq(GTerm::int(1), var(2))),
            (GExpr::eq(var(0), GTerm::int(1)), GExpr::eq(GTerm::int(2), var(2))),
            (
                GExpr::eq(GTerm::OutCol(0), GTerm::prop(var(0), "name")),
                GExpr::eq(GTerm::OutCol(1), GTerm::prop(var(5), "name")),
            ),
            (
                GExpr::Atom(GAtom::Cmp(CmpOp::Lt, var(0), GTerm::int(5))),
                GExpr::Atom(GAtom::Cmp(CmpOp::Gt, GTerm::int(5), var(9))),
            ),
        ];
        for (left, right) in cases {
            let tree = isomorphic(&left, &right);
            let (l, r) = (store.intern_expr(&left), store.intern_expr(&right));
            let by_id = ids::isomorphic(&mut store, l, r);
            assert_eq!(by_id, tree, "matchers disagree on {left} vs {right}");
        }
    }

    #[test]
    fn same_node_fast_path_is_behaviorally_identical_to_the_tree_walk() {
        use gexpr::GStore;
        let mut store = GStore::new();
        let closed = GExpr::sum(
            vec![VarId(0)],
            GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::LabFn(var(0), "A".into())]),
        );
        let id = store.intern_expr(&closed);
        // Empty ambient mapping: matches, and records the same identity
        // bindings the structural walk would (e0 ↦ e0).
        let mut mapping = VarMapping::new();
        assert!(ids::unify_node(&mut store, id, id, &mut mapping));
        assert_eq!(mapping.forward().get(&VarId(0)), Some(&VarId(0)));
        // Conflicting ambient mapping: the tree matcher fails here (it tries
        // to bind e0 ↦ e0 against the ambient e0 ↦ e42), so the fast path
        // must fail identically — even though the node is closed.
        let mut conflicted = VarMapping::new();
        assert!(conflicted.bind(VarId(0), VarId(42)));
        let before = conflicted.clone();
        let by_id = ids::unify_node(&mut store, id, id, &mut conflicted);
        let by_tree = unify_expr(&closed, &closed, &mut before.clone());
        assert_eq!(by_id, by_tree, "fast path diverged from the tree walk");
        assert!(!by_id);
        assert_eq!(conflicted, before, "mapping must be restored on failure");
    }

    #[test]
    fn unused_sum_binders_are_not_bound_by_the_fast_path() {
        use gexpr::GStore;
        let mut store = GStore::new();
        // Regression shape from review: the normalizer keeps Σ binders with
        // no occurrence in the body (unbounded domain factors). The tree
        // walk never binds such a binder, so the fast path must not either —
        // here S's unused binder e9 must stay free for the sibling summand
        // to bind e9 ↦ e8.
        let s = GExpr::sum(vec![VarId(9)], GExpr::NodeFn(var(0)));
        let left = GExpr::add(vec![s.clone(), GExpr::NodeFn(var(9))]);
        let right = GExpr::add(vec![s.clone(), GExpr::NodeFn(var(8))]);
        let by_tree = isomorphic(&left, &right);
        assert!(by_tree, "tree oracle proves this pair");
        let (l, r) = (store.intern_expr(&left), store.intern_expr(&right));
        assert_eq!(ids::isomorphic(&mut store, l, r), by_tree, "fast path over-binds e9");
    }

    #[test]
    fn ambient_bindings_against_shared_closed_subterms_match_the_oracle() {
        use gexpr::GStore;
        let mut store = GStore::new();
        // Regression shape from review: a closed squashed subterm C shared
        // (same interned id) by both sides, whose Σ-bound variable id
        // collides with an ambient-bound variable. A naive same-node
        // shortcut that skips C's bindings would prove this pair while the
        // tree oracle does not.
        let c = GExpr::squash(GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0))));
        let left = GExpr::mul(vec![GExpr::NodeFn(var(0)), c.clone()]);
        let right = GExpr::mul(vec![GExpr::NodeFn(var(1)), c.clone()]);
        let by_tree = isomorphic(&left, &right);
        let (l, r) = (store.intern_expr(&left), store.intern_expr(&right));
        let by_id = ids::isomorphic(&mut store, l, r);
        assert_eq!(by_id, by_tree, "matchers disagree on {left} vs {right}");
        let reference = cloning::unify_expr(&left, &right, &VarMapping::new()).is_some();
        assert_eq!(by_id, reference, "id matcher diverges from the cloning oracle");
    }

    #[test]
    fn rollback_is_scoped_to_the_checkpoint() {
        let mut mapping = VarMapping::new();
        assert!(mapping.bind(VarId(0), VarId(5)));
        let mark = mapping.checkpoint();
        assert!(mapping.bind(VarId(1), VarId(6)));
        assert!(mapping.bind(VarId(2), VarId(7)));
        mapping.rollback_to(mark);
        assert_eq!(mapping.forward().len(), 1);
        assert_eq!(mapping.forward().get(&VarId(0)), Some(&VarId(5)));
        // The undone variables can be re-bound differently.
        assert!(mapping.bind(VarId(1), VarId(9)));
    }
}
