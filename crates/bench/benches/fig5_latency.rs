//! Criterion benchmark backing Fig. 5: latency of the cheapest and the most
//! expensive pipeline paths (structural proof vs. divide-and-conquer).

use criterion::{criterion_group, criterion_main, Criterion};
use graphqe::GraphQE;

fn bench_latency_extremes(c: &mut Criterion) {
    let prover = GraphQE::new();
    let mut group = c.benchmark_group("fig5/latency");
    group.sample_size(10);
    group.bench_function("fast_structural_pair", |b| {
        b.iter(|| {
            prover.prove(
                "MATCH (person)-[x:READ]->(book:Book) RETURN person.name",
                "MATCH (n1)-[r1:READ]->(n2:Book) RETURN n1.name",
            )
        })
    });
    group.bench_function("divide_and_conquer_pair", |b| {
        b.iter(|| {
            prover.prove(
                "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
                "MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_latency_extremes);
criterion_main!(benches);
